package exec

import (
	"context"
	"io"
	"sort"
	"sync/atomic"

	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/faults"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// localOp yields one in-memory batch.
type localOp struct {
	batch *types.Batch
	done  bool
}

func (o *localOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	return o.batch, nil
}

func (o *localOp) Close() error { return nil }

// batchesOp yields a fixed list of batches (remote results).
type batchesOp struct {
	batches []*types.Batch
	pos     int
}

func (o *batchesOp) Next() (*types.Batch, error) {
	if o.pos >= len(o.batches) {
		return nil, io.EOF
	}
	b := o.batches[o.pos]
	o.pos++
	return b, nil
}

func (o *batchesOp) Close() error { return nil }

// scanSource reads and filters one snapshot file at a time. It is shared by
// the serial scan and the per-file parallel scan: all state is read-only
// after construction, and reads go through the credential-bound reader the
// TableProvider vended — the operator never sees the credential itself.
type scanSource struct {
	qc   *QueryContext
	scan *plan.Scan
	snap *delta.Snapshot
	// files are the snapshot-file indices that survived zone-map pruning,
	// in snapshot order. Morsel i reads snap.Files[files[i]].
	files []int
	read  func(path string) (*types.Batch, error)
	// progs are per-conjunct vector programs for the pushed filters (nil
	// entries use the row interpreter).
	progs []*eval.VecProg
	// stats is the owning scan operator's profile sink (nil = unprofiled).
	stats *telemetry.OpStats
	// metrics is the engine's registry (nil = unmetered).
	metrics *telemetry.Registry
	// rfs holds runtime filters installed by a downstream hash join after its
	// build side materialized. Atomic because install happens on the join's
	// goroutine while parallel scan workers may already be spinning up.
	rfs atomic.Pointer[[]*scanRF]
}

// installRF publishes a runtime filter; subsequent file reads consult it.
func (s *scanSource) installRF(rf *scanRF) {
	for {
		old := s.rfs.Load()
		var next []*scanRF
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, rf)
		if s.rfs.CompareAndSwap(old, &next) {
			return
		}
	}
}

func (s *scanSource) runtimeFilters() []*scanRF {
	if p := s.rfs.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *scanSource) scanFile(i int) (*types.Batch, error) {
	return s.scanFileCtx(s.qc.GoContext(), i)
}

// scanFileCtx reads, decodes and filters one snapshot file. Each read gets a
// "storage.get" span under ctx (a no-op when the query is untraced); a
// failed read records the injected fault site so chaos runs are attributable
// from the trace alone.
func (s *scanSource) scanFileCtx(ctx context.Context, i int) (*types.Batch, error) {
	f := s.snap.Files[s.files[i]]
	// Runtime filters first: if a join's build-side bounds prove this file
	// empty from its statistics alone, skip the storage GET entirely. This
	// composes with build-time zone-map pruning — those files never made it
	// into s.files; these are pruned by bounds only known at run time.
	for _, rf := range s.runtimeFilters() {
		if rf.filePrunable(s.scan, f.Stats) {
			s.stats.AddRuntimeFilePruned(1)
			if s.metrics != nil {
				s.metrics.Counter("scan.files.rf_pruned").Add(1)
			}
			return types.NewBatchBuilder(s.scan.Schema(), 0).Build(), nil
		}
	}
	_, gs := telemetry.StartSpan(ctx, "storage.get")
	gs.SetAttr("path", f.Path)
	b, err := s.read(f.Path)
	if err != nil {
		if site := faults.SiteOf(err); site != "" {
			gs.SetAttr("fault.site", site)
		}
	} else {
		gs.SetInt("rows", int64(b.NumRows()))
		s.stats.AddReadBytes(f.SizeBytes)
	}
	gs.EndErr(err)
	if err != nil {
		return nil, err
	}
	// Deletion-vector masking runs on the raw file batch, before projection
	// or filters: DV ordinals refer to the file's physical row order. Every
	// downstream operator — and the serial/parallel equivalence guarantee —
	// sees only surviving rows.
	if f.DV.Cardinality() > 0 {
		keep := f.DV.KeepIndexes(b.NumRows())
		masked := b.NumRows() - len(keep)
		b = b.Gather(keep)
		s.stats.AddDVMasked(masked)
		if s.metrics != nil {
			s.metrics.Counter("scan.rows.dv_masked").Add(int64(masked))
		}
	}
	return s.applyScanOps(b)
}

func (s *scanSource) applyScanOps(b *types.Batch) (*types.Batch, error) {
	// Projection first: when the optimizer prunes columns it remaps the
	// pushed-filter ordinals to the projected layout.
	if s.scan.ProjectedCols != nil {
		cols := make([]*types.Column, len(s.scan.ProjectedCols))
		for i, c := range s.scan.ProjectedCols {
			cols[i] = b.Cols[c]
		}
		b = types.MustBatch(s.scan.Schema(), cols)
	}
	rfs := s.runtimeFilters()
	if len(s.scan.PushedFilters) == 0 && len(rfs) == 0 {
		return b, nil
	}
	// Conjuncts refine a selection vector in their original order; each runs
	// only over the rows that survived the previous ones (same short-circuit
	// the per-row loop had).
	n := b.NumRows()
	var sel []int // nil = all rows
	for fi, f := range s.scan.PushedFilters {
		m := n
		if sel != nil {
			m = len(sel)
		}
		next := make([]int, 0, m)
		if prog := s.progs[fi]; prog != nil {
			s.stats.CountEval(true)
			pred := prog.Run(b.Cols, n, sel)
			nulls, vals := pred.NullMask(), pred.Int64s()
			for j := 0; j < m; j++ {
				if (nulls == nil || !nulls[j]) && vals[j] != 0 {
					if sel == nil {
						next = append(next, j)
					} else {
						next = append(next, sel[j])
					}
				}
			}
		} else {
			s.stats.CountEval(false)
			for j := 0; j < m; j++ {
				i := j
				if sel != nil {
					i = sel[j]
				}
				row := func(c int) types.Value { return b.Cols[c].Value(i) }
				pass, err := eval.EvalPredicate(f, row, s.qc.Eval)
				if err != nil {
					return nil, err
				}
				if pass {
					next = append(next, i)
				}
			}
		}
		sel = next
		if len(sel) == 0 {
			break
		}
	}
	// Runtime filters refine the same selection after the pushed filters: the
	// drop is an optimization (those rows cannot join), so it is attributed to
	// the owning join's profile, not the scan's row counts.
	for _, rf := range rfs {
		if sel != nil && len(sel) == 0 {
			break
		}
		var dropped int
		sel, dropped = rf.filterRows(b, sel, n)
		if dropped > 0 {
			rf.joinStats.AddRuntimeFiltered(dropped)
			if rf.metrics != nil {
				rf.metrics.Counter("join.rf.rows_filtered").Add(int64(dropped))
			}
		}
	}
	if sel == nil {
		return b, nil
	}
	return b.Gather(sel), nil
}

// scanOp is the serial file-by-file scan.
type scanOp struct {
	src  *scanSource
	file int
}

func (o *scanOp) Next() (*types.Batch, error) {
	for o.file < len(o.src.files) {
		b, err := o.src.scanFile(o.file)
		o.file++
		if err != nil {
			return nil, err
		}
		if b.NumRows() == 0 {
			continue
		}
		return b, nil
	}
	return nil, io.EOF
}

func (o *scanOp) Close() error { return nil }

// filterBatch keeps the rows where the predicate is true (not NULL, not
// false). It returns the input batch unchanged when every row passes.
func filterBatch(b *types.Batch, be *batchEval) (*types.Batch, error) {
	cols, err := be.run(b)
	if err != nil {
		return nil, err
	}
	pred := cols[0]
	n := b.NumRows()
	keep := make([]int, 0, n)
	nulls, vals := pred.NullMask(), pred.Int64s()
	for i := 0; i < n; i++ {
		if (nulls == nil || !nulls[i]) && vals[i] != 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == n {
		return b, nil
	}
	return b.Gather(keep), nil
}

// projectBatch computes the output expressions over one batch.
func projectBatch(b *types.Batch, be *batchEval, schema *types.Schema) (*types.Batch, error) {
	cols, err := be.run(b)
	if err != nil {
		return nil, err
	}
	return types.NewBatch(schema, cols)
}

// filterOp evaluates a predicate (possibly UDF-bearing) per batch.
type filterOp struct {
	child operator
	eval  *batchEval
}

func (o *filterOp) Next() (*types.Batch, error) {
	for {
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		out, err := filterBatch(b, o.eval)
		if err != nil {
			return nil, err
		}
		if out.NumRows() == 0 {
			continue
		}
		return out, nil
	}
}

func (o *filterOp) Close() error { return o.child.Close() }

// projectOp computes output expressions per batch.
type projectOp struct {
	child  operator
	eval   *batchEval
	schema *types.Schema
}

func (o *projectOp) Next() (*types.Batch, error) {
	b, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	return projectBatch(b, o.eval, o.schema)
}

func (o *projectOp) Close() error { return o.child.Close() }

// sortOp materializes and sorts its input. The input is concatenated
// column-wise, sort keys are computed per column (vectorized when the order
// expressions compile), and the output is one bulk Gather by the sorted
// permutation.
type sortOp struct {
	child  operator
	orders []plan.SortOrder
	progs  []*eval.VecProg // per order expression; nil entries row-evaluate
	qc     *QueryContext
	schema *types.Schema
	done   bool
}

func (o *sortOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	var batches []*types.Batch
	for {
		b, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	all, err := concat(o.schema, batches)
	if err != nil {
		return nil, err
	}
	n := all.NumRows()

	// One key column per ORDER BY expression.
	keyCols := make([]*types.Column, len(o.orders))
	for ki, ord := range o.orders {
		if o.progs != nil && o.progs[ki] != nil {
			keyCols[ki] = o.progs[ki].Run(all.Cols, n, nil)
			continue
		}
		kind := ord.Expr.Type()
		if kind == types.KindNull {
			kind = types.KindString
		}
		kb := types.NewBuilder(kind, n)
		for i := 0; i < n; i++ {
			row := func(c int) types.Value { return all.Cols[c].Value(i) }
			v, err := eval.Eval(ord.Expr, row, o.qc.Eval)
			if err != nil {
				return nil, err
			}
			kb.Append(v)
		}
		keyCols[ki] = kb.Build()
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for ki, ord := range o.orders {
			cmp, ok := keyCols[ki].Value(idx[a]).Compare(keyCols[ki].Value(idx[b]))
			if !ok {
				continue
			}
			if cmp != 0 {
				if ord.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return all.Gather(idx), nil
}

func (o *sortOp) Close() error { return o.child.Close() }

// limitOp truncates the stream.
type limitOp struct {
	child   operator
	n       int64
	offset  int64
	skipped int64
	emitted int64
}

func (o *limitOp) Next() (*types.Batch, error) {
	for {
		if o.emitted >= o.n {
			return nil, io.EOF
		}
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		start := 0
		if o.skipped < o.offset {
			need := o.offset - o.skipped
			if int64(b.NumRows()) <= need {
				o.skipped += int64(b.NumRows())
				continue
			}
			start = int(need)
			o.skipped = o.offset
		}
		remaining := o.n - o.emitted
		end := b.NumRows()
		if int64(end-start) > remaining {
			end = start + int(remaining)
		}
		if start == 0 && end == b.NumRows() {
			o.emitted += int64(b.NumRows())
			return b, nil
		}
		o.emitted += int64(end - start)
		return b.Slice(start, end), nil
	}
}

func (o *limitOp) Close() error { return o.child.Close() }

// distinctOp removes duplicate rows via hashing with collision checks.
type distinctOp struct {
	child  operator
	schema *types.Schema
	seen   map[uint64][][]types.Value
}

func (o *distinctOp) Next() (*types.Batch, error) {
	if o.seen == nil {
		o.seen = map[uint64][][]types.Value{}
	}
	for {
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		bb := types.NewBatchBuilder(o.schema, b.NumRows())
		for i := 0; i < b.NumRows(); i++ {
			row := b.Row(i)
			h := hashRow(row)
			dup := false
			for _, prev := range o.seen[h] {
				if rowsEqual(prev, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			o.seen[h] = append(o.seen[h], row)
			bb.AppendRow(row)
		}
		if bb.Len() == 0 {
			continue
		}
		return bb.Build(), nil
	}
}

func (o *distinctOp) Close() error { return o.child.Close() }

// unionOp concatenates child streams.
type unionOp struct {
	children []operator
	pos      int
}

func (o *unionOp) Next() (*types.Batch, error) {
	for o.pos < len(o.children) {
		b, err := o.children[o.pos].Next()
		if err == io.EOF {
			o.pos++
			continue
		}
		return b, err
	}
	return nil, io.EOF
}

func (o *unionOp) Close() error {
	var first error
	for _, c := range o.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func hashRow(row []types.Value) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range row {
		h = (h ^ v.Hash()) * 1099511628211
	}
	return h
}

func rowsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
