package exec

import (
	"context"
	"fmt"
	"io"
	"sync"

	"lakeguard/internal/types"
)

// exchange is the morsel-driven parallelism primitive (paper §5 spirit:
// governance must not cost engine performance). A single producer goroutine
// claims morsels in input order; a fixed pool of workers executes them; the
// consumer gathers results strictly in claim order, so every downstream
// operator observes the exact batch sequence serial execution would produce.
//
// The ordered gather works through a futures pipeline: for each morsel the
// producer creates a future and pushes it to both the work queue (workers
// fill it) and the futures queue (the consumer awaits them in FIFO order).
// Both queues are bounded, which gives backpressure: at most ~4x workers
// morsels are in flight, independent of input size.
//
// Failure semantics: the first failing worker records its error and cancels
// the exchange context, which stops the producer and makes the remaining
// workers drain their queued morsels without executing them. The consumer
// surfaces exactly one wrapped error — the recorded root cause, not the
// cascade of context cancellations it triggered.
type exchange[M, T any] struct {
	cancel  context.CancelFunc
	futures chan *future[T]
	wg      sync.WaitGroup

	mu      sync.Mutex
	rootErr error

	failed error
	isZero func(T) bool // results to skip (nil = emit everything)
}

type future[T any] struct {
	done   chan struct{}
	result T
	err    error
}

type exJob[M, T any] struct {
	morsel M
	fut    *future[T]
}

// newExchange starts the producer and worker goroutines.
//   - source yields morsels in order; done=true ends the stream. It runs on
//     the single producer goroutine, so pulling from a child operator is safe.
//   - makeWorker builds one worker's morsel function; per-worker state (e.g.
//     an exprRunner, whose lazy UDF plan is not concurrency-safe) lives in
//     the closure.
func newExchange[M, T any](
	parent context.Context,
	workers int,
	source func() (M, bool, error),
	makeWorker func() (func(context.Context, M) (T, error), error),
	isZero func(T) bool,
) (*exchange[M, T], error) {
	ctx, cancel := context.WithCancel(parent)
	depth := workers * 2
	ex := &exchange[M, T]{
		cancel:  cancel,
		futures: make(chan *future[T], depth+workers+1),
		isZero:  isZero,
	}
	work := make(chan exJob[M, T], depth)

	runners := make([]func(context.Context, M) (T, error), workers)
	for w := range runners {
		fn, err := makeWorker()
		if err != nil {
			cancel()
			return nil, err
		}
		runners[w] = fn
	}

	for w := 0; w < workers; w++ {
		run := runners[w]
		ex.wg.Add(1)
		go func() {
			defer ex.wg.Done()
			for j := range work {
				if err := ctx.Err(); err != nil {
					// A sibling failed (or the caller cancelled): drain
					// without executing so queued futures resolve promptly.
					j.fut.err = err
					close(j.fut.done)
					continue
				}
				res, err := run(ctx, j.morsel)
				j.fut.result, j.fut.err = res, err
				if err != nil {
					ex.fail(err)
				}
				close(j.fut.done)
			}
		}()
	}

	ex.wg.Add(1)
	go func() {
		defer ex.wg.Done()
		defer close(ex.futures)
		defer close(work)
		for {
			if ctx.Err() != nil {
				return
			}
			m, done, err := source()
			if err != nil {
				// A source error surfaces at its input position, exactly
				// where serial execution would have hit it.
				f := &future[T]{done: make(chan struct{}), err: err}
				close(f.done)
				select {
				case ex.futures <- f:
				case <-ctx.Done():
				}
				return
			}
			if done {
				return
			}
			f := &future[T]{done: make(chan struct{})}
			select {
			case work <- exJob[M, T]{morsel: m, fut: f}:
			case <-ctx.Done():
				return
			}
			select {
			case ex.futures <- f:
			case <-ctx.Done():
				return
			}
		}
	}()

	return ex, nil
}

// fail records the first root-cause error and cancels siblings.
func (ex *exchange[M, T]) fail(err error) {
	ex.mu.Lock()
	if ex.rootErr == nil {
		ex.rootErr = err
	}
	ex.mu.Unlock()
	ex.cancel()
}

func (ex *exchange[M, T]) cause(err error) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.rootErr != nil {
		return ex.rootErr
	}
	return err
}

// Next returns the next result in morsel order. On failure it cancels the
// remaining work and keeps returning the same wrapped error.
func (ex *exchange[M, T]) Next() (T, error) {
	var zero T
	if ex.failed != nil {
		return zero, ex.failed
	}
	for {
		f, ok := <-ex.futures
		if !ok {
			return zero, io.EOF
		}
		<-f.done
		if f.err != nil {
			ex.cancel()
			ex.failed = fmt.Errorf("exec: parallel worker: %w", ex.cause(f.err))
			return zero, ex.failed
		}
		if ex.isZero != nil && ex.isZero(f.result) {
			continue
		}
		return f.result, nil
	}
}

// Close cancels outstanding work and waits for all goroutines; it is safe
// to call at any point, including after an abandoned (e.g. LIMIT-truncated)
// stream.
func (ex *exchange[M, T]) Close() error {
	ex.cancel()
	go func() {
		for range ex.futures { // unblock the producer's futures sends
		}
	}()
	ex.wg.Wait()
	return nil
}

// skipEmptyBatch filters zero-row results out of a batch exchange, matching
// the serial operators, which never emit empty batches mid-stream.
func skipEmptyBatch(b *types.Batch) bool { return b == nil || b.NumRows() == 0 }
