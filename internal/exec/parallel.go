// Morsel-driven operator wiring: how the engine decides which parts of a
// plan run across workers and how those parts keep serial semantics. The
// rules are:
//
//   - Parallelism changes operators, never plan shape: the optimizer and the
//     security verifier see the exact same plan regardless of worker count.
//   - Results are gathered in morsel order, so every operator emits the same
//     batch sequence serial execution would (byte-identical output).
//   - Expression stages with UDF calls stay on the serial path; sandbox
//     crossings already partition large batches across workers internally
//     (udfrun.go), and stacking the two would oversubscribe trust-domain
//     sandboxes.
package exec

import (
	"context"
	"errors"
	"io"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// batchSource adapts a child operator into an exchange source. It runs on
// the exchange's single producer goroutine, so pulling the child (which may
// itself be parallel) needs no locking.
func batchSource(child operator) func() (*types.Batch, bool, error) {
	return func() (*types.Batch, bool, error) {
		b, err := child.Next()
		if errors.Is(err, io.EOF) {
			return nil, true, nil
		}
		if err != nil {
			return nil, false, err
		}
		return b, false, nil
	}
}

// batchMapFn transforms one input batch into one output batch on a worker.
type batchMapFn = func(context.Context, *types.Batch) (*types.Batch, error)

// mapExOp runs a batch→batch function over child batches on an exchange.
type mapExOp struct {
	child  operator
	ex     *exchange[*types.Batch, *types.Batch]
	wspans []*telemetry.Span
}

func (o *mapExOp) Next() (*types.Batch, error) { return o.ex.Next() }

func (o *mapExOp) Close() error {
	o.ex.Close()
	endSpans(o.wspans) // after the exchange join: workers are quiesced
	return o.child.Close()
}

// newParallelMap wires child batches through per-worker map functions,
// preserving batch order. When ctx carries a telemetry span, each worker
// gets a child span recording its morsel count; the spans end when the
// operator closes (after the exchange's WaitGroup join, so reads are safe).
func newParallelMap(ctx context.Context, child operator, workers int, makeWorker func() (batchMapFn, error), isZero func(*types.Batch) bool) (operator, error) {
	var wspans []*telemetry.Span
	mk := makeWorker
	if telemetry.SpanFrom(ctx) != nil {
		mk = func() (batchMapFn, error) {
			fn, err := makeWorker()
			if err != nil {
				return nil, err
			}
			_, ws := telemetry.StartSpan(ctx, "exec.worker")
			ws.SetInt("worker", int64(len(wspans)))
			wspans = append(wspans, ws)
			return func(c context.Context, b *types.Batch) (*types.Batch, error) {
				out, err := fn(c, b)
				ws.Count("morsels", 1)
				if err != nil {
					ws.Fail(err)
				}
				return out, err
			}, nil
		}
	}
	ex, err := newExchange(ctx, workers, batchSource(child), mk, isZero)
	if err != nil {
		endSpans(wspans)
		child.Close()
		return nil, err
	}
	return &mapExOp{child: child, ex: ex, wspans: wspans}, nil
}

// exprsHaveUDF reports whether any expression contains a UDF call.
func exprsHaveUDF(exprs []plan.Expr) bool {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if plan.ExprContains(e, func(x plan.Expr) bool {
			_, ok := x.(*plan.UDFCall)
			return ok
		}) {
			return true
		}
	}
	return false
}

func schemaKinds(s *types.Schema) []types.Kind {
	ks := make([]types.Kind, len(s.Fields))
	for i, f := range s.Fields {
		ks[i] = f.Kind
	}
	return ks
}

// compileVecExprs compiles each expression against the input schema,
// independently. Entries are nil for expressions outside the vectorizable
// subset or (when want != nil) whose result kind differs from want[i].
func compileVecExprs(exprs []plan.Expr, in *types.Schema, want []types.Kind) []*eval.VecProg {
	kinds := schemaKinds(in)
	progs := make([]*eval.VecProg, len(exprs))
	for i, e := range exprs {
		p, ok := eval.CompileVec(e, kinds)
		if !ok {
			continue
		}
		if want != nil && p.Kind() != want[i] {
			continue
		}
		progs[i] = p
	}
	return progs
}

func allCompiled(progs []*eval.VecProg) bool {
	for _, p := range progs {
		if p == nil {
			return false
		}
	}
	return len(progs) > 0
}

// batchEval evaluates a fixed expression list over batches: through compiled
// vector programs when every expression is in the vectorizable subset,
// through the row-interpreting exprRunner otherwise. Programs are immutable
// and shared across workers; runners are per-worker.
type batchEval struct {
	progs  []*eval.VecProg // all non-nil => vectorized path
	runner *exprRunner
	stats  *telemetry.OpStats // vectorized-vs-fallback accounting (nil ok)
}

func (be *batchEval) run(b *types.Batch) ([]*types.Column, error) {
	be.stats.CountEval(be.progs != nil)
	if be.progs != nil {
		n := b.NumRows()
		out := make([]*types.Column, len(be.progs))
		for i, p := range be.progs {
			out[i] = p.Run(b.Cols, n, nil)
		}
		return out, nil
	}
	return be.runner.run(b)
}

// newBatchEval builds a batchEval for exprs; vectorized when possible, with
// a fresh exprRunner fallback otherwise.
func (e *Engine) newBatchEval(qc *QueryContext, exprs []plan.Expr, in *types.Schema, want []types.Kind) (*batchEval, error) {
	if progs := compileVecExprs(exprs, in, want); allCompiled(progs) {
		return &batchEval{progs: progs, stats: qc.opParent}, nil
	}
	runner, err := e.newExprRunner(qc, exprs)
	if err != nil {
		return nil, err
	}
	return &batchEval{runner: runner, stats: qc.opParent}, nil
}

// buildFilter compiles a Filter node, parallelizing UDF-free predicates.
func (e *Engine) buildFilter(qc *QueryContext, t *plan.Filter, child operator) (operator, error) {
	exprs := []plan.Expr{t.Cond}
	want := []types.Kind{types.KindBool}
	be, err := e.newBatchEval(qc, exprs, t.Child.Schema(), want)
	if err != nil {
		child.Close()
		return nil, err
	}
	if w := e.workers(); w > 1 && !exprsHaveUDF(exprs) {
		return newParallelMap(qc.GoContext(), child, w, func() (batchMapFn, error) {
			wbe := be
			if be.progs == nil {
				var werr error
				if wbe, werr = e.newBatchEval(qc, exprs, t.Child.Schema(), want); werr != nil {
					return nil, werr
				}
			}
			return func(_ context.Context, b *types.Batch) (*types.Batch, error) {
				return filterBatch(b, wbe)
			}, nil
		}, skipEmptyBatch)
	}
	return &filterOp{child: child, eval: be}, nil
}

// buildProject compiles a Project node, parallelizing UDF-free expressions.
func (e *Engine) buildProject(qc *QueryContext, t *plan.Project, child operator) (operator, error) {
	want := schemaKinds(t.OutSchema)
	be, err := e.newBatchEval(qc, t.Exprs, t.Child.Schema(), want)
	if err != nil {
		child.Close()
		return nil, err
	}
	if w := e.workers(); w > 1 && !exprsHaveUDF(t.Exprs) {
		return newParallelMap(qc.GoContext(), child, w, func() (batchMapFn, error) {
			wbe := be
			if be.progs == nil {
				var werr error
				if wbe, werr = e.newBatchEval(qc, t.Exprs, t.Child.Schema(), want); werr != nil {
					return nil, werr
				}
			}
			return func(_ context.Context, b *types.Batch) (*types.Batch, error) {
				return projectBatch(b, wbe, t.OutSchema)
			}, nil
		}, nil) // empty batches pass through, exactly like the serial path
	}
	return &projectOp{child: child, eval: be, schema: t.OutSchema}, nil
}

// parallelScanOp pulls decoded-and-filtered file batches from a file-granular
// exchange. Every worker reads through the same credential-bound reader the
// TableProvider vended, so parallelism adds no new authority.
type parallelScanOp struct {
	ex     *exchange[int, *types.Batch]
	wspans []*telemetry.Span
}

func (o *parallelScanOp) Next() (*types.Batch, error) { return o.ex.Next() }

func (o *parallelScanOp) Close() error {
	err := o.ex.Close()
	endSpans(o.wspans) // after the exchange join: workers are quiesced
	return err
}
