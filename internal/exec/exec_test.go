package exec

import (
	"context"
	"strings"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/sql"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

const (
	admin = "admin@corp.com"
	alice = "alice@corp.com"
)

type world struct {
	cat    *catalog.Catalog
	engine *Engine
}

func adminCtx() catalog.RequestContext {
	return catalog.RequestContext{User: admin, Compute: catalog.ComputeStandard, SessionID: "s0"}
}

func newWorld(t testing.TB) *world {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	schema := types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindDate},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	)
	if err := cat.CreateTable(adminCtx(), []string{"sales"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	d, _ := types.DateFromString("2024-12-01")
	d2, _ := types.DateFromString("2024-12-02")
	bb := types.NewBatchBuilder(schema, 6)
	rows := []struct {
		amt    float64
		day    types.Value
		seller string
		region string
	}{
		{100, d, "ann", "US"},
		{200, d, "ben", "EU"},
		{50, d2, "ann", "US"},
		{75, d, "cat", "US"},
		{300, d2, "ben", "EU"},
		{25, d, "dan", "APAC"},
	}
	for _, r := range rows {
		bb.AppendRow([]types.Value{types.Float64(r.amt), r.day, types.String(r.seller), types.String(r.region)})
	}
	if _, err := cat.AppendToTable(adminCtx(), []string{"sales"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	dispatcher := sandbox.NewDispatcher(sandbox.FactoryFunc(func(ctx context.Context, domain string) (*sandbox.Sandbox, error) {
		return sandbox.New(domain, sandbox.Config{}), nil
	}))
	return &world{
		cat:    cat,
		engine: &Engine{Tables: cat, Dispatcher: dispatcher, FuseUDFs: true},
	}
}

// query parses, analyzes, optimizes, and executes SQL as the given user.
func (w *world) query(t *testing.T, ctx catalog.RequestContext, sqlText string) *types.Batch {
	t.Helper()
	b, err := w.tryQuery(ctx, sqlText)
	if err != nil {
		t.Fatalf("query %q: %v", sqlText, err)
	}
	return b
}

func (w *world) tryQuery(ctx catalog.RequestContext, sqlText string) (*types.Batch, error) {
	q, err := sql.ParseQuery(sqlText)
	if err != nil {
		return nil, err
	}
	a := analyzer.New(w.cat, ctx)
	resolved, err := a.Analyze(q)
	if err != nil {
		return nil, err
	}
	optimized := optimizer.Optimize(resolved, optimizer.DefaultOptions())
	qc := NewQueryContext(w.cat, ctx)
	return w.engine.ExecuteToBatch(qc, optimized)
}

func col(b *types.Batch, name string) *types.Column {
	i := b.Schema.IndexOf(name)
	if i < 0 {
		panic("no column " + name)
	}
	return b.Cols[i]
}

func TestSelectWhere(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT amount, seller FROM sales WHERE region = 'US' ORDER BY amount")
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", b.NumRows(), b.String())
	}
	if col(b, "amount").Float64(0) != 50 || col(b, "seller").StringAt(2) != "ann" {
		t.Errorf("content:\n%s", b.String())
	}
}

func TestDateFilter(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT amount FROM sales WHERE date = '2024-12-01'")
	if b.NumRows() != 4 {
		t.Fatalf("rows = %d", b.NumRows())
	}
}

func TestArithmeticProjection(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT amount * 2 AS double, upper(seller) AS s FROM sales WHERE seller = 'ann' ORDER BY double")
	if b.NumRows() != 2 || col(b, "double").Float64(0) != 100 || col(b, "s").StringAt(0) != "ANN" {
		t.Errorf("result:\n%s", b.String())
	}
}

func TestGroupByAggregates(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean
		FROM sales GROUP BY region ORDER BY total DESC`)
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", b.NumRows(), b.String())
	}
	// EU: 200+300=500
	if col(b, "region").StringAt(0) != "EU" || col(b, "total").Float64(0) != 500 {
		t.Errorf("row 0:\n%s", b.String())
	}
	if col(b, "n").Int64(0) != 2 || col(b, "lo").Float64(0) != 200 || col(b, "hi").Float64(0) != 300 || col(b, "mean").Float64(0) != 250 {
		t.Errorf("aggregates:\n%s", b.String())
	}
}

func TestHaving(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 200 ORDER BY region")
	if b.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", b.NumRows(), b.String())
	}
	if col(b, "region").StringAt(0) != "EU" || col(b, "region").StringAt(1) != "US" {
		t.Errorf("result:\n%s", b.String())
	}
}

func TestCountDistinctAndGlobalAgg(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT COUNT(DISTINCT seller) AS sellers, COUNT(*) AS rows FROM sales")
	if b.NumRows() != 1 || col(b, "sellers").Int64(0) != 4 || col(b, "rows").Int64(0) != 6 {
		t.Errorf("result:\n%s", b.String())
	}
	// Global aggregate over empty input yields one row.
	b2 := w.query(t, adminCtx(), "SELECT COUNT(*) AS n FROM sales WHERE amount > 99999")
	if b2.NumRows() != 1 || col(b2, "n").Int64(0) != 0 {
		t.Errorf("empty agg:\n%s", b2.String())
	}
}

func TestJoins(t *testing.T) {
	w := newWorld(t)
	qschema := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "quota", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"quotas"}, qschema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(qschema, 3)
	bb.AppendRow([]types.Value{types.String("ann"), types.Float64(120)})
	bb.AppendRow([]types.Value{types.String("ben"), types.Float64(400)})
	bb.AppendRow([]types.Value{types.String("zoe"), types.Float64(10)})
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"quotas"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}

	inner := w.query(t, adminCtx(), `
		SELECT s.seller, SUM(s.amount) AS total, MAX(q.quota) AS quota
		FROM sales s JOIN quotas q ON s.seller = q.seller
		GROUP BY s.seller ORDER BY s.seller`)
	if inner.NumRows() != 2 {
		t.Fatalf("inner rows = %d\n%s", inner.NumRows(), inner.String())
	}
	if col(inner, "total").Float64(0) != 150 || col(inner, "quota").Float64(0) != 120 {
		t.Errorf("inner:\n%s", inner.String())
	}

	left := w.query(t, adminCtx(), `
		SELECT DISTINCT s.seller, q.quota FROM sales s LEFT JOIN quotas q ON s.seller = q.seller ORDER BY s.seller`)
	if left.NumRows() != 4 {
		t.Fatalf("left rows = %d\n%s", left.NumRows(), left.String())
	}
	// cat and dan have NULL quota.
	if !col(left, "quota").IsNull(2) || !col(left, "quota").IsNull(3) {
		t.Errorf("left join nulls:\n%s", left.String())
	}

	semi := w.query(t, adminCtx(), `SELECT DISTINCT seller FROM sales s LEFT SEMI JOIN quotas q ON s.seller = q.seller ORDER BY seller`)
	if semi.NumRows() != 2 {
		t.Errorf("semi:\n%s", semi.String())
	}
	anti := w.query(t, adminCtx(), `SELECT DISTINCT seller FROM sales s LEFT ANTI JOIN quotas q ON s.seller = q.seller ORDER BY seller`)
	if anti.NumRows() != 2 || col(anti, "seller").StringAt(0) != "cat" {
		t.Errorf("anti:\n%s", anti.String())
	}

	right := w.query(t, adminCtx(), `
		SELECT q.seller, s.amount FROM sales s RIGHT JOIN quotas q ON s.seller = q.seller ORDER BY q.seller`)
	// ann(2 rows), ben(2 rows), zoe(1 unmatched row)
	if right.NumRows() != 5 {
		t.Fatalf("right rows = %d\n%s", right.NumRows(), right.String())
	}
	cross := w.query(t, adminCtx(), "SELECT COUNT(*) AS n FROM sales CROSS JOIN quotas")
	if col(cross, "n").Int64(0) != 18 {
		t.Errorf("cross:\n%s", cross.String())
	}
}

func TestLimitOffset(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT amount FROM sales ORDER BY amount LIMIT 2 OFFSET 1")
	if b.NumRows() != 2 || col(b, "amount").Float64(0) != 50 || col(b, "amount").Float64(1) != 75 {
		t.Errorf("result:\n%s", b.String())
	}
}

func TestUnionAndDistinct(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT region FROM sales UNION SELECT region FROM sales ORDER BY region")
	if b.NumRows() != 3 {
		t.Errorf("union distinct rows = %d\n%s", b.NumRows(), b.String())
	}
	b2 := w.query(t, adminCtx(), "SELECT region FROM sales UNION ALL SELECT region FROM sales")
	if b2.NumRows() != 12 {
		t.Errorf("union all rows = %d", b2.NumRows())
	}
}

func TestCaseAndScalarFunctions(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), `
		SELECT seller, CASE WHEN amount >= 100 THEN 'big' ELSE 'small' END AS size
		FROM sales WHERE region = 'US' ORDER BY amount DESC`)
	if col(b, "size").StringAt(0) != "big" || col(b, "size").StringAt(2) != "small" {
		t.Errorf("case:\n%s", b.String())
	}
}

func TestSessionUDFThroughSandbox(t *testing.T) {
	w := newWorld(t)
	q, _ := sql.ParseQuery("SELECT seller, boost(amount) AS boosted FROM sales WHERE region = 'US' ORDER BY boosted")
	a := analyzer.New(w.cat, adminCtx())
	a.TempFuncs = map[string]analyzer.TempFunc{
		"boost": {
			Params:  []types.Field{{Name: "x", Kind: types.KindFloat64}},
			Returns: types.KindFloat64,
			Body:    "return x * 2.0",
			Owner:   admin,
		},
	}
	resolved, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	optimized := optimizer.Optimize(resolved, optimizer.DefaultOptions())
	qc := NewQueryContext(w.cat, adminCtx())
	b, err := w.engine.ExecuteToBatch(qc, optimized)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 || col(b, "boosted").Float64(0) != 100 {
		t.Errorf("udf result:\n%s", b.String())
	}
	// The work went through a sandbox.
	if w.engine.Dispatcher.Stats().ColdStarts == 0 {
		t.Error("UDF did not use the sandbox")
	}
}

func TestRowFilterEnforcedEndToEnd(t *testing.T) {
	w := newWorld(t)
	if err := w.cat.SetRowFilter(adminCtx(), []string{"sales"}, "region = 'US'", false); err != nil {
		t.Fatal(err)
	}
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	ctx := catalog.RequestContext{User: alice, Compute: catalog.ComputeStandard, SessionID: "sa"}
	b := w.query(t, ctx, "SELECT seller, region FROM sales ORDER BY seller")
	if b.NumRows() != 3 {
		t.Fatalf("row filter not applied: %d rows\n%s", b.NumRows(), b.String())
	}
	for i := 0; i < b.NumRows(); i++ {
		if col(b, "region").StringAt(i) != "US" {
			t.Fatalf("leaked row:\n%s", b.String())
		}
	}
}

func TestDynamicRowFilterCurrentUser(t *testing.T) {
	w := newWorld(t)
	// Sellers see only their own rows; admins see everything.
	filter := "seller = CURRENT_USER() OR IS_ACCOUNT_GROUP_MEMBER('managers')"
	if err := w.cat.SetRowFilter(adminCtx(), []string{"sales"}, filter, false); err != nil {
		t.Fatal(err)
	}
	w.cat.CreateGroup("managers", "boss@corp.com")
	for _, u := range []string{"ann", "ben", "boss@corp.com"} {
		w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, u)
	}
	annCtx := catalog.RequestContext{User: "ann", Compute: catalog.ComputeStandard, SessionID: "sann"}
	b := w.query(t, annCtx, "SELECT seller FROM sales")
	if b.NumRows() != 2 {
		t.Fatalf("ann sees %d rows", b.NumRows())
	}
	bossCtx := catalog.RequestContext{User: "boss@corp.com", Compute: catalog.ComputeStandard, SessionID: "sboss"}
	b2 := w.query(t, bossCtx, "SELECT seller FROM sales")
	if b2.NumRows() != 6 {
		t.Fatalf("boss sees %d rows", b2.NumRows())
	}
}

func TestColumnMaskEnforcedEndToEnd(t *testing.T) {
	w := newWorld(t)
	mask := "CASE WHEN IS_ACCOUNT_GROUP_MEMBER('hr') THEN seller ELSE '***' END"
	if err := w.cat.SetColumnMask(adminCtx(), []string{"sales"}, "seller", mask, false); err != nil {
		t.Fatal(err)
	}
	w.cat.CreateGroup("hr", "hrlead@corp.com")
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, "hrlead@corp.com")

	aliceCtx := catalog.RequestContext{User: alice, Compute: catalog.ComputeStandard, SessionID: "sa"}
	b := w.query(t, aliceCtx, "SELECT seller FROM sales")
	for i := 0; i < b.NumRows(); i++ {
		if col(b, "seller").StringAt(i) != "***" {
			t.Fatalf("mask bypassed:\n%s", b.String())
		}
	}
	hrCtx := catalog.RequestContext{User: "hrlead@corp.com", Compute: catalog.ComputeStandard, SessionID: "sh"}
	b2 := w.query(t, hrCtx, "SELECT DISTINCT seller FROM sales ORDER BY seller")
	if b2.NumRows() != 4 || col(b2, "seller").StringAt(0) != "ann" {
		t.Errorf("hr should see raw values:\n%s", b2.String())
	}
}

func TestMaskedColumnFilterSeesMaskedValues(t *testing.T) {
	w := newWorld(t)
	w.cat.SetColumnMask(adminCtx(), []string{"sales"}, "seller", "'***'", false)
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	aliceCtx := catalog.RequestContext{User: alice, Compute: catalog.ComputeStandard, SessionID: "sa"}
	// Filtering on the true value must find nothing (the filter runs above
	// the mask) — otherwise predicates become an oracle on hidden data.
	b := w.query(t, aliceCtx, "SELECT amount FROM sales WHERE seller = 'ann'")
	if b.NumRows() != 0 {
		t.Fatalf("predicate oracle leak: %d rows", b.NumRows())
	}
	b2 := w.query(t, aliceCtx, "SELECT amount FROM sales WHERE seller = '***'")
	if b2.NumRows() != 6 {
		t.Fatalf("masked filter rows = %d", b2.NumRows())
	}
}

func TestViewEndToEnd(t *testing.T) {
	w := newWorld(t)
	vs := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "amount", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateView(adminCtx(), []string{"us_sales"},
		"SELECT seller, amount FROM sales WHERE region = 'US'", false, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"us_sales"}, alice)
	aliceCtx := catalog.RequestContext{User: alice, Compute: catalog.ComputeStandard, SessionID: "sa"}
	b := w.query(t, aliceCtx, "SELECT seller, amount FROM us_sales ORDER BY amount DESC")
	if b.NumRows() != 3 || col(b, "amount").Float64(0) != 100 {
		t.Errorf("view result:\n%s", b.String())
	}
	// Base table remains off limits.
	if _, err := w.tryQuery(aliceCtx, "SELECT * FROM sales"); err == nil {
		t.Error("base table access should be denied")
	}
}

func TestMaterializedViewEndToEnd(t *testing.T) {
	w := newWorld(t)
	vs := types.NewSchema(
		types.Field{Name: "region", Kind: types.KindString},
		types.Field{Name: "total", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateView(adminCtx(), []string{"region_totals"},
		"SELECT region, SUM(amount) AS total FROM sales GROUP BY region", true, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	// Refresh by executing the view body.
	data := w.query(t, adminCtx(), "SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
	if err := w.cat.RefreshMaterializedView(adminCtx(), []string{"region_totals"}, []*types.Batch{data}); err != nil {
		t.Fatal(err)
	}
	b := w.query(t, adminCtx(), "SELECT * FROM region_totals ORDER BY total DESC")
	if b.NumRows() != 3 || col(b, "total").Float64(0) != 500 {
		t.Errorf("mv result:\n%s", b.String())
	}
}

func TestTimeTravelEndToEnd(t *testing.T) {
	w := newWorld(t)
	// Version 1 has 6 rows; append 1 more -> version 2.
	extra := types.NewBatchBuilder(types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindDate},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	), 1)
	d, _ := types.DateFromString("2024-12-03")
	extra.AppendRow([]types.Value{types.Float64(999), d, types.String("eve"), types.String("US")})
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"sales"}, []*types.Batch{extra.Build()}); err != nil {
		t.Fatal(err)
	}
	now := w.query(t, adminCtx(), "SELECT COUNT(*) AS n FROM sales")
	if col(now, "n").Int64(0) != 7 {
		t.Fatalf("latest = %d", col(now, "n").Int64(0))
	}
	old := w.query(t, adminCtx(), "SELECT COUNT(*) AS n FROM sales VERSION AS OF 1")
	if col(old, "n").Int64(0) != 6 {
		t.Fatalf("v1 = %d", col(old, "n").Int64(0))
	}
}

func TestSubqueryAndCTE(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), `
		WITH us AS (SELECT seller, amount FROM sales WHERE region = 'US')
		SELECT seller, SUM(amount) AS total FROM us GROUP BY seller ORDER BY total DESC`)
	if b.NumRows() != 2 || col(b, "total").Float64(0) != 150 {
		t.Errorf("cte result:\n%s", b.String())
	}
	b2 := w.query(t, adminCtx(), "SELECT x FROM (SELECT amount AS x FROM sales WHERE amount > 200) big")
	if b2.NumRows() != 1 || col(b2, "x").Float64(0) != 300 {
		t.Errorf("subquery:\n%s", b2.String())
	}
}

func TestRemoteScanWithoutExecutorFails(t *testing.T) {
	w := newWorld(t)
	w.cat.SetRowFilter(adminCtx(), []string{"sales"}, "region = 'US'", false)
	w.cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	ctx := catalog.RequestContext{User: alice, Compute: catalog.ComputeDedicated, SessionID: "sa"}
	_, err := w.tryQuery(ctx, "SELECT amount FROM sales")
	if err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("err = %v", err)
	}
}

func TestValuesQuery(t *testing.T) {
	w := newWorld(t)
	b := w.query(t, adminCtx(), "SELECT col1 + 1 AS n FROM (VALUES (1), (2), (3)) v ORDER BY n DESC")
	if b.NumRows() != 3 || col(b, "n").Int64(0) != 4 {
		t.Errorf("values:\n%s", b.String())
	}
}
