package exec

import (
	"fmt"
	"io"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// vecAggOp is the vectorized grouped-aggregation operator. It replaces the
// row path's per-row key boxing, maphash call and bucket-list walk with a
// columnar pipeline: group keys are hashed a column at a time
// (eval.HashColumns), rows are assigned group ids through an open-addressing
// table keyed on the full 64-bit hash, and accumulation runs as typed
// COUNT/SUM/MIN/MAX/AVG kernels over group-indexed state arrays.
//
// Semantics mirror aggOp exactly: groups form by Value.Equal over key rows
// in first-occurrence order, NULL arguments are skipped (except COUNT(*)),
// float sums accumulate in stream order so results stay byte-identical to
// the row path at any parallelism, and DISTINCT falls back to the row path's
// seen-map per group. aggOp remains the reference implementation the
// equivalence harness compares against.
//
// When the group state outgrows Engine.SpillBytes the table freezes: rows
// matching existing groups keep accumulating in memory, rows with unseen
// keys spill (keys + args + __rid) to hash partitions that are aggregated
// recursively. Frozen-table groups all first occur before any spilled key,
// and partition outputs carry their group's first-occurrence rid, so
// emitting memory groups first and rid-merging partition outputs reproduces
// the in-memory emission order exactly.
type vecAggOp struct {
	*aggOp
	spillLimit int64

	started    bool
	pull       func() (*types.Batch, error)
	spillFiles []*spillFile
}

func newVecAggOp(row *aggOp) *vecAggOp {
	return &vecAggOp{aggOp: row, spillLimit: row.engine.spillLimit()}
}

func (o *vecAggOp) Close() error {
	for _, sf := range o.spillFiles {
		sf.cleanup()
	}
	return o.child.Close()
}

func (o *vecAggOp) trackSpill(sf *spillFile) { o.spillFiles = append(o.spillFiles, sf) }

func (o *vecAggOp) Next() (*types.Batch, error) {
	if !o.started {
		o.started = true
		if err := o.run(); err != nil {
			return nil, err
		}
	}
	return o.pull()
}

// run consumes the whole input and leaves a pull function over the finalized
// group batches.
func (o *vecAggOp) run() error {
	in, cleanup, err := o.inputStream()
	if err != nil {
		return err
	}
	defer cleanup()

	var rid int64
	pull := func() (*aggInput, []int64, error) {
		b, err := in()
		if err != nil {
			return nil, nil, err
		}
		rids := make([]int64, b.n)
		for i := range rids {
			rids[i] = rid
			rid++
		}
		return b, rids, nil
	}

	t := o.newTable()
	parts, err := o.consume(t, pull, 0, true)
	if err != nil {
		return err
	}

	// Global aggregation over empty input still yields one row (COUNT(*)=0).
	if len(t.keys) == 0 && parts == nil && len(o.node.GroupBy) == 0 {
		t.keys = append(t.keys, nil)
		t.firstRid = append(t.firstRid, 0)
		for _, a := range t.accs {
			a.grow(1)
		}
	}

	mem := o.groupsBatch(t, false)
	if parts == nil {
		done := false
		o.pull = func() (*types.Batch, error) {
			if done || mem.NumRows() == 0 {
				return nil, io.EOF
			}
			done = true
			return mem, nil
		}
		return nil
	}

	// Spilled: aggregate every partition recursively, then emit memory groups
	// followed by the rid-merge of all partition outputs.
	var outs []func() (*types.Batch, error)
	for _, sf := range parts.parts {
		if sf == nil {
			continue
		}
		if err := o.aggPartition(sf, 1, &outs); err != nil {
			return err
		}
	}
	var spillBytes int64
	for _, sf := range o.spillFiles {
		spillBytes += sf.bytes
	}
	o.qc.opParent.AddSpill(len(o.spillFiles), spillBytes)
	if m := o.engine.Metrics; m != nil {
		m.Counter("exec.spill.partitions").Add(int64(len(o.spillFiles)))
		m.Counter("exec.spill.bytes").Add(spillBytes)
	}
	merge, err := newRidMerge(o.node.Schema(), outs)
	if err != nil {
		return err
	}
	emittedMem := false
	o.pull = func() (*types.Batch, error) {
		if !emittedMem {
			emittedMem = true
			if mem.NumRows() > 0 {
				return mem, nil
			}
		}
		return merge.Next()
	}
	return nil
}

// consume feeds evaluated inputs into t. When canSpill and the group state
// outgrows the budget, the table freezes and unseen keys scatter into the
// returned partitions (keys + args + __rid), hashed at the given spill level.
func (o *vecAggOp) consume(t *vecAggTable, pull func() (*aggInput, []int64, error), level int, canSpill bool) (*spillPartitions, error) {
	var parts *spillPartitions
	for {
		in, rids, err := pull()
		if err == io.EOF {
			return parts, nil
		}
		if err != nil {
			return nil, err
		}
		hashes := eval.HashColumns(in.keyCols, in.n, nil)
		gids, spillSel := t.assign(hashes, in.keyCols, rids)
		for _, a := range t.accs {
			a.grow(len(t.keys))
		}
		for ai, a := range t.accs {
			a.accumulate(gids, in.argCols[ai], in.n)
		}
		if len(spillSel) > 0 {
			sb := spillInputBatch(parts.schema, in, rids, spillSel)
			sh := make([]uint64, len(spillSel))
			for i, r := range spillSel {
				sh[i] = hashes[r]
			}
			if err := parts.scatter(sb, sh); err != nil {
				return nil, err
			}
		}
		if canSpill && !t.frozen && t.bytes > o.spillLimit {
			t.frozen = true
			parts = newSpillPartitions(aggSpillSchema(in), level, o.trackSpill)
		}
	}
}

// aggPartition aggregates one spilled partition, appending rid-carrying
// output pulls to outs. Oversized partitions freeze again and recurse one
// level deeper; at maxSpillLevel the table grows unbounded (correctness over
// memory).
func (o *vecAggOp) aggPartition(sf *spillFile, level int, outs *[]func() (*types.Batch, error)) error {
	rd, err := sf.reader()
	if err != nil {
		return err
	}
	nk, na := len(o.node.GroupBy), len(o.aggs)
	pull := func() (*aggInput, []int64, error) {
		b, err := rd()
		if err != nil {
			return nil, nil, err
		}
		return &aggInput{
			n:       b.NumRows(),
			keyCols: b.Cols[:nk],
			argCols: b.Cols[nk : nk+na],
		}, b.Cols[nk+na].Int64s(), nil
	}

	t := o.newTable()
	parts, err := o.consume(t, pull, level, level < maxSpillLevel)
	if err != nil {
		return err
	}
	sf.cleanup()

	if len(t.keys) > 0 {
		mem := o.groupsBatch(t, true)
		done := false
		*outs = append(*outs, func() (*types.Batch, error) {
			if done {
				return nil, io.EOF
			}
			done = true
			return mem, nil
		})
	}
	if parts != nil {
		for _, sub := range parts.parts {
			if sub == nil {
				continue
			}
			if err := o.aggPartition(sub, level+1, outs); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupsBatch finalizes every group of t in creation order — which is
// first-occurrence order, so withRid output is ascending in __rid.
func (o *vecAggOp) groupsBatch(t *vecAggTable, withRid bool) *types.Batch {
	schema := o.node.Schema()
	if withRid {
		schema = schemaWithRID(o.node.Schema())
	}
	nk := len(o.node.GroupBy)
	bb := types.NewBatchBuilder(schema, len(t.keys))
	for g := range t.keys {
		for k := 0; k < nk; k++ {
			bb.Column(k).Append(t.keys[g][k])
		}
		for ai, a := range t.accs {
			bb.Column(nk + ai).Append(a.result(g))
		}
		if withRid {
			bb.Column(nk + len(t.accs)).AppendInt64(t.firstRid[g])
		}
	}
	return bb.Build()
}

// aggSpillSchema describes a spilled aggregation row: evaluated key columns,
// argument columns, then the global row id.
func aggSpillSchema(in *aggInput) *types.Schema {
	fields := make([]types.Field, 0, len(in.keyCols)+len(in.argCols)+1)
	for k, c := range in.keyCols {
		fields = append(fields, types.Field{Name: fmt.Sprintf("k%d", k), Kind: c.Kind()})
	}
	for a, c := range in.argCols {
		fields = append(fields, types.Field{Name: fmt.Sprintf("a%d", a), Kind: c.Kind()})
	}
	fields = append(fields, types.Field{Name: "__rid", Kind: types.KindInt64})
	return types.NewSchema(fields...)
}

// spillInputBatch gathers the sel rows of in (keys, args, rids) as a batch
// over the spill schema.
func spillInputBatch(schema *types.Schema, in *aggInput, rids []int64, sel []int) *types.Batch {
	cols := make([]*types.Column, 0, len(in.keyCols)+len(in.argCols)+1)
	for _, c := range in.keyCols {
		cols = append(cols, c.Gather(sel))
	}
	for _, c := range in.argCols {
		cols = append(cols, c.Gather(sel))
	}
	out := make([]int64, len(sel))
	for i, r := range sel {
		out[i] = rids[r]
	}
	cols = append(cols, types.NewInt64Column(types.KindInt64, out, nil))
	return &types.Batch{Schema: schema, Cols: cols}
}

// vecAggTable maps group-key rows to dense group ids via open addressing on
// the columnar key hash. Keys are boxed once per group (not per row); slot
// probes compare the full 64-bit hash before touching key values.
type vecAggTable struct {
	mask     uint64
	slots    []int32 // group id, -1 = empty
	hashes   []uint64
	keys     [][]types.Value
	firstRid []int64
	accs     []*vecAcc
	frozen   bool
	bytes    int64 // rough state-size estimate, drives spilling
}

func (o *vecAggOp) newTable() *vecAggTable {
	t := &vecAggTable{mask: 63, slots: make([]int32, 64)}
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.accs = make([]*vecAcc, len(o.aggs))
	for i, af := range o.aggs {
		t.accs[i] = newVecAcc(af)
	}
	return t
}

// assign resolves each row to a group id, creating groups in first-occurrence
// order. On a frozen table, rows with unseen keys get gid -1 and their
// indexes are returned for spilling.
func (t *vecAggTable) assign(hashes []uint64, keyCols []*types.Column, rids []int64) (gids []int32, spillSel []int) {
	n := len(hashes)
	gids = make([]int32, n)
	for i := 0; i < n; i++ {
		g := t.findOrAdd(hashes[i], keyCols, i, rids[i])
		if g < 0 {
			spillSel = append(spillSel, i)
		}
		gids[i] = g
	}
	return gids, spillSel
}

func (t *vecAggTable) findOrAdd(h uint64, keyCols []*types.Column, row int, rid int64) int32 {
	s := h & t.mask
	for {
		g := t.slots[s]
		if g < 0 {
			break
		}
		if t.hashes[g] == h && keyEqualAt(t.keys[g], keyCols, row) {
			return g
		}
		s = (s + 1) & t.mask
	}
	if t.frozen {
		return -1
	}
	if (len(t.keys)+1)*4 > len(t.slots)*3 {
		t.grow()
		s = h & t.mask
		for t.slots[s] >= 0 {
			s = (s + 1) & t.mask
		}
	}
	gid := int32(len(t.keys))
	t.slots[s] = gid
	key := make([]types.Value, len(keyCols))
	var kb int64 = 48
	for k, c := range keyCols {
		key[k] = c.Value(row)
		kb += 48 + int64(len(key[k].S))
	}
	t.keys = append(t.keys, key)
	t.hashes = append(t.hashes, h)
	t.firstRid = append(t.firstRid, rid)
	t.bytes += kb + int64(64*len(t.accs))
	return gid
}

func (t *vecAggTable) grow() {
	nb := len(t.slots) * 2
	slots := make([]int32, nb)
	for i := range slots {
		slots[i] = -1
	}
	mask := uint64(nb - 1)
	for gid, h := range t.hashes {
		s := h & mask
		for slots[s] >= 0 {
			s = (s + 1) & mask
		}
		slots[s] = int32(gid)
	}
	t.slots, t.mask = slots, mask
}

func keyEqualAt(key []types.Value, cols []*types.Column, row int) bool {
	for k, c := range cols {
		if !key[k].Equal(c.Value(row)) {
			return false
		}
	}
	return true
}

// Accumulator op codes; avg shares sum's accumulation.
const (
	accCount = iota
	accSum
	accMin
	accMax
)

// vecAcc accumulates one aggregate across all groups as typed state arrays
// indexed by group id. bulk kernels handle Int64/Float64 argument columns
// without boxing; everything else (and DISTINCT) goes through one(), which
// replicates aggOp.accumulate value-for-value.
type vecAcc struct {
	af      *plan.AggFunc
	op      int
	count   []int64
	sumI    []int64
	sumF    []float64
	vals    []types.Value
	nonNull []bool
	seen    []map[uint64][]types.Value
}

func newVecAcc(af *plan.AggFunc) *vecAcc {
	a := &vecAcc{af: af}
	switch af.Name {
	case "sum", "avg":
		a.op = accSum
	case "min":
		a.op = accMin
	case "max":
		a.op = accMax
	default:
		a.op = accCount
	}
	return a
}

func (a *vecAcc) grow(n int) {
	for len(a.count) < n {
		a.count = append(a.count, 0)
		a.nonNull = append(a.nonNull, false)
		switch a.op {
		case accSum:
			a.sumI = append(a.sumI, 0)
			a.sumF = append(a.sumF, 0)
		case accMin, accMax:
			a.vals = append(a.vals, types.Value{})
		}
		if a.af.Distinct {
			a.seen = append(a.seen, nil)
		}
	}
}

// one accumulates a single non-NULL, distinct-checked value into group g,
// mirroring the switch in aggOp.accumulate.
func (a *vecAcc) one(g int32, v types.Value) {
	a.nonNull[g] = true
	switch a.op {
	case accCount:
		a.count[g]++
	case accSum:
		a.count[g]++
		if v.Kind == types.KindInt64 {
			a.sumI[g] += v.I
		}
		a.sumF[g] += v.AsFloat64()
	case accMin:
		if a.count[g] == 0 {
			a.vals[g] = v
		} else if cmp, ok := v.Compare(a.vals[g]); ok && cmp < 0 {
			a.vals[g] = v
		}
		a.count[g]++
	case accMax:
		if a.count[g] == 0 {
			a.vals[g] = v
		} else if cmp, ok := v.Compare(a.vals[g]); ok && cmp > 0 {
			a.vals[g] = v
		}
		a.count[g]++
	}
}

// accumulate feeds one argument column. gids entries of -1 (spilled rows)
// are skipped. NULLs are skipped throughout: COUNT(*) arguments are the
// literal 1 and never NULL, so this matches the row path's Arg!=nil guard.
func (a *vecAcc) accumulate(gids []int32, col *types.Column, n int) {
	if a.af.Distinct {
		a.distinct(gids, col, n)
		return
	}
	nulls := col.NullMask()
	switch {
	case a.op == accCount:
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			a.nonNull[g] = true
			a.count[g]++
		}
	case a.op == accSum && col.Kind() == types.KindInt64:
		vs := col.Int64s()
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			a.nonNull[g] = true
			a.count[g]++
			a.sumI[g] += vs[i]
			a.sumF[g] += float64(vs[i])
		}
	case a.op == accSum && col.Kind() == types.KindFloat64:
		vs := col.Float64s()
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			a.nonNull[g] = true
			a.count[g]++
			a.sumF[g] += vs[i]
		}
	case (a.op == accMin || a.op == accMax) && col.Kind() == types.KindInt64:
		vs := col.Int64s()
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			if a.count[g] > 0 && a.vals[g].Kind == types.KindInt64 {
				if a.op == accMin && vs[i] < a.vals[g].I {
					a.vals[g] = types.Int64(vs[i])
				} else if a.op == accMax && vs[i] > a.vals[g].I {
					a.vals[g] = types.Int64(vs[i])
				}
				a.nonNull[g] = true
				a.count[g]++
				continue
			}
			a.one(g, col.Value(i))
		}
	case (a.op == accMin || a.op == accMax) && col.Kind() == types.KindFloat64:
		// Plain < and > reproduce Compare's cmpFloat for same-kind floats:
		// comparisons involving NaN are false, so NaN never displaces a
		// stored extreme and is never displaced once stored.
		vs := col.Float64s()
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			if a.count[g] > 0 && a.vals[g].Kind == types.KindFloat64 {
				if a.op == accMin && vs[i] < a.vals[g].F {
					a.vals[g] = types.Float64(vs[i])
				} else if a.op == accMax && vs[i] > a.vals[g].F {
					a.vals[g] = types.Float64(vs[i])
				}
				a.nonNull[g] = true
				a.count[g]++
				continue
			}
			a.one(g, col.Value(i))
		}
	default:
		for i := 0; i < n; i++ {
			g := gids[i]
			if g < 0 || (nulls != nil && nulls[i]) {
				continue
			}
			a.one(g, col.Value(i))
		}
	}
}

// distinct is the DISTINCT slow path: per-group seen maps keyed on
// Value.Hash, exactly as the row path tracks them.
func (a *vecAcc) distinct(gids []int32, col *types.Column, n int) {
	nulls := col.NullMask()
	for i := 0; i < n; i++ {
		g := gids[i]
		if g < 0 || (nulls != nil && nulls[i]) {
			continue
		}
		v := col.Value(i)
		if a.seen[g] == nil {
			a.seen[g] = map[uint64][]types.Value{}
		}
		h := v.Hash()
		dup := false
		for _, prev := range a.seen[g][h] {
			if prev.Equal(v) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		a.seen[g][h] = append(a.seen[g][h], v)
		a.one(g, v)
	}
}

// result finalizes group g, mirroring aggOp.finalize.
func (a *vecAcc) result(g int) types.Value {
	switch a.af.Name {
	case "count":
		return types.Int64(a.count[g])
	case "sum":
		if !a.nonNull[g] {
			return types.Null(a.af.ResultKind)
		}
		if a.af.ResultKind == types.KindInt64 {
			return types.Int64(a.sumI[g])
		}
		return types.Float64(a.sumF[g])
	case "avg":
		if a.count[g] == 0 {
			return types.Null(types.KindFloat64)
		}
		return types.Float64(a.sumF[g] / float64(a.count[g]))
	case "min":
		if !a.nonNull[g] {
			return types.Null(a.af.ResultKind)
		}
		return a.vals[g]
	case "max":
		if !a.nonNull[g] {
			return types.Null(a.af.ResultKind)
		}
		return a.vals[g]
	}
	return types.Null(a.af.ResultKind)
}
