package exec

import (
	"context"
	"fmt"
	"io"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// buildJoin compiles a join: hash join when the condition contains
// equi-predicates between the two sides, nested-loop otherwise.
func (e *Engine) buildJoin(qc *QueryContext, t *plan.Join) (operator, error) {
	l, err := e.build(qc, t.L)
	if err != nil {
		return nil, err
	}
	r, err := e.build(qc, t.R)
	if err != nil {
		return nil, err
	}
	if t.Cond != nil && plan.ExprContains(t.Cond, func(x plan.Expr) bool {
		_, ok := x.(*plan.UDFCall)
		return ok
	}) {
		l.Close()
		r.Close()
		return nil, fmt.Errorf("exec: UDF calls are not supported in join conditions")
	}
	leftLen := t.L.Schema().Len()
	leftKeys, rightKeys, residual := extractEquiKeys(t.Cond, leftLen)
	if len(leftKeys) > 0 && !e.DisableVecExec {
		op, err := e.newVecJoinOp(qc, t, l, r, leftKeys, rightKeys, residual)
		if err != nil {
			l.Close()
			r.Close()
			return nil, err
		}
		return op, nil
	}
	// Row-at-a-time path: nested-loop joins (no equi keys) and the reference
	// implementation the vec-vs-row equivalence harness compares against.
	return &joinOp{
		qc: qc, node: t, left: l, right: r,
		leftLen: leftLen, rightLen: t.R.Schema().Len(),
		leftKeys: leftKeys, rightKeys: rightKeys, residual: residual,
		buildWorkers: e.workers(),
	}, nil
}

// extractEquiKeys splits a join condition into equi-key pairs
// (left expr, right expr with right-relative ordinals) and a residual
// predicate over the concatenated row.
func extractEquiKeys(cond plan.Expr, leftLen int) (leftKeys, rightKeys []plan.Expr, residual []plan.Expr) {
	if cond == nil {
		return nil, nil, nil
	}
	for _, c := range splitAnd(cond) {
		b, ok := c.(*plan.Binary)
		if ok && b.Op == plan.OpEq {
			lLo, lHi := refRange(b.L)
			rLo, rHi := refRange(b.R)
			switch {
			case lHi < leftLen && lLo >= 0 && rLo >= leftLen:
				leftKeys = append(leftKeys, b.L)
				rightKeys = append(rightKeys, shiftExprRefs(b.R, -leftLen))
				continue
			case rHi < leftLen && rLo >= 0 && lLo >= leftLen:
				leftKeys = append(leftKeys, b.R)
				rightKeys = append(rightKeys, shiftExprRefs(b.L, -leftLen))
				continue
			}
		}
		residual = append(residual, c)
	}
	return leftKeys, rightKeys, residual
}

func splitAnd(e plan.Expr) []plan.Expr {
	if b, ok := e.(*plan.Binary); ok && b.Op == plan.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []plan.Expr{e}
}

// refRange returns (min, max) BoundRef ordinals in e; (-1, -1) when none.
func refRange(e plan.Expr) (int, int) {
	lo, hi := -1, -1
	plan.WalkExpr(e, func(x plan.Expr) bool {
		if b, ok := x.(*plan.BoundRef); ok {
			if lo == -1 || b.Index < lo {
				lo = b.Index
			}
			if b.Index > hi {
				hi = b.Index
			}
		}
		return true
	})
	return lo, hi
}

func shiftExprRefs(e plan.Expr, delta int) plan.Expr {
	return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		if b, ok := x.(*plan.BoundRef); ok {
			return &plan.BoundRef{Index: b.Index + delta, Name: b.Name, Kind: b.Kind}
		}
		return x
	})
}

// joinOp materializes the right side into a hash table (or row list) and
// streams the left.
type joinOp struct {
	qc                  *QueryContext
	node                *plan.Join
	left, right         operator
	leftLen, rightLen   int
	leftKeys, rightKeys []plan.Expr
	residual            []plan.Expr
	buildWorkers        int

	built     bool
	rightRows [][]types.Value
	hash      map[uint64][]int // key hash -> right row indices
	rightUsed []bool           // for RIGHT/FULL outer
	done      bool
}

// rightPart is the materialized form of one right-side batch: its rows plus
// their key hashes, computed on a build worker.
type rightPart struct {
	rows   [][]types.Value
	hashes []uint64
}

// buildRightPart materializes one right batch. It touches only read-only
// joinOp state, so exchange workers run it concurrently.
func (o *joinOp) buildRightPart(b *types.Batch) (*rightPart, error) {
	n := b.NumRows()
	p := &rightPart{rows: make([][]types.Value, n)}
	if len(o.rightKeys) > 0 {
		p.hashes = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		row := b.Row(i)
		p.rows[i] = row
		if len(o.rightKeys) > 0 {
			key, err := o.evalKeys(o.rightKeys, row)
			if err != nil {
				return nil, err
			}
			p.hashes[i] = hashRow(key)
		}
	}
	return p, nil
}

// buildRight materializes the right side into the hash table. With
// parallelism enabled, batch materialization and key hashing run on exchange
// workers; parts are merged here in batch order, so row indices (and
// therefore emission order) match the serial build exactly.
func (o *joinOp) buildRight() error {
	o.hash = map[uint64][]int{}
	var pull func() (*rightPart, error)
	if w := o.buildWorkers; w > 1 {
		ex, err := newExchange(o.qc.GoContext(), w, batchSource(o.right),
			func() (func(context.Context, *types.Batch) (*rightPart, error), error) {
				return func(_ context.Context, b *types.Batch) (*rightPart, error) {
					return o.buildRightPart(b)
				}, nil
			}, nil)
		if err != nil {
			return err
		}
		defer ex.Close()
		pull = ex.Next
	} else {
		pull = func() (*rightPart, error) {
			b, err := o.right.Next()
			if err != nil {
				return nil, err
			}
			return o.buildRightPart(b)
		}
	}
	for {
		p, err := pull()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i, row := range p.rows {
			idx := len(o.rightRows)
			o.rightRows = append(o.rightRows, row)
			if p.hashes != nil {
				o.hash[p.hashes[i]] = append(o.hash[p.hashes[i]], idx)
			}
		}
	}
	o.rightUsed = make([]bool, len(o.rightRows))
	o.built = true
	return nil
}

func (o *joinOp) evalKeys(keys []plan.Expr, row []types.Value) ([]types.Value, error) {
	rowFn := func(c int) types.Value { return row[c] }
	out := make([]types.Value, len(keys))
	for i, k := range keys {
		v, err := eval.Eval(k, rowFn, o.qc.Eval)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// matchRight returns candidate right-row indices for a left row.
func (o *joinOp) matchRight(leftRow []types.Value) ([]int, error) {
	if len(o.leftKeys) == 0 {
		// No equi keys: all right rows are candidates (nested loop).
		all := make([]int, len(o.rightRows))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	key, err := o.evalKeys(o.leftKeys, leftRow)
	if err != nil {
		return nil, err
	}
	for _, v := range key {
		if v.Null {
			return nil, nil // NULL keys never match
		}
	}
	return o.hash[hashRow(key)], nil
}

// residualOK checks the non-equi part of the condition on a combined row.
func (o *joinOp) residualOK(combined []types.Value) (bool, error) {
	rowFn := func(c int) types.Value { return combined[c] }
	for _, res := range o.residual {
		ok, err := eval.EvalPredicate(res, rowFn, o.qc.Eval)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// equiOK verifies equi keys for nested-loop candidates (hash collisions are
// also re-checked here).
func (o *joinOp) equiOK(leftRow, rightRow []types.Value) (bool, error) {
	if len(o.leftKeys) == 0 {
		return true, nil
	}
	lk, err := o.evalKeys(o.leftKeys, leftRow)
	if err != nil {
		return false, err
	}
	rk, err := o.evalKeys(o.rightKeys, rightRow)
	if err != nil {
		return false, err
	}
	for i := range lk {
		if lk[i].Null || rk[i].Null {
			return false, nil
		}
		cmp, ok := lk[i].Compare(rk[i])
		if !ok || cmp != 0 {
			return false, nil
		}
	}
	return true, nil
}

func (o *joinOp) Close() error {
	err := o.left.Close()
	if rerr := o.right.Close(); err == nil {
		err = rerr
	}
	return err
}

func (o *joinOp) Next() (*types.Batch, error) {
	if !o.built {
		if err := o.buildRight(); err != nil {
			return nil, err
		}
	}
	if o.done {
		return nil, io.EOF
	}
	schema := o.node.Schema()
	for {
		lb, err := o.left.Next()
		if err == io.EOF {
			o.done = true
			// RIGHT/FULL: emit unmatched right rows padded with NULLs.
			if o.node.Type == plan.JoinRight || o.node.Type == plan.JoinFull {
				bb := types.NewBatchBuilder(schema, 16)
				for ri, used := range o.rightUsed {
					if used {
						continue
					}
					row := make([]types.Value, 0, schema.Len())
					for c := 0; c < o.leftLen; c++ {
						row = append(row, types.Null(schema.Fields[c].Kind))
					}
					row = append(row, o.rightRows[ri]...)
					bb.AppendRow(row)
				}
				if bb.Len() > 0 {
					return bb.Build(), nil
				}
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		bb := types.NewBatchBuilder(schema, lb.NumRows())
		for i := 0; i < lb.NumRows(); i++ {
			leftRow := lb.Row(i)
			candidates, err := o.matchRight(leftRow)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, ri := range candidates {
				rightRow := o.rightRows[ri]
				ok, err := o.equiOK(leftRow, rightRow)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				combined := append(append([]types.Value{}, leftRow...), rightRow...)
				ok, err = o.residualOK(combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				o.rightUsed[ri] = true
				switch o.node.Type {
				case plan.JoinLeftSemi:
					// emit left row once; stop scanning candidates
				case plan.JoinLeftAnti:
					// matched anti rows are dropped below
				default:
					bb.AppendRow(combined)
				}
				if o.node.Type == plan.JoinLeftSemi {
					break
				}
			}
			switch o.node.Type {
			case plan.JoinLeftSemi:
				if matched {
					bb.AppendRow(leftRow)
				}
			case plan.JoinLeftAnti:
				if !matched {
					bb.AppendRow(leftRow)
				}
			case plan.JoinLeft, plan.JoinFull:
				if !matched {
					row := append([]types.Value{}, leftRow...)
					for c := o.leftLen; c < schema.Len(); c++ {
						row = append(row, types.Null(schema.Fields[c].Kind))
					}
					bb.AppendRow(row)
				}
			}
		}
		if bb.Len() > 0 {
			return bb.Build(), nil
		}
	}
}
