package exec

import (
	"strings"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sql"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// seedTinyKeys creates a one-batch build-side table whose keys cover a
// narrow slice of the events id range, so a runtime filter can prune most
// probe-side files by their zone maps.
func seedTinyKeys(t testing.TB, w *world, keys ...int64) {
	t.Helper()
	schema := types.NewSchema(types.Field{Name: "k", Kind: types.KindInt64})
	if err := w.cat.CreateTable(adminCtx(), []string{"tiny"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(schema, len(keys))
	for _, k := range keys {
		bb.AppendRow([]types.Value{types.Int64(k)})
	}
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"tiny"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
}

// profiledRun executes a query with an EXPLAIN ANALYZE profile attached and
// returns the result plus the rendered profile.
func (w *world) profiledRun(t testing.TB, query string) (*types.Batch, *telemetry.Profile, string) {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := analyzer.New(w.cat, adminCtx()).Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	optimized := optimizer.Optimize(resolved, optimizer.DefaultOptions())
	qc := NewQueryContext(w.cat, adminCtx())
	qc.Profile = telemetry.NewProfile()
	b, err := w.engine.ExecuteToBatch(qc, optimized)
	if err != nil {
		t.Fatal(err)
	}
	return b, qc.Profile, qc.Profile.Render()
}

// TestRuntimeFilterPrunesProbeReads asserts the core runtime-filter win: on
// a selective inner join, build-side min/max + bloom filters skip probe-side
// files before any storage GET, composing with zone maps — and the result is
// identical with filters off.
func TestRuntimeFilterPrunesProbeReads(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := newWorld(t)
		const files = 16
		seedEventsTable(t, w, files, 64)
		seedTinyKeys(t, w, 5, 9, 60)

		counting := &countingTables{inner: w.cat}
		w.engine.Tables = counting
		w.engine.Parallelism = workers

		const q = "SELECT e.id, e.v FROM events e JOIN tiny t ON e.id = t.k"

		w.engine.DisableRuntimeFilters = true
		plain, err := w.runWithOptions(q, optimizer.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plainReads := counting.reads.Load()

		counting.reads.Store(0)
		w.engine.DisableRuntimeFilters = false
		filtered, err := w.runWithOptions(q, optimizer.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rfReads := counting.reads.Load()

		if orderedRows(plain) != orderedRows(filtered) {
			t.Fatalf("workers=%d: runtime filter changed the result:\noff:\n%s\non:\n%s",
				workers, orderedRows(plain), orderedRows(filtered))
		}
		if filtered.NumRows() != 3 {
			t.Fatalf("workers=%d: join returned %d rows, want 3", workers, filtered.NumRows())
		}
		// Keys 5/9/60 all live in the first of the 16 probe files; every other
		// file's [min,max] id range is disjoint from the filter's [5,60] and
		// must be skipped before any GET. (plainReads includes the build
		// side's file too.)
		if rfReads >= plainReads {
			t.Fatalf("workers=%d: runtime filter saved no reads: %d with rf vs %d without", workers, rfReads, plainReads)
		}
		if maxReads := int64(1 + 1); rfReads > maxReads {
			t.Fatalf("workers=%d: runtime filter left %d reads, want <= %d", workers, rfReads, maxReads)
		}
	}
}

// TestRuntimeFilterEmptyBuildPrunesEverything: an empty build side lets the
// filter prune every probe file without a single GET.
func TestRuntimeFilterEmptyBuildPrunesEverything(t *testing.T) {
	w := newWorld(t)
	seedEventsTable(t, w, 8, 32)
	schema := types.NewSchema(types.Field{Name: "k", Kind: types.KindInt64})
	if err := w.cat.CreateTable(adminCtx(), []string{"tiny"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	counting := &countingTables{inner: w.cat}
	w.engine.Tables = counting
	b, err := w.runWithOptions("SELECT e.id FROM events e JOIN tiny t ON e.id = t.k", optimizer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 0 {
		t.Fatalf("join over empty build returned %d rows", b.NumRows())
	}
	if reads := counting.reads.Load(); reads != 0 {
		t.Fatalf("empty build side still read %d files", reads)
	}
}

// TestExplainAnalyzeJoinCounters asserts the new EXPLAIN ANALYZE surface:
// probe rows with runtime-filter attribution, file pruning attribution on
// the scan, and spill accounting — plus the matching /metrics counters.
func TestExplainAnalyzeJoinCounters(t *testing.T) {
	w := newWorld(t)
	seedEventsTable(t, w, 16, 64)
	seedTinyKeys(t, w, 5, 9, 60)
	metrics := telemetry.NewRegistry()
	w.engine.Metrics = metrics

	_, _, render := w.profiledRun(t, "SELECT e.id, e.v FROM events e JOIN tiny t ON e.id = t.k")
	for _, want := range []string{
		"probe rows",
		"by runtime filter",
		"runtime filter 15", // 16 files minus the one holding keys 5/9/60
	} {
		if !strings.Contains(render, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, render)
		}
	}
	if got := metrics.Counter("scan.files.rf_pruned").Value(); got != 15 {
		t.Fatalf("scan.files.rf_pruned = %d, want 15", got)
	}
	if got := metrics.Counter("join.rf.rows_filtered").Value(); got <= 0 {
		t.Fatalf("join.rf.rows_filtered = %d, want > 0", got)
	}

	// Force the join to spill and check the accounting surfaces too.
	w.engine.SpillBytes = 1
	defer func() { w.engine.SpillBytes = 0 }()
	_, prof, render := w.profiledRun(t, "SELECT e.id, f.id FROM events e JOIN events f ON e.id = f.v WHERE f.id < 256")
	if !strings.Contains(render, "spill") {
		t.Fatalf("EXPLAIN ANALYZE missing spill accounting:\n%s", render)
	}
	var spilled bool
	var walk func(o *telemetry.OpStats)
	walk = func(o *telemetry.OpStats) {
		if o == nil {
			return
		}
		if o.SpillPartitions() > 0 && o.SpillBytes() > 0 {
			spilled = true
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(prof.Root())
	if !spilled {
		t.Fatalf("no operator reported spill partitions/bytes:\n%s", render)
	}
	if got := metrics.Counter("exec.spill.partitions").Value(); got <= 0 {
		t.Fatalf("exec.spill.partitions = %d, want > 0", got)
	}
	if got := metrics.Counter("exec.spill.bytes").Value(); got <= 0 {
		t.Fatalf("exec.spill.bytes = %d, want > 0", got)
	}

	// Spilled aggregation reports through the same counters.
	before := metrics.Counter("exec.spill.partitions").Value()
	_, _, render = w.profiledRun(t, "SELECT v, COUNT(*) AS n, SUM(score) AS s FROM events GROUP BY v")
	if !strings.Contains(render, "spill") {
		t.Fatalf("EXPLAIN ANALYZE missing aggregation spill accounting:\n%s", render)
	}
	if got := metrics.Counter("exec.spill.partitions").Value(); got <= before {
		t.Fatalf("aggregation spill did not move exec.spill.partitions (%d -> %d)", before, got)
	}
}
