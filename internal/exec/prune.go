package exec

import (
	"lakeguard/internal/delta"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// pruneFiles evaluates the scan's pushed filter conjuncts against each file's
// zone-map statistics and returns the indices of files that may contain
// matching rows, in snapshot order. Files without statistics (committed
// before stats existed) are always kept. Pruning is conservative: a file is
// skipped only when the statistics prove no row can satisfy every conjunct,
// under the engine's own comparison semantics (NULL-strict comparisons, NaN
// ordering equal to everything, numeric widening via types.Value.Compare).
// PruneFilesForPredicate returns the indices of files that may contain rows
// matching pred (a resolved predicate over the full table schema), using the
// same conservative zone-map logic scans use. The DML planner calls it so a
// selective DELETE/UPDATE never GETs files whose statistics prove no match.
func PruneFilesForPredicate(schema *types.Schema, pred plan.Expr, files []delta.AddFile) []int {
	scan := &plan.Scan{TableSchema: schema, PushedFilters: []plan.Expr{pred}}
	return pruneFiles(scan, files)
}

func pruneFiles(scan *plan.Scan, files []delta.AddFile) []int {
	keep := make([]int, 0, len(files))
	for i, f := range files {
		if fileMayMatch(scan, f.Stats) {
			keep = append(keep, i)
		}
	}
	return keep
}

func fileMayMatch(scan *plan.Scan, fs *delta.FileStats) bool {
	if fs == nil {
		return true
	}
	for _, conj := range scan.PushedFilters {
		if !exprMayMatch(conj, scan, fs) {
			return false
		}
	}
	return true
}

// exprMayMatch reports whether any row of a file with statistics fs can make
// e evaluate to true. Unknown expression shapes return true (never prune on
// guesswork). Filters run over the scan's output schema (post projection), so
// BoundRef ordinals resolve through scan.Schema().
func exprMayMatch(e plan.Expr, scan *plan.Scan, fs *delta.FileStats) bool {
	switch t := e.(type) {
	case *plan.Binary:
		switch t.Op {
		case plan.OpAnd:
			return exprMayMatch(t.L, scan, fs) && exprMayMatch(t.R, scan, fs)
		case plan.OpOr:
			return exprMayMatch(t.L, scan, fs) || exprMayMatch(t.R, scan, fs)
		}
		if !t.Op.IsComparison() {
			return true
		}
		if col, lit, ok := splitComparison(t.L, t.R); ok {
			return rangeMayMatch(t.Op, scan, fs, col, lit)
		}
		if col, lit, ok := splitComparison(t.R, t.L); ok {
			return rangeMayMatch(flipCmp(t.Op), scan, fs, col, lit)
		}
		return true

	case *plan.IsNull:
		col, ok := t.Child.(*plan.BoundRef)
		if !ok {
			return true
		}
		cs, ok := colStatsFor(scan, fs, col)
		if !ok {
			return true
		}
		if t.Negated {
			return fs.NumRecords-cs.NullCount > 0
		}
		return cs.NullCount > 0

	case *plan.InList:
		if t.Negated {
			return true
		}
		col, ok := t.Child.(*plan.BoundRef)
		if !ok {
			return true
		}
		for _, item := range t.List {
			lit, ok := item.(*plan.Literal)
			if !ok {
				return true // non-literal element: cannot bound, keep the file
			}
			if rangeMayMatch(plan.OpEq, scan, fs, col, lit) {
				return true
			}
		}
		return false
	}
	return true
}

// splitComparison matches the `col op literal` shape.
func splitComparison(l, r plan.Expr) (*plan.BoundRef, *plan.Literal, bool) {
	col, ok := l.(*plan.BoundRef)
	if !ok {
		return nil, nil, false
	}
	lit, ok := r.(*plan.Literal)
	if !ok {
		return nil, nil, false
	}
	return col, lit, true
}

// flipCmp mirrors a comparison so `lit op col` becomes `col op' lit`.
func flipCmp(op plan.BinOp) plan.BinOp {
	switch op {
	case plan.OpLt:
		return plan.OpGt
	case plan.OpLte:
		return plan.OpGte
	case plan.OpGt:
		return plan.OpLt
	case plan.OpGte:
		return plan.OpLte
	}
	return op // Eq and Neq are symmetric
}

func colStatsFor(scan *plan.Scan, fs *delta.FileStats, col *plan.BoundRef) (delta.ColStats, bool) {
	name := col.Name
	if fields := scan.Schema().Fields; col.Index >= 0 && col.Index < len(fields) {
		name = fields[col.Index].Name
	}
	return fs.Col(name)
}

// rangeMayMatch decides `col op lit` against the column's [min, max] range.
func rangeMayMatch(op plan.BinOp, scan *plan.Scan, fs *delta.FileStats, col *plan.BoundRef, lit *plan.Literal) bool {
	if lit.Value.Null {
		// Comparison with NULL is NULL for every row; the filter keeps none.
		return false
	}
	cs, ok := colStatsFor(scan, fs, col)
	if !ok {
		return true
	}
	if cs.HasNaN {
		// The engine orders NaN equal to everything, so NaN rows can satisfy
		// =, <=, >= regardless of the recorded range: never prune.
		return true
	}
	if cs.NullCount >= fs.NumRecords {
		// Every value is NULL; every comparison is NULL; no row passes.
		return false
	}
	min, max, ok := cs.Bounds()
	if !ok {
		return true // range not recorded (e.g. oversized strings)
	}
	cmpMin, okMin := min.Compare(lit.Value)
	cmpMax, okMax := max.Compare(lit.Value)
	if !okMin || !okMax {
		return true // incomparable kinds: leave the decision to row filtering
	}
	switch op {
	case plan.OpEq:
		return cmpMin <= 0 && cmpMax >= 0
	case plan.OpNeq:
		return !(cmpMin == 0 && cmpMax == 0)
	case plan.OpLt:
		return cmpMin < 0
	case plan.OpLte:
		return cmpMin <= 0
	case plan.OpGt:
		return cmpMax > 0
	case plan.OpGte:
		return cmpMax >= 0
	}
	return true
}
