package exec

import (
	"context"
	"io"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// vecJoinOp is the vectorized hash join used whenever the condition contains
// equi-keys. It keeps the row-at-a-time joinOp's semantics exactly — same
// match order, same NULL/NaN/cross-kind comparison rules, same output row
// sequence at any parallelism — while replacing its per-row machinery:
//
//   - key hashing runs through the columnar eval.HashColumns kernel instead
//     of boxing every row and walking maphash;
//   - the build table is a flat prefix-summed bucket directory over columnar
//     key storage instead of map[uint64][]int over [][]types.Value, and
//     build batches are released once appended (memory is bounded by the
//     flat table, not the raw input parts);
//   - probe matches flow through selection vectors: hash-equal candidate
//     pairs first, then a column-wise collision-verification kernel, then a
//     vectorized residual predicate, then bulk Gather assembly;
//   - once the build side materializes, bloom/min-max runtime filters are
//     installed on probe-side scans (see runtimefilter.go);
//   - when the build table outgrows Engine.SpillBytes the operator falls
//     back to Grace-hash processing: both sides partition to temp files by
//     key hash, partitions recurse, and outputs merge by a synthetic row id
//     so the emitted row sequence is byte-identical to the in-memory run.
type vecJoinOp struct {
	qc           *QueryContext
	e            *Engine
	node         *plan.Join
	left, right  operator
	leftKeys     []plan.Expr
	rightKeys    []plan.Expr
	leftSchema   *types.Schema
	rightSchema  *types.Schema
	combined     *types.Schema
	leftBE       *batchEval
	rightBE      *batchEval
	residBE      *batchEval // nil when the condition is pure equi-join
	stats        *telemetry.OpStats
	spillLimit   int64
	buildWorkers int
	rfBuilders   []*rfBuilder

	built       bool
	table       *joinTable // in-memory build; nil once spilled
	probeDone   bool
	emittedTail bool

	// Spill state (Grace hash join).
	spillFiles []*spillFile      // every temp file ever created, for cleanup
	rightParts *spillPartitions  // non-nil => the build overflowed
	leftParts  *spillPartitions
	rightRID   int64
	leftRID    int64
	merge      *ridMerge // leaf probe outputs in left-row order
	tailMerge  *ridMerge // unmatched right rows in right-row order
}

func (e *Engine) newVecJoinOp(qc *QueryContext, t *plan.Join, l, r operator, leftKeys, rightKeys, residual []plan.Expr) (operator, error) {
	o := &vecJoinOp{
		qc: qc, e: e, node: t, left: l, right: r,
		leftKeys: leftKeys, rightKeys: rightKeys,
		leftSchema: t.L.Schema(), rightSchema: t.R.Schema(),
		stats:        qc.opParent,
		spillLimit:   e.spillLimit(),
		buildWorkers: e.workers(),
	}
	o.combined = o.leftSchema.Concat(o.rightSchema)
	var err error
	if o.leftBE, err = e.newBatchEval(qc, leftKeys, o.leftSchema, nil); err != nil {
		return nil, err
	}
	if o.rightBE, err = e.newBatchEval(qc, rightKeys, o.rightSchema, nil); err != nil {
		return nil, err
	}
	if len(residual) > 0 {
		if o.residBE, err = e.newBatchEval(qc, residual, o.combined, boolKinds(len(residual))); err != nil {
			return nil, err
		}
	}
	// Resolve runtime-filter targets: each equi-key that is a bare column
	// reference traceable to a registered probe-side scan gets a filter
	// builder. Only join types where a probe miss produces no output qualify.
	if !e.DisableRuntimeFilters && rfJoinTypeOK(t.Type) {
		for i, k := range leftKeys {
			br, ok := k.(*plan.BoundRef)
			if !ok {
				continue
			}
			src, col, ok := findRFScan(qc.rf, t.L, br.Index)
			if !ok {
				continue
			}
			o.rfBuilders = append(o.rfBuilders, &rfBuilder{
				src: src, col: col, keyIdx: i, bloom: newBloomFilter(),
			})
		}
	}
	return o, nil
}

func (o *vecJoinOp) needUsed() bool {
	return o.node.Type == plan.JoinRight || o.node.Type == plan.JoinFull
}

func (o *vecJoinOp) Close() error {
	err := o.left.Close()
	if rerr := o.right.Close(); err == nil {
		err = rerr
	}
	for _, sf := range o.spillFiles {
		sf.cleanup()
	}
	return err
}

func (o *vecJoinOp) trackSpill(sf *spillFile) { o.spillFiles = append(o.spillFiles, sf) }

// joinTable is the in-memory build side: all right rows as one columnar
// batch, evaluated key columns, per-row hashes, and a flat bucket directory.
// Buckets are addressed by the hash's low bits; each bucket's rows live
// contiguously in slots[starts[b]:starts[b+1]], in ascending row order —
// the same candidate order the row path's map[uint64][]int produced.
type joinTable struct {
	rows   *types.Batch
	keys   []*types.Column
	rids   []int64 // global right row ids (spilled partitions only; nil in-memory)
	hashes []uint64
	mask   uint64
	starts []int32
	slots  []int32
	used   []bool // for RIGHT/FULL tails
}

func newJoinTable(rows *types.Batch, keys []*types.Column, rids []int64, hashes []uint64, needUsed bool) *joinTable {
	n := len(hashes)
	nb := 16
	for nb < 2*n {
		nb <<= 1
	}
	t := &joinTable{rows: rows, keys: keys, rids: rids, hashes: hashes, mask: uint64(nb - 1)}
	t.starts = make([]int32, nb+1)
	for _, h := range hashes {
		t.starts[(h&t.mask)+1]++
	}
	for b := 0; b < nb; b++ {
		t.starts[b+1] += t.starts[b]
	}
	t.slots = make([]int32, n)
	cursor := make([]int32, nb)
	copy(cursor, t.starts[:nb])
	for i, h := range hashes {
		b := h & t.mask
		t.slots[cursor[b]] = int32(i)
		cursor[b]++
	}
	if needUsed {
		t.used = make([]bool, n)
	}
	return t
}

func (t *joinTable) bucket(h uint64) []int32 {
	b := h & t.mask
	return t.slots[t.starts[b]:t.starts[b+1]]
}

// vecRightPart is one build-side batch with its evaluated keys and hashes,
// produced (possibly on an exchange worker) before merging into the table.
type vecRightPart struct {
	b      *types.Batch
	keys   []*types.Column
	hashes []uint64
	rfHash [][]uint64 // per rfBuilder: single-column hashes for bloom inserts
}

func (o *vecJoinOp) makeRightPart(be *batchEval, b *types.Batch) (*vecRightPart, error) {
	keys, err := be.run(b)
	if err != nil {
		return nil, err
	}
	p := &vecRightPart{b: b, keys: keys}
	p.hashes = eval.HashColumns(keys, b.NumRows(), nil)
	if len(o.rfBuilders) > 0 {
		p.rfHash = make([][]uint64, len(o.rfBuilders))
		for i, rb := range o.rfBuilders {
			p.rfHash[i] = eval.HashColumns([]*types.Column{keys[rb.keyIdx]}, b.NumRows(), nil)
		}
	}
	return p, nil
}

// rightStream pulls build parts, evaluating keys on exchange workers when
// parallel (parts merge in batch order, so the table layout is identical to
// a serial build).
func (o *vecJoinOp) rightStream() (pull func() (*vecRightPart, error), cleanup func(), err error) {
	if o.buildWorkers <= 1 {
		return func() (*vecRightPart, error) {
			b, err := o.right.Next()
			if err != nil {
				return nil, err
			}
			return o.makeRightPart(o.rightBE, b)
		}, func() {}, nil
	}
	ex, err := newExchange(o.qc.GoContext(), o.buildWorkers, batchSource(o.right),
		func() (func(context.Context, *types.Batch) (*vecRightPart, error), error) {
			be := o.rightBE
			if be.progs == nil {
				// The row-interpreting fallback is not concurrency-safe;
				// vectorized programs are immutable and shared.
				var werr error
				if be, werr = o.e.newBatchEval(o.qc, o.rightKeys, o.rightSchema, nil); werr != nil {
					return nil, werr
				}
			}
			return func(_ context.Context, b *types.Batch) (*vecRightPart, error) {
				return o.makeRightPart(be, b)
			}, nil
		}, nil)
	if err != nil {
		return nil, nil, err
	}
	return ex.Next, func() { ex.Close() }, nil
}

func (o *vecJoinOp) emptyKeyCols() []*types.Column {
	out := make([]*types.Column, len(o.rightKeys))
	for i, k := range o.rightKeys {
		out[i] = types.NewBuilder(k.Type(), 0).Build()
	}
	return out
}

// buildRight materializes the build side: into the flat joinTable while it
// fits, partitioned to spill files once it doesn't. Runtime filters observe
// every build row either way and install after the build completes.
func (o *vecJoinOp) buildRight() error {
	pull, cleanup, err := o.rightStream()
	if err != nil {
		return err
	}
	defer cleanup()

	bb := types.NewBatchBuilder(o.rightSchema, 0)
	var keyBs []*types.Builder
	var hashes []uint64
	var bytes int64
	for {
		p, err := pull()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n := p.b.NumRows()
		for i, rb := range o.rfBuilders {
			rb.observe(p.keys[rb.keyIdx], p.rfHash[i])
		}
		if o.rightParts != nil {
			if err := o.scatterWithRID(o.rightParts, p.b, p.hashes, &o.rightRID); err != nil {
				return err
			}
			continue
		}
		if keyBs == nil {
			keyBs = make([]*types.Builder, len(p.keys))
			for i, kc := range p.keys {
				keyBs[i] = types.NewBuilder(kc.Kind(), n)
			}
		}
		// Append into flat storage and release the part: build memory is the
		// table, not the accumulated raw batches.
		bb.AppendBatch(p.b)
		for i, kc := range p.keys {
			keyBs[i].AppendColumn(kc)
		}
		hashes = append(hashes, p.hashes...)
		bytes += batchBytes(p.b) + colsBytes(p.keys) + int64(8*n)
		if bytes > o.spillLimit {
			// Overflow: scatter everything accumulated so far and switch to
			// spill mode for the rest of the build.
			o.rightParts = newSpillPartitions(schemaWithRID(o.rightSchema), 0, o.trackSpill)
			rows := bb.Build()
			spillHashes := hashes
			if err := o.scatterWithRID(o.rightParts, rows, spillHashes, &o.rightRID); err != nil {
				return err
			}
			bb, keyBs, hashes = nil, nil, nil
		}
	}

	if o.rightParts == nil {
		var rows *types.Batch
		keys := make([]*types.Column, len(o.rightKeys))
		if keyBs == nil {
			rows = types.NewBatchBuilder(o.rightSchema, 0).Build()
			copy(keys, o.emptyKeyCols())
		} else {
			rows = bb.Build()
			for i, kb := range keyBs {
				keys[i] = kb.Build()
			}
		}
		o.table = newJoinTable(rows, keys, nil, hashes, o.needUsed())
	} else {
		// The probe side will partition through the same hash space.
		o.leftParts = newSpillPartitions(schemaWithRID(o.leftSchema), 0, o.trackSpill)
	}
	for _, rb := range o.rfBuilders {
		rb.install(o.stats, o.e.Metrics)
	}
	o.built = true
	return nil
}

// scatterWithRID tags b's rows with consecutive global row ids and scatters
// them into sp by hash.
func (o *vecJoinOp) scatterWithRID(sp *spillPartitions, b *types.Batch, hashes []uint64, rid *int64) error {
	n := b.NumRows()
	rids := make([]int64, n)
	for i := range rids {
		rids[i] = *rid
		*rid++
	}
	return sp.scatter(appendRIDCol(sp.schema, b, rids), hashes)
}

func (o *vecJoinOp) Next() (*types.Batch, error) {
	if !o.built {
		if err := o.buildRight(); err != nil {
			return nil, err
		}
	}
	if o.table != nil {
		return o.nextInMemory()
	}
	return o.nextSpilled()
}

func (o *vecJoinOp) nextInMemory() (*types.Batch, error) {
	for !o.probeDone {
		lb, err := o.left.Next()
		if err == io.EOF {
			o.probeDone = true
			break
		}
		if err != nil {
			return nil, err
		}
		out, err := o.probeBatch(o.table, lb, nil)
		if err != nil {
			return nil, err
		}
		if out != nil && out.NumRows() > 0 {
			return out, nil
		}
	}
	if !o.emittedTail && o.needUsed() {
		o.emittedTail = true
		tb := o.rightTail(o.table)
		if tb.NumRows() > 0 {
			return tb, nil
		}
	}
	return nil, io.EOF
}

// rightTail emits the unmatched right rows (RIGHT/FULL) padded with NULLs on
// the left, in right-row order, as one batch — exactly like the row path.
func (o *vecJoinOp) rightTail(t *joinTable) *types.Batch {
	var idx []int
	for i, used := range t.used {
		if !used {
			idx = append(idx, i)
		}
	}
	cols := make([]*types.Column, 0, o.combined.Len())
	cols = append(cols, nullPadCols(o.leftSchema, len(idx))...)
	for _, c := range t.rows.Gather(idx).Cols {
		cols = append(cols, c)
	}
	return types.MustBatch(o.node.Schema(), cols)
}

// nullPadCols builds n all-NULL rows of the given schema's kinds.
func nullPadCols(schema *types.Schema, n int) []*types.Column {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	cols := make([]*types.Column, len(schema.Fields))
	for i, f := range schema.Fields {
		cols[i] = types.NewBuilder(f.Kind, 0).Build().GatherPad(idx)
	}
	return cols
}

// probeBatch joins one left batch against t, emitting output rows in exactly
// the order the row-at-a-time join would. When lrids is non-nil (spilled
// probe) the output carries a trailing __rid column with each row's left
// global rid, so partition outputs merge back into input order.
func (o *vecJoinOp) probeBatch(t *joinTable, lb *types.Batch, lrids []int64) (*types.Batch, error) {
	n := lb.NumRows()
	keys, err := o.leftBE.run(lb)
	if err != nil {
		return nil, err
	}
	hashes := eval.HashColumns(keys, n, nil)
	o.stats.AddProbe(n)

	// Rows with a NULL in any key column never match (three-valued equality).
	var nullRow []bool
	for _, kc := range keys {
		nulls := kc.NullMask()
		if nulls == nil {
			continue
		}
		if nullRow == nil {
			nullRow = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			if nulls[i] {
				nullRow[i] = true
			}
		}
	}

	// Candidate pairs: hash-equal (left row, build row) pairs in left-row
	// major, build-row ascending order.
	var pairL, pairR []int
	for i := 0; i < n; i++ {
		if nullRow != nil && nullRow[i] {
			continue
		}
		h := hashes[i]
		for _, r := range t.bucket(h) {
			if t.hashes[r] == h {
				pairL = append(pairL, i)
				pairR = append(pairR, int(r))
			}
		}
	}

	// Column-wise collision verification.
	for k := range keys {
		if len(pairL) == 0 {
			break
		}
		pairL, pairR = verifyEqualPairs(keys[k], t.keys[k], pairL, pairR)
	}

	// Residual predicate over the combined candidate rows.
	if o.residBE != nil && len(pairL) > 0 {
		comb := o.combineCols(lb, t.rows, pairL, pairR)
		cb := types.MustBatch(o.combined, comb)
		cols, err := o.residBE.run(cb)
		if err != nil {
			return nil, err
		}
		keep := make([]bool, len(pairL))
		for i := range keep {
			keep[i] = true
		}
		for _, pc := range cols {
			nulls, vals := pc.NullMask(), pc.Int64s()
			for j := range keep {
				if keep[j] && !((nulls == nil || !nulls[j]) && vals[j] != 0) {
					keep[j] = false
				}
			}
		}
		w := 0
		for j := range pairL {
			if keep[j] {
				pairL[w], pairR[w] = pairL[j], pairR[j]
				w++
			}
		}
		pairL, pairR = pairL[:w], pairR[:w]
	}

	if t.used != nil {
		for _, r := range pairR {
			t.used[r] = true
		}
	}

	withRID := lrids != nil
	outSchema := o.node.Schema()
	if withRID {
		outSchema = schemaWithRID(outSchema)
	}

	switch o.node.Type {
	case plan.JoinInner, plan.JoinRight:
		cols := o.combineCols(lb, t.rows, pairL, pairR)
		if withRID {
			cols = append(cols, ridCol(lrids, pairL))
		}
		return types.MustBatch(outSchema, cols), nil

	case plan.JoinLeftSemi, plan.JoinLeftAnti:
		var idx []int
		if o.node.Type == plan.JoinLeftSemi {
			idx = dedupFirst(pairL)
		} else {
			idx = complementOf(n, pairL)
		}
		cols := lb.Gather(idx).Cols
		if withRID {
			cols = append(cols, ridCol(lrids, idx))
		}
		return types.MustBatch(outSchema, cols), nil

	case plan.JoinLeft, plan.JoinFull:
		outL, outR := leftOuterIndexes(n, pairL, pairR)
		cols := o.combinePadCols(lb, t.rows, outL, outR)
		if withRID {
			cols = append(cols, ridCol(lrids, outL))
		}
		return types.MustBatch(outSchema, cols), nil
	}
	// Unreachable: vecJoinOp is only built for equi-joins of the above types
	// (cross joins have no equi keys).
	return types.NewBatchBuilder(outSchema, 0).Build(), nil
}

// combineCols gathers matched (left, right) pairs into combined-row columns.
func (o *vecJoinOp) combineCols(lb, rrows *types.Batch, pairL, pairR []int) []*types.Column {
	cols := make([]*types.Column, 0, o.combined.Len())
	cols = append(cols, lb.Gather(pairL).Cols...)
	cols = append(cols, rrows.Gather(pairR).Cols...)
	return cols
}

// combinePadCols is combineCols with -1 indices producing NULL rows.
func (o *vecJoinOp) combinePadCols(lb, rrows *types.Batch, outL, outR []int) []*types.Column {
	cols := make([]*types.Column, 0, o.combined.Len())
	for _, c := range lb.Cols {
		cols = append(cols, c.GatherPad(outL))
	}
	for _, c := range rrows.Cols {
		cols = append(cols, c.GatherPad(outR))
	}
	return cols
}

func ridCol(rids []int64, idx []int) *types.Column {
	out := make([]int64, len(idx))
	for j, i := range idx {
		out[j] = rids[i]
	}
	return types.NewInt64Column(types.KindInt64, out, nil)
}

// dedupFirst collapses an ascending-by-left pair list to each left row's
// first occurrence (LEFT SEMI emits the left row once).
func dedupFirst(pairL []int) []int {
	out := make([]int, 0, len(pairL))
	for j, l := range pairL {
		if j == 0 || l != pairL[j-1] {
			out = append(out, l)
		}
	}
	return out
}

// complementOf returns the rows of [0, n) absent from the ascending matched
// list (LEFT ANTI emits left rows with no match).
func complementOf(n int, pairL []int) []int {
	out := make([]int, 0, n)
	p := 0
	for i := 0; i < n; i++ {
		for p < len(pairL) && pairL[p] < i {
			p++
		}
		if p < len(pairL) && pairL[p] == i {
			continue
		}
		out = append(out, i)
	}
	return out
}

// leftOuterIndexes interleaves matches with NULL padding per left row: row
// i's matches in build order, or a single (i, -1) pad when it has none —
// the row path's exact emission order for LEFT/FULL.
func leftOuterIndexes(n int, pairL, pairR []int) (outL, outR []int) {
	outL = make([]int, 0, n+len(pairL))
	outR = make([]int, 0, n+len(pairL))
	p := 0
	for i := 0; i < n; i++ {
		matched := false
		for p < len(pairL) && pairL[p] == i {
			outL = append(outL, i)
			outR = append(outR, pairR[p])
			matched = true
			p++
		}
		if !matched {
			outL = append(outL, i)
			outR = append(outR, -1)
		}
	}
	return outL, outR
}

// verifyEqualPairs keeps the candidate pairs whose key values are actually
// equal under join semantics: NULL never matches, numeric kinds compare
// widened, NaN compares equal to everything (cmpFloat), all other kind
// mixes never match. Compaction is in-place (read index >= write index).
func verifyEqualPairs(a, b *types.Column, pairL, pairR []int) ([]int, []int) {
	an, bn := a.NullMask(), b.NullMask()
	ak, bk := a.Kind(), b.Kind()
	w := 0
	keepPair := func(j int) {
		pairL[w] = pairL[j]
		pairR[w] = pairR[j]
		w++
	}
	intPayload := func(k types.Kind) bool {
		switch k {
		case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
			return true
		}
		return false
	}
	switch {
	case ak == bk && intPayload(ak):
		av, bv := a.Int64s(), b.Int64s()
		for j := range pairL {
			i, r := pairL[j], pairR[j]
			if (an != nil && an[i]) || (bn != nil && bn[r]) {
				continue
			}
			if av[i] == bv[r] {
				keepPair(j)
			}
		}
	case ak == types.KindFloat64 && bk == types.KindFloat64:
		av, bv := a.Float64s(), b.Float64s()
		for j := range pairL {
			i, r := pairL[j], pairR[j]
			if (an != nil && an[i]) || (bn != nil && bn[r]) {
				continue
			}
			// cmpFloat equality: NaN equals everything, so "not unequal".
			if !(av[i] < bv[r]) && !(av[i] > bv[r]) {
				keepPair(j)
			}
		}
	case ak == bk && (ak == types.KindString || ak == types.KindBinary):
		av, bv := a.Strings(), b.Strings()
		for j := range pairL {
			i, r := pairL[j], pairR[j]
			if (an != nil && an[i]) || (bn != nil && bn[r]) {
				continue
			}
			if av[i] == bv[r] {
				keepPair(j)
			}
		}
	case ak.Numeric() && bk.Numeric():
		// Mixed BIGINT/DOUBLE: widen like Value.Compare.
		for j := range pairL {
			i, r := pairL[j], pairR[j]
			if (an != nil && an[i]) || (bn != nil && bn[r]) {
				continue
			}
			x, y := numAsFloat(a, i), numAsFloat(b, r)
			if !(x < y) && !(x > y) {
				keepPair(j)
			}
		}
	default:
		// Incomparable kinds: Value.Compare reports not-ok, the row path
		// treats that as no match. Drop every pair.
	}
	return pairL[:w], pairR[:w]
}

func numAsFloat(c *types.Column, i int) float64 {
	if c.Kind() == types.KindFloat64 {
		return c.Float64s()[i]
	}
	return float64(c.Int64s()[i])
}

// --- Grace-hash spilled execution ---------------------------------------
//
// Once the build side overflowed, both inputs are partitioned by the top
// hash bits into temp files, with every row tagged by its global input
// position (__rid). Each (right, left) partition pair is processed
// independently — recursively re-partitioning while a partition still
// exceeds the budget — and each leaf probe writes its output (+left rid) to
// a leaf file. Because a given key hashes to exactly one partition, a left
// row's matches (or its proven absence of matches, for LEFT/ANTI padding)
// are complete within its leaf, so merging all leaf outputs by left rid
// reproduces the in-memory emission order exactly. RIGHT/FULL tails merge
// separately by right rid.

// nextSpilled drains the spilled join: partition the probe side, process
// every partition pair, then stream the rid-merged output and tail.
func (o *vecJoinOp) nextSpilled() (*types.Batch, error) {
	if o.merge == nil {
		if err := o.runSpilled(); err != nil {
			return nil, err
		}
	}
	b, err := o.merge.Next()
	if err == nil {
		return b, nil
	}
	if err != io.EOF {
		return nil, err
	}
	if o.tailMerge != nil && !o.emittedTail {
		tb, err := o.tailMerge.Next()
		if err == nil {
			// Merged tail rows are right-schema rows; pad the left side.
			outR := make([]int, tb.NumRows())
			for i := range outR {
				outR[i] = i
			}
			outL := make([]int, tb.NumRows())
			for i := range outL {
				outL[i] = -1
			}
			return types.MustBatch(o.node.Schema(), o.combinePadCols(
				types.NewBatchBuilder(o.leftSchema, 0).Build(), tb, outL, outR)), nil
		}
		if err != io.EOF {
			return nil, err
		}
		o.emittedTail = true
	}
	return nil, io.EOF
}

func (o *vecJoinOp) runSpilled() error {
	// Partition the entire probe input through the same hash space.
	for {
		lb, err := o.left.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		keys, err := o.leftBE.run(lb)
		if err != nil {
			return err
		}
		hashes := eval.HashColumns(keys, lb.NumRows(), nil)
		if err := o.scatterWithRID(o.leftParts, lb, hashes, &o.leftRID); err != nil {
			return err
		}
	}
	var outs, tails []func() (*types.Batch, error)
	for p := 0; p < spillFanout; p++ {
		if err := o.processPartition(o.rightParts.parts[p], o.leftParts.parts[p], 1, &outs, &tails); err != nil {
			return err
		}
	}
	var spillBytes int64
	for _, sf := range o.spillFiles {
		spillBytes += sf.bytes
	}
	o.stats.AddSpill(len(o.spillFiles), spillBytes)
	if o.e.Metrics != nil {
		o.e.Metrics.Counter("exec.spill.partitions").Add(int64(len(o.spillFiles)))
		o.e.Metrics.Counter("exec.spill.bytes").Add(spillBytes)
	}
	var err error
	if o.merge, err = newRidMerge(o.node.Schema(), outs); err != nil {
		return err
	}
	if o.needUsed() {
		if o.tailMerge, err = newRidMerge(o.rightSchema, tails); err != nil {
			return err
		}
	}
	return nil
}

// splitRID separates a spilled batch into its payload rows and rid column.
func splitRID(schema *types.Schema, b *types.Batch) (*types.Batch, []int64) {
	nc := len(b.Cols) - 1
	return types.MustBatch(schema, b.Cols[:nc]), b.Cols[nc].Int64s()
}

// processPartition joins one (right, left) partition pair. level is the
// depth the partition was written at; re-partitioning consumes the next 3
// hash bits. Oversized partitions recurse until maxSpillLevel, past which
// they are processed in memory regardless of size.
func (o *vecJoinOp) processPartition(rp, lp *spillFile, level int, outs, tails *[]func() (*types.Batch, error)) error {
	if rp == nil && lp == nil {
		return nil
	}
	// Load the right partition.
	var rbatches []*types.Batch
	var rbytes int64
	if rp != nil {
		pull, err := rp.reader()
		if err != nil {
			return err
		}
		for {
			b, err := pull()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rbatches = append(rbatches, b)
			rbytes += batchBytes(b)
		}
	}
	var rrows int
	for _, b := range rbatches {
		rrows += b.NumRows()
	}
	// A partition of one row can't subdivide; build it directly whatever the
	// budget says.
	if rbytes > o.spillLimit && rrows > 1 && level < maxSpillLevel {
		// Still too big: subdivide both sides one level deeper.
		subR := newSpillPartitions(schemaWithRID(o.rightSchema), level, o.trackSpill)
		for _, b := range rbatches {
			rows, _ := splitRID(o.rightSchema, b)
			keys, err := o.rightBE.run(rows)
			if err != nil {
				return err
			}
			if err := subR.scatter(b, eval.HashColumns(keys, rows.NumRows(), nil)); err != nil {
				return err
			}
		}
		rbatches = nil
		subL := newSpillPartitions(schemaWithRID(o.leftSchema), level, o.trackSpill)
		if lp != nil {
			pull, err := lp.reader()
			if err != nil {
				return err
			}
			for {
				b, err := pull()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				rows, _ := splitRID(o.leftSchema, b)
				keys, err := o.leftBE.run(rows)
				if err != nil {
					return err
				}
				if err := subL.scatter(b, eval.HashColumns(keys, rows.NumRows(), nil)); err != nil {
					return err
				}
			}
			lp.cleanup()
		}
		rp.cleanup()
		for p := 0; p < spillFanout; p++ {
			if err := o.processPartition(subR.parts[p], subL.parts[p], level+1, outs, tails); err != nil {
				return err
			}
		}
		return nil
	}

	// Leaf: build the partition's table in memory and probe it.
	rowsBB := types.NewBatchBuilder(o.rightSchema, 0)
	var rids []int64
	for _, b := range rbatches {
		rows, brids := splitRID(o.rightSchema, b)
		rowsBB.AppendBatch(rows)
		rids = append(rids, brids...)
	}
	rows := rowsBB.Build()
	var keys []*types.Column
	var hashes []uint64
	if rows.NumRows() > 0 {
		var err error
		if keys, err = o.rightBE.run(rows); err != nil {
			return err
		}
		hashes = eval.HashColumns(keys, rows.NumRows(), nil)
	} else {
		keys = o.emptyKeyCols()
	}
	t := newJoinTable(rows, keys, rids, hashes, o.needUsed())
	if rp != nil {
		rp.cleanup()
	}

	if lp != nil {
		out, err := newSpillFile(schemaWithRID(o.node.Schema()))
		if err != nil {
			return err
		}
		o.trackSpill(out)
		pull, err := lp.reader()
		if err != nil {
			return err
		}
		for {
			b, err := pull()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			lrows, lrids := splitRID(o.leftSchema, b)
			ob, err := o.probeBatch(t, lrows, lrids)
			if err != nil {
				return err
			}
			if ob.NumRows() > 0 {
				if err := out.write(ob); err != nil {
					return err
				}
			}
		}
		lp.cleanup()
		pullOut, err := out.reader()
		if err != nil {
			return err
		}
		*outs = append(*outs, pullOut)
	}

	if o.needUsed() && len(t.used) > 0 {
		var idx []int
		for i, used := range t.used {
			if !used {
				idx = append(idx, i)
			}
		}
		if len(idx) > 0 {
			tf, err := newSpillFile(schemaWithRID(o.rightSchema))
			if err != nil {
				return err
			}
			o.trackSpill(tf)
			if err := tf.write(appendRIDCol(tf.schema, t.rows.Gather(idx), ridGather(t.rids, idx))); err != nil {
				return err
			}
			pullTail, err := tf.reader()
			if err != nil {
				return err
			}
			*tails = append(*tails, pullTail)
		}
	}
	return nil
}

func ridGather(rids []int64, idx []int) []int64 {
	out := make([]int64, len(idx))
	for j, i := range idx {
		out[j] = rids[i]
	}
	return out
}
