package exec

import (
	"fmt"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// seedBig adds enough rows that parallel partitioning actually engages.
func seedBig(t testing.TB, w *world, rows int) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt64},
		types.Field{Name: "b", Kind: types.KindInt64},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"big"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		bb.Column(0).AppendInt64(int64(i))
		bb.Column(1).AppendInt64(int64(i * 3))
	}
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"big"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
}

func runUDFQuery(t *testing.T, w *world, parallelism int) *types.Batch {
	t.Helper()
	w.engine.Parallelism = parallelism
	q, err := sql.ParseQuery("SELECT f(a, b) AS r FROM big")
	if err != nil {
		t.Fatal(err)
	}
	a := analyzer.New(w.cat, adminCtx())
	a.TempFuncs = map[string]analyzer.TempFunc{
		"f": {
			Params: []types.Field{
				{Name: "a", Kind: types.KindInt64},
				{Name: "b", Kind: types.KindInt64},
			},
			Returns: types.KindInt64,
			Body:    "return a * 1000 + b",
			Owner:   admin,
		},
	}
	resolved, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	qc := NewQueryContext(w.cat, adminCtx())
	b, err := w.engine.ExecuteToBatch(qc, optimizer.Optimize(resolved, optimizer.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelUDFExecutionCorrectness verifies partition-parallel sandbox
// execution preserves row order and values exactly.
func TestParallelUDFExecutionCorrectness(t *testing.T) {
	const rows = 5_000
	w := newWorld(t)
	seedBig(t, w, rows)

	serial := runUDFQuery(t, w, 1)
	parallel := runUDFQuery(t, w, 4)
	if serial.NumRows() != rows || parallel.NumRows() != rows {
		t.Fatalf("row counts: serial=%d parallel=%d", serial.NumRows(), parallel.NumRows())
	}
	for i := 0; i < rows; i++ {
		want := int64(i)*1000 + int64(i*3)
		if serial.Cols[0].Int64(i) != want {
			t.Fatalf("serial row %d = %d, want %d", i, serial.Cols[0].Int64(i), want)
		}
		if parallel.Cols[0].Int64(i) != want {
			t.Fatalf("parallel row %d = %d, want %d (order or stitching broken)",
				i, parallel.Cols[0].Int64(i), want)
		}
	}
	// Partitions acquired sandboxes independently (provisioned or pooled —
	// on a fast machine the pool may satisfy every partition with one warm
	// sandbox, which is the pooling working as designed).
	st := w.engine.Dispatcher.Stats()
	if st.ColdStarts+st.Reuses < 4 {
		t.Errorf("expected >=4 sandbox acquisitions across partitions, stats=%+v", st)
	}
}

// TestParallelSmallBatchStaysSerial avoids partition overhead on tiny inputs.
func TestParallelSmallBatchStaysSerial(t *testing.T) {
	w := newWorld(t)
	seedBig(t, w, 100)
	_ = runUDFQuery(t, w, 8)
	if got := w.engine.Dispatcher.Stats().ColdStarts; got != 1 {
		t.Errorf("small batch used %d sandboxes, want 1", got)
	}
}

func BenchmarkParallelUDFScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := newWorld(b)
			seedBig(b, w, 20_000)
			// Build the plan once.
			q, _ := sql.ParseQuery("SELECT f(a, b) AS r FROM big")
			a := analyzer.New(w.cat, adminCtx())
			a.TempFuncs = map[string]analyzer.TempFunc{
				"f": {
					Params: []types.Field{
						{Name: "a", Kind: types.KindInt64},
						{Name: "b", Kind: types.KindInt64},
					},
					Returns: types.KindInt64,
					// CPU-heavy so sandbox work dominates the serial
					// stitching and the scaling is visible.
					Body:  "h = str(a)\nfor i in range(20):\n    h = sha256(h)\nreturn len(h) + b",
					Owner: admin,
				},
			}
			resolved, err := a.Analyze(q)
			if err != nil {
				b.Fatal(err)
			}
			pl := optimizer.Optimize(resolved, optimizer.DefaultOptions())
			w.engine.Parallelism = workers
			qc := NewQueryContext(w.cat, adminCtx())
			if _, err := w.engine.Execute(qc, pl); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.engine.Execute(qc, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
