package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// TestOptimizerEquivalence is a property test: for a corpus of generated
// queries, the optimized plan must return exactly the same multiset of rows
// as the unoptimized plan. This guards every rewrite rule (pushdowns,
// pruning, folding, fusion) at once.
func TestOptimizerEquivalence(t *testing.T) {
	w := newWorld(t)
	// A second table for joins.
	qschema := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "quota", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"quotas"}, qschema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(qschema, 3)
	bb.AppendRow([]types.Value{types.String("ann"), types.Float64(120)})
	bb.AppendRow([]types.Value{types.String("ben"), types.Float64(400)})
	bb.AppendRow([]types.Value{types.String("zoe"), types.Float64(10)})
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"quotas"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}

	queries := generateQueries(200, 7)
	for _, q := range queries {
		plain, err1 := w.runWithOptions(q, optimizer.Options{})
		opt, err2 := w.runWithOptions(q, optimizer.DefaultOptions())
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence for %q: plain=%v optimized=%v", q, err1, err2)
		}
		if err1 != nil {
			continue // both failed identically (e.g. empty result edge)
		}
		if a, b := canonicalRows(plain), canonicalRows(opt); a != b {
			t.Fatalf("result divergence for %q:\nplain:\n%s\noptimized:\n%s", q, a, b)
		}
	}
}

// runWithOptions analyzes and executes a query with the given optimizer
// options.
func (w *world) runWithOptions(query string, opts optimizer.Options) (*types.Batch, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	a := analyzer.New(w.cat, adminCtx())
	resolved, err := a.Analyze(q)
	if err != nil {
		return nil, err
	}
	optimized := optimizer.Optimize(resolved, opts)
	qc := NewQueryContext(w.cat, adminCtx())
	return w.engine.ExecuteToBatch(qc, optimized)
}

// canonicalRows renders a batch as sorted row strings (order-insensitive
// comparison; queries with ORDER BY still agree since both sides sort).
func canonicalRows(b *types.Batch) string {
	rows := make([]string, b.NumRows())
	for i := range rows {
		rows[i] = fmt.Sprint(b.Row(i))
	}
	sort.Strings(rows)
	out := ""
	for _, r := range rows {
		out += r + "\n"
	}
	return out
}

// generateQueries builds a deterministic corpus of random-but-valid SQL over
// the sales/quotas fixtures.
func generateQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	preds := []string{
		"region = 'US'", "region <> 'EU'", "amount > 60", "amount <= 200",
		"seller LIKE 'a%'", "seller IN ('ann', 'ben')", "region IS NOT NULL",
		"amount BETWEEN 40 AND 250", "date = '2024-12-01'",
		"upper(region) = 'US'", "length(seller) = 3",
	}
	projections := [][]string{
		{"*"},
		{"amount", "seller"},
		{"seller", "amount * 2 AS double"},
		{"region", "CASE WHEN amount > 100 THEN 'big' ELSE 'small' END AS size"},
		{"upper(seller) AS s", "amount"},
	}
	var out []string
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // filtered projection
			p := projections[rng.Intn(len(projections))]
			q := "SELECT " + join(p) + " FROM sales"
			if rng.Intn(3) > 0 {
				q += " WHERE " + preds[rng.Intn(len(preds))]
				if rng.Intn(2) == 0 {
					q += " AND " + preds[rng.Intn(len(preds))]
				}
			}
			out = append(out, q)
		case 1: // aggregate
			q := "SELECT region, SUM(amount) AS t, COUNT(*) AS n, MIN(amount) AS lo FROM sales"
			if rng.Intn(2) == 0 {
				q += " WHERE " + preds[rng.Intn(len(preds))]
			}
			q += " GROUP BY region"
			if rng.Intn(2) == 0 {
				q += " HAVING COUNT(*) > 0"
			}
			out = append(out, q)
		case 2: // join
			joinTypes := []string{"JOIN", "LEFT JOIN", "LEFT SEMI JOIN", "LEFT ANTI JOIN"}
			jt := joinTypes[rng.Intn(len(joinTypes))]
			sel := "s.seller, s.amount"
			if jt == "LEFT SEMI JOIN" || jt == "LEFT ANTI JOIN" {
				sel = "s.seller, s.amount"
			} else if rng.Intn(2) == 0 {
				sel = "s.seller, q.quota"
			}
			q := fmt.Sprintf("SELECT %s FROM sales s %s quotas q ON s.seller = q.seller", sel, jt)
			if rng.Intn(2) == 0 {
				q += " WHERE s.amount > 40"
			}
			out = append(out, q)
		case 3: // order/limit/distinct
			q := "SELECT DISTINCT region FROM sales ORDER BY region"
			if rng.Intn(2) == 0 {
				q = fmt.Sprintf("SELECT seller, amount FROM sales ORDER BY amount DESC LIMIT %d OFFSET %d",
					1+rng.Intn(5), rng.Intn(3))
			}
			out = append(out, q)
		case 4: // union / subquery
			if rng.Intn(2) == 0 {
				out = append(out, "SELECT amount FROM sales WHERE region = 'US' UNION ALL SELECT amount FROM sales WHERE region = 'EU'")
			} else {
				out = append(out, "SELECT x FROM (SELECT amount AS x FROM sales WHERE amount > 50) sub WHERE x < 250")
			}
		}
	}
	return out
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
