package exec

import (
	"sync"

	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Runtime filters: once a hash join's build side has materialized, the join
// knows exactly which key values can produce output. A scanRF captures that
// knowledge (bloom filter + min/max bounds per equi-key column) and is
// installed onto the probe-side scan, which then (a) skips whole files whose
// zone-map statistics fall outside the build keys — composing with the
// static pruning in prune.go, but with bounds no optimizer could know — and
// (b) drops non-matching rows right after decode, before they travel through
// the rest of the probe pipeline.
//
// Runtime filters are an optimization, never a semantics change, so they are
// only derived for join types where a probe row without a build match
// produces no output at all: INNER, LEFT SEMI, and RIGHT (whose unmatched
// right rows come from the build-side tail, not the probe).

// rfRegistry maps compiled scan nodes to their runtime sources so a join
// built higher in the same plan can install filters on them. One registry is
// created per Execute call and shared by every QueryContext copy.
type rfRegistry struct {
	mu    sync.Mutex
	scans map[*plan.Scan]*scanSource
}

func newRFRegistry() *rfRegistry { return &rfRegistry{scans: map[*plan.Scan]*scanSource{}} }

func (r *rfRegistry) register(s *plan.Scan, src *scanSource) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.scans[s] = src
	r.mu.Unlock()
}

func (r *rfRegistry) lookup(s *plan.Scan) *scanSource {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scans[s]
}

// rfJoinTypeOK reports whether a probe row that misses the build side is
// guaranteed to produce no output for this join type.
func rfJoinTypeOK(t plan.JoinType) bool {
	return t == plan.JoinInner || t == plan.JoinLeftSemi || t == plan.JoinRight
}

// findRFScan walks from the probe-side plan root toward a Scan, translating
// the key's column ordinal through each node. Only nodes that pass rows
// through unchanged (or by pure column selection) are traversed; anything
// that synthesizes, drops, or reorders membership — Limit, Distinct,
// Aggregate, Union, nested Joins, computed projections — stops the walk, and
// the join simply runs without a runtime filter for that key.
func findRFScan(reg *rfRegistry, node plan.Node, idx int) (*scanSource, int, bool) {
	switch t := node.(type) {
	case *plan.Scan:
		src := reg.lookup(t)
		if src == nil || idx < 0 || idx >= t.Schema().Len() {
			return nil, 0, false
		}
		return src, idx, true
	case *plan.Filter:
		return findRFScan(reg, t.Child, idx)
	case *plan.SubqueryAlias:
		return findRFScan(reg, t.Child, idx)
	case *plan.SecureView:
		return findRFScan(reg, t.Child, idx)
	case *plan.Sort:
		return findRFScan(reg, t.Child, idx)
	case *plan.Project:
		if idx < 0 || idx >= len(t.Exprs) {
			return nil, 0, false
		}
		e := t.Exprs[idx]
		if a, ok := e.(*plan.Alias); ok {
			e = a.Child
		}
		if br, ok := e.(*plan.BoundRef); ok {
			return findRFScan(reg, t.Child, br.Index)
		}
		return nil, 0, false
	}
	return nil, 0, false
}

// bloomFilter is a fixed-size blocked-probe bloom filter. The size is fixed
// (128 KiB of bits) because build cardinality is unknown while streaming; an
// oversized build side degrades toward keeping everything, which is correct.
type bloomFilter struct {
	words []uint64
	mask  uint64
}

const bloomBits = 1 << 20

func newBloomFilter() *bloomFilter {
	return &bloomFilter{words: make([]uint64, bloomBits/64), mask: bloomBits - 1}
}

func (f *bloomFilter) add(h uint64) {
	h2 := h>>33 | h<<31
	for k := uint64(0); k < 4; k++ {
		bit := (h + k*h2) & f.mask
		f.words[bit>>6] |= 1 << (bit & 63)
	}
}

func (f *bloomFilter) mayContain(h uint64) bool {
	h2 := h>>33 | h<<31
	for k := uint64(0); k < 4; k++ {
		bit := (h + k*h2) & f.mask
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// rfBuilder accumulates one equi-key column's filter while the join build
// side streams, then installs the finished filter on the probe-side scan.
type rfBuilder struct {
	src    *scanSource
	col    int // column ordinal in the scan's output schema
	keyIdx int // which equi-key this builder observes
	bloom  *bloomFilter
	min    types.Value
	max    types.Value
	any    bool // saw at least one non-NULL build key
	nan    bool // build keys contain NaN: NaN equals everything, filter unusable
}

// observe folds one build part's key column into the filter. hashes are the
// single-column hashes for keys (not the combined multi-column row hash), so
// the probe side can test membership per column.
func (b *rfBuilder) observe(keys *types.Column, hashes []uint64) {
	n := keys.Len()
	for i := 0; i < n; i++ {
		if keys.IsNull(i) {
			continue
		}
		v := keys.Value(i)
		if v.Kind == types.KindFloat64 && v.F != v.F {
			b.nan = true
			continue
		}
		b.bloom.add(hashes[i])
		if !b.any {
			b.min, b.max, b.any = v, v, true
			continue
		}
		if c, ok := v.Compare(b.min); ok && c < 0 {
			b.min = v
		}
		if c, ok := v.Compare(b.max); ok && c > 0 {
			b.max = v
		}
	}
}

// install publishes the finished filter onto the probe scan. A build side
// containing NaN keys disables the filter for this column (NaN compares
// equal to everything, so no probe value can be excluded).
func (b *rfBuilder) install(joinStats *telemetry.OpStats, metrics *telemetry.Registry) {
	if b.nan {
		return
	}
	b.src.installRF(&scanRF{
		col:       b.col,
		bloom:     b.bloom,
		min:       b.min,
		max:       b.max,
		empty:     !b.any,
		joinStats: joinStats,
		metrics:   metrics,
	})
}

// scanRF is an installed runtime filter: the probe scan consults it per file
// (statistics only, before any storage GET) and per row (after decode).
type scanRF struct {
	col       int
	bloom     *bloomFilter
	min, max  types.Value
	empty     bool // build side had no non-NULL keys: nothing can match
	joinStats *telemetry.OpStats
	metrics   *telemetry.Registry
}

// filePrunable reports whether the file's statistics prove no row can match
// any build key. Mirrors the conservatism of prune.go: missing stats keep
// the file, NaN rows keep the file (NaN matches everything when the build is
// non-empty), an all-NULL column proves no match.
func (rf *scanRF) filePrunable(scan *plan.Scan, fs *delta.FileStats) bool {
	if rf.empty {
		return true
	}
	if fs == nil {
		return false
	}
	name := scan.Schema().Fields[rf.col].Name
	cs, ok := fs.Col(name)
	if !ok {
		return false
	}
	if cs.NullCount >= fs.NumRecords {
		return true
	}
	if cs.HasNaN {
		return false
	}
	fmin, fmax, ok := cs.Bounds()
	if !ok {
		return false
	}
	if c, ok := fmax.Compare(rf.min); ok && c < 0 {
		return true
	}
	if c, ok := fmin.Compare(rf.max); ok && c > 0 {
		return true
	}
	return false
}

// filterRows refines a selection over b: sel lists the surviving row indices
// (nil means all n rows). Returns the refined selection (never nil) and the
// number of rows dropped. A row survives only if its key is non-NULL, within
// the build [min, max], and bloom-positive.
func (rf *scanRF) filterRows(b *types.Batch, sel []int, n int) ([]int, int) {
	col := b.Cols[rf.col]
	m := n
	if sel != nil {
		m = len(sel)
	}
	next := make([]int, 0, m)
	if rf.empty {
		return next, m
	}
	hashes := eval.HashColumns([]*types.Column{col}, n, nil)
	for j := 0; j < m; j++ {
		i := j
		if sel != nil {
			i = sel[j]
		}
		if col.IsNull(i) {
			continue
		}
		if !rf.bloom.mayContain(hashes[i]) {
			continue
		}
		v := col.Value(i)
		cmin, ok := v.Compare(rf.min)
		if !ok || cmin < 0 {
			// Incomparable kinds can never equal a build key.
			continue
		}
		if cmax, ok := v.Compare(rf.max); !ok || cmax > 0 {
			continue
		}
		next = append(next, i)
	}
	return next, m - len(next)
}
