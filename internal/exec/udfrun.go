package exec

import (
	"fmt"
	"sync"

	"lakeguard/internal/eval"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
	"lakeguard/internal/udf"
)

// exprRunner evaluates a fixed list of expressions over batches. UDF calls
// are lifted out by the fusion planner and executed through the sandbox
// dispatcher (one crossing per trust-domain group per wave); the residual
// expression tree is evaluated in-process.
type exprRunner struct {
	engine *Engine
	qc     *QueryContext
	// exprs are the original expressions; the UDF plan is built lazily on
	// the first batch, which fixes the input width.
	exprs []plan.Expr
	plan  *optimizer.UDFPlan
	// vecProgs are per-residual-expression vector kernels, compiled lazily
	// against the first batch's post-wave column kinds (nil entries use the
	// row interpreter).
	vecProgs []*eval.VecProg
	vecTried bool
	// inProcessPrograms caches compiled UDFs for the unsafe baseline.
	inProcessPrograms map[string]*udf.Program
}

func (e *Engine) newExprRunner(qc *QueryContext, exprs []plan.Expr) (*exprRunner, error) {
	return &exprRunner{engine: e, qc: qc, exprs: exprs}, nil
}

// ensurePlan builds the UDF extraction plan against the real batch width.
func (r *exprRunner) ensurePlan(inputWidth int) error {
	if r.plan != nil {
		return nil
	}
	p, err := optimizer.PlanUDFs(r.exprs, inputWidth, r.engine.FuseUDFs)
	if err != nil {
		return err
	}
	if p.HasUDFs() && r.engine.Dispatcher == nil && !r.engine.UnsafeInProcessUDFs {
		return fmt.Errorf("exec: plan contains user code but the engine has no sandbox dispatcher")
	}
	r.plan = p
	return nil
}

// run evaluates the expressions over one batch, returning one column per
// expression.
func (r *exprRunner) run(batch *types.Batch) ([]*types.Column, error) {
	if err := r.ensurePlan(batch.NumCols()); err != nil {
		return nil, err
	}
	cols := append([]*types.Column{}, batch.Cols...)
	n := batch.NumRows()

	for _, wave := range r.plan.Waves {
		for _, group := range wave {
			var err error
			cols, err = r.runGroup(group, cols, n)
			if err != nil {
				return nil, err
			}
		}
	}

	if !r.vecTried {
		r.vecTried = true
		kinds := make([]types.Kind, len(cols))
		for i, c := range cols {
			kinds[i] = c.Kind()
		}
		r.vecProgs = make([]*eval.VecProg, len(r.plan.Exprs))
		for ei, ex := range r.plan.Exprs {
			if p, ok := eval.CompileVec(ex, kinds); ok && p.Kind() == ex.Type() {
				r.vecProgs[ei] = p
			}
		}
	}

	rowFn := func(i int) eval.RowFn {
		return func(c int) types.Value { return cols[c].Value(i) }
	}
	out := make([]*types.Column, len(r.plan.Exprs))
	for ei, ex := range r.plan.Exprs {
		if p := r.vecProgs[ei]; p != nil {
			out[ei] = p.Run(cols, n, nil)
			continue
		}
		b := types.NewBuilder(ex.Type(), n)
		for i := 0; i < n; i++ {
			v, err := eval.Eval(ex, rowFn(i), r.qc.Eval)
			if err != nil {
				return nil, err
			}
			if v.Null {
				b.AppendNull()
				continue
			}
			if v.Kind != ex.Type() && ex.Type() != types.KindNull {
				cast, cerr := v.Cast(ex.Type())
				if cerr != nil {
					return nil, cerr
				}
				v = cast
			}
			b.Append(v)
		}
		out[ei] = b.Build()
	}
	return out, nil
}

// runGroup executes one fused sandbox crossing (or the unsafe in-process
// baseline) and appends the result columns.
func (r *exprRunner) runGroup(group optimizer.UDFGroup, cols []*types.Column, n int) ([]*types.Column, error) {
	// Materialize argument columns by evaluating arg expressions over the
	// current (extended) layout.
	rowFn := func(i int) eval.RowFn {
		return func(c int) types.Value { return cols[c].Value(i) }
	}
	argSchema := &types.Schema{}
	var argCols []*types.Column
	specs := make([]sandbox.UDFSpec, len(group.Calls))
	for ci, call := range group.Calls {
		spec := sandbox.UDFSpec{
			Name:       call.Call.Name,
			Body:       call.Call.Body,
			ArgNames:   call.Call.ArgNames,
			ResultKind: call.Call.ResultKind,
		}
		for ai, argExpr := range call.Call.Args {
			kind := argExpr.Type()
			if kind == types.KindNull {
				kind = types.KindString
			}
			b := types.NewBuilder(kind, n)
			for i := 0; i < n; i++ {
				v, err := eval.Eval(argExpr, rowFn(i), r.qc.Eval)
				if err != nil {
					return nil, err
				}
				b.Append(v)
			}
			spec.ArgCols = append(spec.ArgCols, len(argCols))
			argCols = append(argCols, b.Build())
			argSchema.Fields = append(argSchema.Fields, types.Field{
				Name:     fmt.Sprintf("a%d_%d", ci, ai),
				Kind:     kind,
				Nullable: true,
			})
		}
		specs[ci] = spec
	}
	if len(argCols) == 0 {
		// Zero-argument UDFs still evaluate once per input row: carry the
		// row count with a constant column.
		argSchema.Fields = append(argSchema.Fields, types.Field{Name: "__rowid", Kind: types.KindInt64})
		argCols = append(argCols, types.ConstColumn(types.Int64(0), n))
	}
	argBatch := types.MustBatch(argSchema, argCols)

	if r.engine.UnsafeInProcessUDFs {
		results, err := r.runInProcess(specs, argBatch)
		if err != nil {
			return nil, err
		}
		return append(cols, results...), nil
	}

	result, err := r.executeSandboxed(specs, argBatch, group.TrustDomain, group.Resources)
	if err != nil {
		return nil, err
	}
	return append(cols, result...), nil
}

// executeSandboxed runs one fused request through the dispatcher. With
// Engine.Parallelism > 1 and a large enough batch, the rows are split into
// partitions executed concurrently on separate sandboxes of the same trust
// domain — the executor-worker parallelism of a multi-node Spark cluster.
func (r *exprRunner) executeSandboxed(specs []sandbox.UDFSpec, argBatch *types.Batch, trustDomain, resources string) ([]*types.Column, error) {
	workers := r.engine.Parallelism
	n := argBatch.NumRows()
	const minRowsPerWorker = 256
	if workers <= 1 || n < 2*minRowsPerWorker {
		return r.executeOnePartition(specs, argBatch, trustDomain, resources)
	}
	if max := n / minRowsPerWorker; workers > max {
		workers = max
	}

	type part struct {
		cols []*types.Column
		err  error
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cols, err := r.executeOnePartition(specs, argBatch.Slice(lo, hi), trustDomain, resources)
			parts[w] = part{cols: cols, err: err}
		}(w, lo, hi)
	}
	wg.Wait()
	// Stitch partition results back together in order.
	builders := make([]*types.Builder, len(specs))
	for i, spec := range specs {
		builders[i] = types.NewBuilder(spec.ResultKind, n)
	}
	for w := range parts {
		if parts[w].err != nil {
			return nil, parts[w].err
		}
		if parts[w].cols == nil {
			continue
		}
		for ci, col := range parts[w].cols {
			builders[ci].AppendColumn(col)
		}
	}
	out := make([]*types.Column, len(builders))
	for i, b := range builders {
		out[i] = b.Build()
	}
	return out, nil
}

func (r *exprRunner) executeOnePartition(specs []sandbox.UDFSpec, args *types.Batch, trustDomain, resources string) ([]*types.Column, error) {
	ctx := r.qc.GoContext()
	sb, err := r.engine.Dispatcher.AcquireResources(ctx, r.qc.SessionID, trustDomain, resources)
	if err != nil {
		return nil, err
	}
	defer r.engine.Dispatcher.Release(r.qc.SessionID, sb)
	result, err := sb.Execute(ctx, &sandbox.Request{Specs: specs, Args: args, PlanFingerprint: r.qc.VerifiedPlan})
	if err != nil {
		return nil, err
	}
	return result.Cols, nil
}

// runInProcess is the pre-Lakeguard baseline: user code interpreted directly
// in the engine process with ambient capabilities and no serialization
// boundary. Benchmark use only.
func (r *exprRunner) runInProcess(specs []sandbox.UDFSpec, args *types.Batch) ([]*types.Column, error) {
	if r.inProcessPrograms == nil {
		r.inProcessPrograms = map[string]*udf.Program{}
	}
	n := args.NumRows()
	out := make([]*types.Column, len(specs))
	env := make(map[string]types.Value, 4)
	for si, spec := range specs {
		prog, ok := r.inProcessPrograms[spec.Body]
		if !ok {
			var err error
			prog, err = udf.Compile(spec.Body)
			if err != nil {
				return nil, err
			}
			r.inProcessPrograms[spec.Body] = prog
		}
		b := types.NewBuilder(spec.ResultKind, n)
		for i := 0; i < n; i++ {
			clear(env)
			for ai, col := range spec.ArgCols {
				env[spec.ArgNames[ai]] = args.Cols[col].Value(i)
			}
			v, err := prog.Call(env, nil)
			if err != nil {
				return nil, fmt.Errorf("exec: in-process udf %s: %w", spec.Name, err)
			}
			if v.Null {
				b.AppendNull()
				continue
			}
			cast, err := v.Cast(spec.ResultKind)
			if err != nil {
				return nil, err
			}
			b.Append(cast)
		}
		out[si] = b.Build()
	}
	return out, nil
}
