// Package exec compiles optimized logical plans into physical operators and
// runs them. Operators are pull-based batch iterators. UDF evaluation never
// happens in-process: projection and filter expressions containing UDF calls
// are split by the optimizer's fusion planner into sandbox crossings, routed
// through the dispatcher (paper §3.3). RemoteScan leaves delegate to a
// pluggable remote executor (eFGAC, §3.4).
package exec

import (
	"context"
	"errors"
	"fmt"
	"io"

	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/security"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// RemoteExecutor runs an eFGAC subquery on external compute and returns the
// result batches. Implemented by the Lakeguard core (Serverless Spark path).
type RemoteExecutor interface {
	ExecuteRemote(qc *QueryContext, rs *plan.RemoteScan) ([]*types.Batch, error)
}

// TableProvider is the engine's only route to governed table data: resolve a
// table, enforce privileges, vend a credential, and return the snapshot plus
// a reader bound to that credential. The reader returns decoded batches so
// the provider may serve them from a credential-scoped cache — every call
// still revalidates the caller's credential before any bytes flow.
// catalog.Catalog satisfies it structurally; exec deliberately does not
// import the catalog or storage packages (an import boundary lakeguard-lint
// enforces), so the only data the engine can read is what a vended
// credential covers.
type TableProvider interface {
	OpenSnapshot(ctx security.RequestContext, table string, version int64) (*delta.Snapshot, func(path string) (*types.Batch, error), error)
}

// GroupChecker answers account-group membership questions (dynamic views,
// IS_ACCOUNT_GROUP_MEMBER). catalog.Catalog satisfies it structurally.
type GroupChecker interface {
	IsGroupMember(user, group string) bool
}

// Engine executes plans against governed tables with sandboxed user code.
type Engine struct {
	// Tables opens governed table snapshots through vended credentials.
	Tables TableProvider
	// Dispatcher provides sandboxes for UDF execution. Nil engines can run
	// UDF-free plans only.
	Dispatcher *sandbox.Dispatcher
	// Remote serves RemoteScan leaves; nil means eFGAC is unavailable.
	Remote RemoteExecutor
	// FuseUDFs mirrors the optimizer option at execution time.
	FuseUDFs bool
	// Parallelism is the number of executor workers for sandboxed UDF
	// execution (0 or 1 = serial). Large batches split into partitions that
	// run on separate sandboxes of the same trust domain concurrently.
	Parallelism int
	// UnsafeInProcessUDFs executes user code directly in the engine without
	// isolation. It exists ONLY as the pre-Lakeguard baseline for the
	// Table 2 benchmark; never enable it in a governed deployment.
	UnsafeInProcessUDFs bool
	// Metrics, when non-nil, receives scan-level data-skipping counters
	// (scan.files.scanned, scan.files.pruned).
	Metrics *telemetry.Registry
	// DisableSkipping turns off statistics-based file pruning (bench
	// baselines and pruning-equivalence tests). Results are identical either
	// way; only the number of storage reads changes.
	DisableSkipping bool
	// SpillBytes bounds the in-memory footprint of each join build table and
	// aggregation group table; past it the operator partitions to temp files
	// and recurses (results stay byte-identical). 0 means a 256 MiB default;
	// negative disables spilling entirely.
	SpillBytes int64
	// DisableVecExec forces the row-at-a-time join and aggregation operators
	// (vec-vs-row equivalence harnesses and bench baselines). Results are
	// identical either way.
	DisableVecExec bool
	// DisableRuntimeFilters stops hash joins from pushing build-side
	// bloom/min-max filters into probe scans (bench baselines). Results are
	// identical either way; only rows and files touched change.
	DisableRuntimeFilters bool
}

// spillLimit resolves SpillBytes to an effective per-operator budget.
func (e *Engine) spillLimit() int64 {
	switch {
	case e.SpillBytes < 0:
		return 1 << 62 // effectively unbounded
	case e.SpillBytes == 0:
		return defaultSpillBytes
	default:
		return e.SpillBytes
	}
}

// QueryContext carries the identity and session a query runs under.
type QueryContext struct {
	// Ctx is the security request context (user identity + compute scope).
	Ctx security.RequestContext
	// Eval supplies session functions (CURRENT_USER, group membership).
	Eval *eval.Context
	// SessionID keys sandbox pooling.
	SessionID string
	// Context carries the caller's deadline/cancellation into sandbox
	// crossings and remote execution (nil = context.Background()). When it
	// carries a telemetry span, every operator, worker, storage read and
	// sandbox crossing reports into that trace.
	Context context.Context
	// Profile, when non-nil, collects EXPLAIN ANALYZE operator statistics.
	Profile *telemetry.Profile
	// VerifiedPlan is the sentinel fingerprint of the sealed plan this query
	// executes ("" when the caller did not verify, e.g. a direct engine
	// test). It is stamped on every sandbox crossing so sandboxes configured
	// with RequireVerifiedPlans can refuse argument batches that never
	// passed SENTINEL_VERIFY.
	VerifiedPlan string
	// opParent is the enclosing operator's stats sink during build (the
	// profile tree mirrors the operator tree).
	opParent *telemetry.OpStats
	// rf is the per-execution runtime-filter registry: scans register here
	// during build, hash joins look their probe side up to install filters.
	rf *rfRegistry
}

// GoContext returns the query's Go context, never nil.
func (qc *QueryContext) GoContext() context.Context {
	if qc.Context != nil {
		return qc.Context
	}
	return context.Background()
}

// NewQueryContext builds a query context wiring group membership to the
// governance catalog (or any other GroupChecker).
func NewQueryContext(groups GroupChecker, ctx security.RequestContext) *QueryContext {
	return &QueryContext{
		Ctx: ctx,
		Eval: &eval.Context{
			User:          ctx.User,
			IsGroupMember: func(g string) bool { return groups.IsGroupMember(ctx.User, g) },
		},
		SessionID: ctx.SessionID,
	}
}

// operator is a pull-based batch iterator.
type operator interface {
	// Next returns the next batch or io.EOF.
	Next() (*types.Batch, error)
	// Close releases operator resources. Parallel operators cancel and join
	// their workers here, so abandoning a stream early (LIMIT) never leaks
	// goroutines. Close must be safe after Next returned an error or EOF.
	Close() error
}

// workers returns the effective morsel-parallelism degree (>= 1).
func (e *Engine) workers() int {
	if e.Parallelism > 1 {
		return e.Parallelism
	}
	return 1
}

// Execute runs a plan to completion and returns all result batches. The
// query context's deadline is honored between batches, so a cancelled query
// stops pulling instead of running to completion.
func (e *Engine) Execute(qc *QueryContext, p plan.Node) ([]*types.Batch, error) {
	// Each execution gets a fresh runtime-filter registry on a copied context
	// so the caller's QueryContext is never mutated and registries never leak
	// across executions of the same context.
	root := *qc
	root.rf = newRFRegistry()
	op, err := e.build(&root, p)
	if err != nil {
		return nil, err
	}
	defer op.Close()
	ctx := qc.GoContext()
	var out []*types.Batch
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exec: query cancelled: %w", err)
		}
		b, err := op.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if b.NumRows() > 0 || len(out) == 0 {
			out = append(out, b)
		}
	}
}

// ExecuteToBatch runs a plan and concatenates the result into one batch.
func (e *Engine) ExecuteToBatch(qc *QueryContext, p plan.Node) (*types.Batch, error) {
	batches, err := e.Execute(qc, p)
	if err != nil {
		return nil, err
	}
	return concat(p.Schema(), batches)
}

func concat(schema *types.Schema, batches []*types.Batch) (*types.Batch, error) {
	total := 0
	for _, b := range batches {
		total += b.NumRows()
	}
	bb := types.NewBatchBuilder(schema, total)
	for _, b := range batches {
		bb.AppendBatch(b)
	}
	return bb.Build(), nil
}

// build compiles a plan node into an operator tree, instrumenting each
// operator when the query is traced or profiled. Untraced, unprofiled
// queries skip straight to buildNode and pay nothing.
func (e *Engine) build(qc *QueryContext, p plan.Node) (operator, error) {
	ctx := qc.GoContext()
	if qc.Profile == nil && telemetry.SpanFrom(ctx) == nil {
		return e.buildNode(qc, p)
	}
	name, detail := opLabel(p)
	var stats *telemetry.OpStats
	if qc.Profile != nil {
		stats = qc.Profile.NewOp(qc.opParent, name, detail)
	}
	sctx, span := telemetry.StartSpan(ctx, "exec."+name)
	sub := *qc
	sub.Context = sctx
	sub.opParent = stats
	op, err := e.buildNode(&sub, p)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	return &instrumentedOp{op: op, span: span, stats: stats}, nil
}

// buildNode compiles one plan node; child compilation recurses through
// build so every level is instrumented.
func (e *Engine) buildNode(qc *QueryContext, p plan.Node) (operator, error) {
	switch t := p.(type) {
	case *plan.LocalRelation:
		return &localOp{batch: t.Data}, nil

	case *plan.Scan:
		return e.buildScan(qc, t)

	case *plan.RemoteScan:
		if e.Remote == nil {
			return nil, fmt.Errorf("exec: plan requires external FGAC but no remote executor is configured (relation %s)", t.Relation)
		}
		batches, err := e.Remote.ExecuteRemote(qc, t)
		if err != nil {
			return nil, fmt.Errorf("exec: remote scan %s: %w", t.Relation, err)
		}
		return &batchesOp{batches: batches}, nil

	case *plan.SecureView:
		return e.build(qc, t.Child)

	case *plan.SubqueryAlias:
		return e.build(qc, t.Child)

	case *plan.Filter:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		return e.buildFilter(qc, t, child)

	case *plan.Project:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		return e.buildProject(qc, t, child)

	case *plan.Aggregate:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		return e.newAggOp(qc, t, child)

	case *plan.Join:
		return e.buildJoin(qc, t)

	case *plan.Sort:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		orderExprs := make([]plan.Expr, len(t.Orders))
		for i, ord := range t.Orders {
			orderExprs[i] = ord.Expr
		}
		progs := compileVecExprs(orderExprs, t.Child.Schema(), nil)
		return &sortOp{child: child, orders: t.Orders, progs: progs, qc: qc, schema: t.Schema()}, nil

	case *plan.Limit:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, n: t.N, offset: t.Offset}, nil

	case *plan.Distinct:
		child, err := e.build(qc, t.Child)
		if err != nil {
			return nil, err
		}
		return &distinctOp{child: child, schema: t.Schema()}, nil

	case *plan.Union:
		l, err := e.build(qc, t.L)
		if err != nil {
			return nil, err
		}
		r, err := e.build(qc, t.R)
		if err != nil {
			l.Close() // release the built left side (its span ends with it)
			return nil, err
		}
		return &unionOp{children: []operator{l, r}}, nil
	}
	return nil, fmt.Errorf("exec: unsupported plan node %T", p)
}

func (e *Engine) buildScan(qc *QueryContext, t *plan.Scan) (operator, error) {
	// Definer rights: views resolve (and therefore read) their underlying
	// tables as the view owner; the analyzer recorded that identity.
	ctx := qc.Ctx
	if t.RunAsUser != "" {
		ctx.User = t.RunAsUser
	}
	snap, read, err := e.Tables.OpenSnapshot(ctx, t.Table, t.Version)
	if err != nil {
		return nil, err
	}
	// Zone-map pruning: drop files whose statistics prove no row can pass
	// the pushed filters, before any storage read. Pruning preserves file
	// order, so the ordered exchange below produces the same output with
	// fewer morsels.
	files := make([]int, len(snap.Files))
	for i := range files {
		files[i] = i
	}
	if !e.DisableSkipping && len(t.PushedFilters) > 0 {
		files = pruneFiles(t, snap.Files)
	}
	// Deletion-vector file pruning: a file whose DV covers every row is
	// logically empty — skip it before any storage GET, exactly like a
	// zone-map prune. Partial DVs are masked per-row after the read.
	dvPruned := 0
	live := files[:0]
	for _, i := range files {
		if f := snap.Files[i]; f.DV.Covers(f.NumRecords) {
			dvPruned++
			continue
		}
		live = append(live, i)
	}
	files = live
	if dvPruned > 0 && e.Metrics != nil {
		e.Metrics.Counter("scan.files.dv_pruned").Add(int64(dvPruned))
	}
	pruned := len(snap.Files) - len(files)
	qc.opParent.AddFiles(len(files), pruned)
	if span := telemetry.SpanFrom(qc.GoContext()); span != nil {
		span.Count("files.scanned", int64(len(files)))
		span.Count("files.pruned", int64(pruned))
	}
	if e.Metrics != nil {
		e.Metrics.Counter("scan.files.scanned").Add(int64(len(files)))
		e.Metrics.Counter("scan.files.pruned").Add(int64(pruned))
	}
	src := &scanSource{
		qc: qc, scan: t, snap: snap, files: files, read: read, stats: qc.opParent,
		metrics: e.Metrics,
		progs:   compileVecExprs(t.PushedFilters, t.Schema(), boolKinds(len(t.PushedFilters))),
	}
	// Register the scan so a hash join built above it can install runtime
	// filters onto src before the first file is read.
	qc.rf.register(t, src)
	if w := e.workers(); w > 1 && len(files) > 1 {
		// Parallel file-granular scan: workers pull surviving files in order
		// through the shared credential-bound reader; the gather keeps file
		// order, so output is identical to the serial scan. The exchange is
		// started lazily at the first Next so a join's build phase finishes —
		// and its runtime filters install — before any worker touches storage.
		return &lazyOp{start: func() (operator, error) {
			next := 0
			source := func() (int, bool, error) {
				if next >= len(files) {
					return 0, true, nil
				}
				i := next
				next++
				return i, false, nil
			}
			// Each worker gets its own span (child of this scan's span); storage
			// reads nest under it. newExchange calls makeWorker sequentially
			// before any worker runs, so appending to wspans needs no lock.
			pctx := qc.GoContext()
			var wspans []*telemetry.Span
			ex, err := newExchange(pctx, w, source,
				func() (func(context.Context, int) (*types.Batch, error), error) {
					wctx, ws := telemetry.StartSpan(pctx, "exec.worker")
					ws.SetInt("worker", int64(len(wspans)))
					if ws != nil {
						wspans = append(wspans, ws)
					}
					return func(_ context.Context, i int) (*types.Batch, error) {
						b, err := src.scanFileCtx(wctx, i)
						ws.Count("morsels", 1)
						if err != nil {
							ws.Fail(err)
						}
						return b, err
					}, nil
				}, skipEmptyBatch)
			if err != nil {
				endSpans(wspans)
				return nil, err
			}
			return &parallelScanOp{ex: ex, wspans: wspans}, nil
		}}, nil
	}
	return &scanOp{src: src}, nil
}

// lazyOp defers building its inner operator until the first Next. Parallel
// scans use it so their worker pool doesn't start reading files at plan-build
// time — before upstream joins had a chance to install runtime filters.
type lazyOp struct {
	start func() (operator, error)
	op    operator
	err   error
}

func (o *lazyOp) Next() (*types.Batch, error) {
	if o.err != nil {
		return nil, o.err
	}
	if o.op == nil {
		o.op, o.err = o.start()
		if o.err != nil {
			return nil, o.err
		}
	}
	return o.op.Next()
}

func (o *lazyOp) Close() error {
	if o.op == nil {
		return nil
	}
	return o.op.Close()
}

func boolKinds(n int) []types.Kind {
	ks := make([]types.Kind, n)
	for i := range ks {
		ks[i] = types.KindBool
	}
	return ks
}
