package exec

import (
	"testing"

	"lakeguard/internal/optimizer"
	"lakeguard/internal/types"
)

// seedEdgeTable creates a small table full of hash-kernel edge cases: NULL
// join/group keys, integral floats (which share a hash class with equal
// BIGINTs), booleans (which share a hash class with 0/1 BIGINTs but never
// compare equal to them — a guaranteed hash collision the verify kernels
// must reject), and duplicated keys.
func seedEdgeTable(t testing.TB, w *world) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "bi", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "fl", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "bo", Kind: types.KindBool},
		types.Field{Name: "st", Kind: types.KindString, Nullable: true},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"edges"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(schema, 16)
	rows := [][]types.Value{
		{types.Int64(0), types.Float64(0), types.Bool(false), types.String("a")},
		{types.Int64(1), types.Float64(1), types.Bool(true), types.String("b")},
		{types.Int64(1), types.Float64(1.5), types.Bool(true), types.String("b")},
		{types.Int64(2), types.Float64(2), types.Bool(false), types.String("")},
		{types.Null(types.KindInt64), types.Float64(3), types.Bool(true), types.String("c")},
		{types.Int64(3), types.Null(types.KindFloat64), types.Bool(false), types.Null(types.KindString)},
		{types.Int64(-7), types.Float64(-7), types.Bool(true), types.String("d")},
		{types.Int64(1), types.Float64(2.25), types.Bool(false), types.String("a")},
		{types.Null(types.KindInt64), types.Null(types.KindFloat64), types.Bool(true), types.Null(types.KindString)},
		{types.Int64(1000), types.Float64(1000), types.Bool(false), types.String("e")},
	}
	for _, r := range rows {
		bb.AppendRow(r)
	}
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"edges"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	// An empty table for empty-build-side joins.
	eschema := types.NewSchema(
		types.Field{Name: "k", Kind: types.KindInt64},
		types.Field{Name: "w", Kind: types.KindString},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"nothing"}, eschema, false, ""); err != nil {
		t.Fatal(err)
	}
}

// vecEquivQueries is the corpus for the vec-vs-row harness: every join type
// (including RIGHT/FULL, which generateQueries skips), NULL keys, cross-kind
// numeric keys, hash-class collisions, empty build sides, residual
// conditions, and aggregations from two groups up to enough to force group
// tables to grow and (under a tiny budget) spill.
var vecEquivQueries = []string{
	// Joins over the multi-file events table — big enough to spill.
	"SELECT e.id, e.v, f.id FROM events e JOIN events f ON e.v = f.id WHERE e.id < 400",
	"SELECT e.id, q.quota FROM events e LEFT JOIN quotas q ON e.cat = q.seller WHERE e.id % 53 = 0",
	"SELECT e.id, f.v FROM events e RIGHT JOIN events f ON e.id = f.v WHERE f.id < 200",
	"SELECT e.id, f.id FROM events e FULL JOIN events f ON e.id = f.v WHERE e.id < 150 OR e.id IS NULL",
	"SELECT e.id FROM events e LEFT SEMI JOIN events f ON e.id = f.v",
	"SELECT e.id FROM events e LEFT ANTI JOIN events f ON e.id = f.v WHERE e.id < 500",
	"SELECT e.id, f.id FROM events e JOIN events f ON e.id = f.id AND e.v < f.score WHERE e.id < 300",
	// Multi-key join with a nullable key component.
	"SELECT e.id, f.id FROM events e JOIN events f ON e.v = f.v AND e.cat = f.cat WHERE e.id < 120 AND f.id < 240",
	// Edge-case keys: NULLs never match; integral floats equal BIGINTs
	// cross-kind; booleans hash-collide with 0/1 but never match.
	"SELECT a.bi, b.fl FROM edges a JOIN edges b ON a.bi = b.fl",
	"SELECT a.st, b.st FROM edges a LEFT JOIN edges b ON a.st = b.st",
	"SELECT a.bi, b.bi FROM edges a FULL JOIN edges b ON a.bi = b.bi",
	"SELECT a.bi FROM edges a LEFT ANTI JOIN edges b ON a.bi = b.fl",
	"SELECT a.bi, b.bo FROM edges a JOIN edges b ON a.bi = b.bo",
	// Empty build side: inner join emits nothing (and the runtime filter
	// prunes the whole probe side); outer joins must still pad correctly.
	"SELECT e.id, n.w FROM events e JOIN nothing n ON e.id = n.k",
	"SELECT e.id, n.w FROM events e LEFT JOIN nothing n ON e.id = n.k WHERE e.id < 40",
	"SELECT n.k, e.id FROM nothing n RIGHT JOIN events e ON n.k = e.id WHERE e.id < 40",
	"SELECT e.id FROM events e LEFT SEMI JOIN nothing n ON e.id = n.k",
	"SELECT e.id FROM events e LEFT ANTI JOIN nothing n ON e.id = n.k WHERE e.id < 40",
	// Aggregations: few groups, many groups (forces table growth + spill
	// under a tiny budget), NULL keys, float keys, DISTINCT, empty input.
	"SELECT cat, COUNT(*) AS n, SUM(v) AS sv, AVG(score) AS a FROM events GROUP BY cat",
	"SELECT v, COUNT(*) AS n FROM events GROUP BY v",
	"SELECT id % 350 AS g, SUM(score) AS s, MIN(v) AS lo, MAX(v) AS hi FROM events GROUP BY id % 350",
	"SELECT score, COUNT(*) AS n FROM events WHERE id < 300 GROUP BY score",
	"SELECT bi, COUNT(*) AS n, SUM(fl) AS s FROM edges GROUP BY bi",
	"SELECT fl, MIN(bi) AS lo, MAX(st) AS hi FROM edges GROUP BY fl",
	"SELECT st, COUNT(DISTINCT bi) AS db, SUM(DISTINCT fl) AS df FROM edges GROUP BY st",
	"SELECT COUNT(*) AS n, SUM(v) AS s, MIN(score) AS lo FROM events WHERE id < 0",
	"SELECT k, COUNT(*) AS n FROM nothing GROUP BY k",
	"SELECT COUNT(*) AS n FROM nothing",
	"SELECT cat, v % 5 AS m, COUNT(*) AS n, AVG(v) AS av FROM events GROUP BY cat, v % 5",
	// Join feeding an aggregation: both vectorized operators stacked.
	"SELECT e.cat, COUNT(*) AS n, SUM(f.v) AS s FROM events e JOIN events f ON e.id = f.v GROUP BY e.cat",
}

// TestVecRowEquivalence is the vectorized-execution property test: for every
// corpus query, the vectorized join/aggregation operators must return
// row-for-row IDENTICAL output (same rows, same order) as the row-at-a-time
// reference path — at parallelism 1, 2 and 8, and again with SpillBytes=1 so
// every hash table immediately overflows and takes the spill path.
func TestVecRowEquivalence(t *testing.T) {
	w := newWorld(t)
	qschema := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "quota", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"quotas"}, qschema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(qschema, 3)
	bb.AppendRow([]types.Value{types.String("ann"), types.Float64(120)})
	bb.AppendRow([]types.Value{types.String("ben"), types.Float64(400)})
	bb.AppendRow([]types.Value{types.String("zoe"), types.Float64(10)})
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"quotas"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	seedEventsTable(t, w, 16, 64)
	seedEdgeTable(t, w)

	queries := append(generateQueries(60, 23), vecEquivQueries...)

	type config struct {
		name       string
		vec        bool
		workers    int
		spillBytes int64
	}
	configs := []config{
		{name: "vec", vec: true, workers: 1},
		{name: "vec-w2", vec: true, workers: 2},
		{name: "vec-w8", vec: true, workers: 8},
		{name: "vec-spill", vec: true, workers: 1, spillBytes: 1},
		{name: "vec-spill-w2", vec: true, workers: 2, spillBytes: 1},
		{name: "vec-spill-w8", vec: true, workers: 8, spillBytes: 1},
	}
	defer func() {
		w.engine.DisableVecExec = false
		w.engine.Parallelism = 0
		w.engine.SpillBytes = 0
	}()
	run := func(q string, vec bool, workers int, spillBytes int64) (string, error) {
		w.engine.DisableVecExec = !vec
		w.engine.Parallelism = workers
		w.engine.SpillBytes = spillBytes
		b, err := w.runWithOptions(q, optimizer.DefaultOptions())
		if err != nil {
			return "", err
		}
		return orderedRows(b), nil
	}
	for _, q := range queries {
		ref, refErr := run(q, false, 1, 0)
		for _, c := range configs {
			got, err := run(q, c.vec, c.workers, c.spillBytes)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("error divergence for %q [%s]: row=%v vec=%v", q, c.name, refErr, err)
			}
			if refErr != nil {
				continue
			}
			if got != ref {
				t.Fatalf("ordered-result divergence for %q [%s]:\nrow reference:\n%s\nvectorized:\n%s",
					q, c.name, ref, got)
			}
		}
	}
}
