package exec

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/types"
)

// Spill-to-storage for hash tables. When a join build side or an aggregation
// group table outgrows Engine.SpillBytes, the operator partitions its input
// by key hash into temp-file streams (arrowipc framing, the same wire format
// the sandbox boundary uses) and processes each partition recursively. Rows
// carry a synthetic __rid BIGINT column recording their global input
// position, so merging partition outputs by rid reproduces the exact row
// order the in-memory path emits — spilled runs stay byte-identical.

const (
	defaultSpillBytes = 256 << 20 // per-operator hash-table budget when Engine.SpillBytes is 0
	spillFanout       = 8         // partitions per spill level
	maxSpillLevel     = 6         // recursion cap; beyond this a partition is processed in memory
)

// spillPartOf selects a partition from the top hash bits. Each recursion
// level consumes the next 3 bits, disjoint from the low bits hash tables use
// for bucket addressing, so re-partitioning actually subdivides.
func spillPartOf(h uint64, level int) int {
	return int((h >> (61 - 3*level)) & (spillFanout - 1))
}

// spillFile is one temp-file stream of batches with a fixed schema. Write
// everything, then call reader() exactly once; cleanup() is idempotent and
// safe at any point.
type spillFile struct {
	schema *types.Schema
	f      *os.File
	bw     *bufio.Writer
	w      *arrowipc.Writer
	rows   int64
	bytes  int64
}

type countingWriter struct {
	w io.Writer
	n *int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

func newSpillFile(schema *types.Schema) (*spillFile, error) {
	f, err := os.CreateTemp("", "lakeguard-spill-*")
	if err != nil {
		return nil, fmt.Errorf("exec: create spill file: %w", err)
	}
	sf := &spillFile{schema: schema, f: f}
	sf.bw = bufio.NewWriterSize(countingWriter{w: f, n: &sf.bytes}, 1<<16)
	w, err := arrowipc.NewWriter(sf.bw, schema)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("exec: open spill writer: %w", err)
	}
	sf.w = w
	return sf, nil
}

func (s *spillFile) write(b *types.Batch) error {
	s.rows += int64(b.NumRows())
	if err := s.w.WriteBatch(b); err != nil {
		return fmt.Errorf("exec: spill write: %w", err)
	}
	return nil
}

// reader finalizes the stream and returns a pull function over its batches
// (io.EOF at end). The spill file still needs cleanup() afterwards.
func (s *spillFile) reader() (func() (*types.Batch, error), error) {
	if s.w != nil {
		if err := s.w.Close(); err != nil {
			return nil, fmt.Errorf("exec: finish spill stream: %w", err)
		}
		if err := s.bw.Flush(); err != nil {
			return nil, fmt.Errorf("exec: flush spill file: %w", err)
		}
		s.w = nil
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	rd, err := arrowipc.NewReader(bufio.NewReaderSize(s.f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("exec: open spill reader: %w", err)
	}
	return rd.Next, nil
}

func (s *spillFile) cleanup() {
	if s == nil || s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
	s.f = nil
}

// spillPartitions scatters batches into spillFanout per-partition files,
// created lazily. The hash decides the partition; within a partition, input
// order is preserved. Every created file is reported through track, so the
// owning operator can account for it and clean it up on any exit path.
type spillPartitions struct {
	schema *types.Schema
	level  int
	track  func(*spillFile)
	parts  [spillFanout]*spillFile
}

func newSpillPartitions(schema *types.Schema, level int, track func(*spillFile)) *spillPartitions {
	return &spillPartitions{schema: schema, level: level, track: track}
}

func (sp *spillPartitions) part(p int) (*spillFile, error) {
	if sp.parts[p] == nil {
		sf, err := newSpillFile(sp.schema)
		if err != nil {
			return nil, err
		}
		sp.parts[p] = sf
		if sp.track != nil {
			sp.track(sf)
		}
	}
	return sp.parts[p], nil
}

func (sp *spillPartitions) scatter(b *types.Batch, hashes []uint64) error {
	n := b.NumRows()
	var idx [spillFanout][]int
	for i := 0; i < n; i++ {
		p := spillPartOf(hashes[i], sp.level)
		idx[p] = append(idx[p], i)
	}
	for p, rows := range idx {
		if len(rows) == 0 {
			continue
		}
		pf, err := sp.part(p)
		if err != nil {
			return err
		}
		sub := b
		if len(rows) != n {
			sub = b.Gather(rows)
		}
		if err := pf.write(sub); err != nil {
			return err
		}
	}
	return nil
}


// Size estimators used for spill thresholds. Deliberately cheap and
// deterministic: payload bytes, not allocator truth.

func colBytes(c *types.Column) int64 {
	var b int64
	switch c.Kind() {
	case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
		b = int64(8 * c.Len())
	case types.KindFloat64:
		b = int64(8 * c.Len())
	case types.KindString, types.KindBinary:
		b = int64(16 * c.Len())
		for _, s := range c.Strings() {
			b += int64(len(s))
		}
	}
	if c.NullMask() != nil {
		b += int64(c.Len())
	}
	return b
}

func batchBytes(b *types.Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		n += colBytes(c)
	}
	return n
}

func colsBytes(cols []*types.Column) int64 {
	var n int64
	for _, c := range cols {
		n += colBytes(c)
	}
	return n
}

// schemaWithRID appends the synthetic row-id column spilled rows carry.
func schemaWithRID(s *types.Schema) *types.Schema {
	fields := make([]types.Field, 0, len(s.Fields)+1)
	fields = append(fields, s.Fields...)
	fields = append(fields, types.Field{Name: "__rid", Kind: types.KindInt64})
	return types.NewSchema(fields...)
}

// appendRIDCol returns b's columns plus a rid column, as a batch over schema.
func appendRIDCol(schema *types.Schema, b *types.Batch, rids []int64) *types.Batch {
	cols := make([]*types.Column, 0, len(b.Cols)+1)
	cols = append(cols, b.Cols...)
	cols = append(cols, types.NewInt64Column(types.KindInt64, rids, nil))
	return &types.Batch{Schema: schema, Cols: cols}
}

// ridMerge merges several batch streams whose last column is an ascending
// __rid BIGINT into one globally rid-ordered stream, stripping the rid. Rids
// are globally unique across streams (each input row lands in exactly one
// partition), so the merge is deterministic.
type ridMerge struct {
	out     *types.Schema
	streams []*ridStream
}

type ridStream struct {
	pull func() (*types.Batch, error)
	b    *types.Batch
	pos  int
	rids []int64
}

func (s *ridStream) advance() error {
	for s.b == nil || s.pos >= s.b.NumRows() {
		b, err := s.pull()
		if err == io.EOF {
			s.b = nil
			return nil
		}
		if err != nil {
			return err
		}
		s.b = b
		s.pos = 0
		s.rids = b.Cols[len(b.Cols)-1].Int64s()
	}
	return nil
}

// newRidMerge takes the output schema (without rid) and one pull per stream.
func newRidMerge(out *types.Schema, pulls []func() (*types.Batch, error)) (*ridMerge, error) {
	m := &ridMerge{out: out}
	for _, pull := range pulls {
		s := &ridStream{pull: pull}
		if err := s.advance(); err != nil {
			return nil, err
		}
		if s.b != nil {
			m.streams = append(m.streams, s)
		}
	}
	return m, nil
}

// Next emits up to types.DefaultBatchSize rows in global rid order.
func (m *ridMerge) Next() (*types.Batch, error) {
	if len(m.streams) == 0 {
		return nil, io.EOF
	}
	bb := types.NewBatchBuilder(m.out, types.DefaultBatchSize)
	ncols := len(m.out.Fields)
	for bb.Len() < types.DefaultBatchSize && len(m.streams) > 0 {
		best := 0
		for i := 1; i < len(m.streams); i++ {
			if m.streams[i].rids[m.streams[i].pos] < m.streams[best].rids[m.streams[best].pos] {
				best = i
			}
		}
		s := m.streams[best]
		for c := 0; c < ncols; c++ {
			bb.Column(c).Append(s.b.Cols[c].Value(s.pos))
		}
		s.pos++
		if s.pos >= s.b.NumRows() {
			if err := s.advance(); err != nil {
				return nil, err
			}
			if s.b == nil {
				m.streams = append(m.streams[:best], m.streams[best+1:]...)
			}
		}
	}
	if bb.Len() == 0 {
		return nil, io.EOF
	}
	return bb.Build(), nil
}
