package exec

import (
	"context"
	"fmt"
	"io"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// aggInput is one batch with its group-key and aggregate-argument columns
// already evaluated.
type aggInput struct {
	n       int
	keyCols []*types.Column
	argCols []*types.Column
}

// aggOp is a hash aggregate over group keys with collision-checked buckets.
//
// Parallelism note: with Parallelism > 1 and UDF-free expressions, the
// expensive per-batch work (group-key and argument evaluation) runs on
// exchange workers, but accumulation stays serial over batches in input
// order. Accumulating row-by-row in stream order keeps float sums
// bit-identical to serial execution at any worker count — merging per-worker
// partial sums would reassociate float additions.
type aggOp struct {
	child    operator
	qc       *QueryContext
	engine   *Engine
	node     *plan.Aggregate
	groupBE  *batchEval // evaluates GROUP BY expressions (may contain UDFs)
	argBE    *batchEval // evaluates aggregate argument expressions
	argExprs []plan.Expr
	aggs     []*plan.AggFunc
	parallel int // exchange workers for input evaluation (<=1 = serial)
	done     bool
}

func (e *Engine) newAggOp(qc *QueryContext, node *plan.Aggregate, child operator) (operator, error) {
	aggs := make([]*plan.AggFunc, len(node.Aggs))
	argExprs := make([]plan.Expr, 0, len(node.Aggs))
	for i, a := range node.Aggs {
		af, ok := a.(*plan.AggFunc)
		if !ok {
			return nil, fmt.Errorf("exec: aggregate slot %d is %T, expected AggFunc", i, a)
		}
		aggs[i] = af
		if af.Arg != nil {
			argExprs = append(argExprs, af.Arg)
		} else {
			argExprs = append(argExprs, plan.Lit(types.Int64(1))) // COUNT(*)
		}
	}
	in := node.Child.Schema()
	groupBE, err := e.newBatchEval(qc, node.GroupBy, in, nil)
	if err != nil {
		return nil, err
	}
	argBE, err := e.newBatchEval(qc, argExprs, in, nil)
	if err != nil {
		return nil, err
	}
	op := &aggOp{
		child: child, qc: qc, engine: e, node: node,
		groupBE: groupBE, argBE: argBE, argExprs: argExprs, aggs: aggs,
	}
	if w := e.workers(); w > 1 && !exprsHaveUDF(node.GroupBy) && !exprsHaveUDF(argExprs) {
		op.parallel = w
	}
	if !e.DisableVecExec {
		// Vectorized path; the row-at-a-time aggOp stays as the reference
		// implementation the equivalence harness compares against.
		return newVecAggOp(op), nil
	}
	return op, nil
}

// evalInput turns one child batch into evaluated key/argument columns.
func evalAggInput(b *types.Batch, groupBE, argBE *batchEval) (*aggInput, error) {
	keyCols, err := groupBE.run(b)
	if err != nil {
		return nil, err
	}
	argCols, err := argBE.run(b)
	if err != nil {
		return nil, err
	}
	return &aggInput{n: b.NumRows(), keyCols: keyCols, argCols: argCols}, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max types.Value
	seen     map[uint64][]types.Value // DISTINCT tracking
	nonNull  bool
}

type groupEntry struct {
	key    []types.Value
	states []aggState
}

func (o *aggOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true

	pull, cleanup, err := o.inputStream()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	groups := map[uint64][]*groupEntry{}
	var order []*groupEntry
	for {
		in, err := pull()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < in.n; i++ {
			key := make([]types.Value, len(in.keyCols))
			for k, col := range in.keyCols {
				key[k] = col.Value(i)
			}
			h := hashRow(key)
			var entry *groupEntry
			for _, g := range groups[h] {
				if rowsEqual(g.key, key) {
					entry = g
					break
				}
			}
			if entry == nil {
				entry = &groupEntry{key: key, states: make([]aggState, len(o.aggs))}
				groups[h] = append(groups[h], entry)
				order = append(order, entry)
			}
			for ai, af := range o.aggs {
				v := in.argCols[ai].Value(i)
				o.accumulate(&entry.states[ai], af, v)
			}
		}
	}

	// Global aggregation (no GROUP BY) always yields one row, even over
	// empty input (COUNT(*) = 0); grouped aggregation yields no rows.
	if len(order) == 0 && len(o.node.GroupBy) == 0 {
		entry := &groupEntry{key: nil, states: make([]aggState, len(o.aggs))}
		order = append(order, entry)
	}

	schema := o.node.Schema()
	bb := types.NewBatchBuilder(schema, len(order))
	for _, g := range order {
		row := make([]types.Value, 0, schema.Len())
		row = append(row, g.key...)
		for ai, af := range o.aggs {
			row = append(row, o.finalize(&g.states[ai], af))
		}
		bb.AppendRow(row)
	}
	return bb.Build(), nil
}

// inputStream returns an ordered stream of evaluated inputs: an exchange
// over the child when parallel, a direct pull otherwise.
func (o *aggOp) inputStream() (pull func() (*aggInput, error), cleanup func(), err error) {
	if o.parallel <= 1 {
		return func() (*aggInput, error) {
			b, err := o.child.Next()
			if err != nil {
				return nil, err
			}
			return evalAggInput(b, o.groupBE, o.argBE)
		}, func() {}, nil
	}
	in := o.node.Child.Schema()
	ex, err := newExchange(o.qc.GoContext(), o.parallel, batchSource(o.child),
		func() (func(context.Context, *types.Batch) (*aggInput, error), error) {
			groupBE, argBE := o.groupBE, o.argBE
			if groupBE.progs == nil {
				var werr error
				if groupBE, werr = o.engine.newBatchEval(o.qc, o.node.GroupBy, in, nil); werr != nil {
					return nil, werr
				}
			}
			if argBE.progs == nil {
				var werr error
				if argBE, werr = o.engine.newBatchEval(o.qc, o.argExprs, in, nil); werr != nil {
					return nil, werr
				}
			}
			return func(_ context.Context, b *types.Batch) (*aggInput, error) {
				return evalAggInput(b, groupBE, argBE)
			}, nil
		}, nil)
	if err != nil {
		return nil, nil, err
	}
	return ex.Next, func() { ex.Close() }, nil
}

func (o *aggOp) Close() error { return o.child.Close() }

func (o *aggOp) accumulate(st *aggState, af *plan.AggFunc, v types.Value) {
	if af.Arg != nil && v.Null {
		return // SQL aggregates skip NULLs
	}
	if af.Distinct {
		if st.seen == nil {
			st.seen = map[uint64][]types.Value{}
		}
		h := v.Hash()
		for _, prev := range st.seen[h] {
			if prev.Equal(v) {
				return
			}
		}
		st.seen[h] = append(st.seen[h], v)
	}
	st.nonNull = true
	switch af.Name {
	case "count":
		st.count++
	case "sum", "avg":
		st.count++
		if v.Kind == types.KindInt64 {
			st.sumI += v.I
		}
		st.sumF += v.AsFloat64()
	case "min":
		if st.count == 0 {
			st.min = v
		} else if cmp, ok := v.Compare(st.min); ok && cmp < 0 {
			st.min = v
		}
		st.count++
	case "max":
		if st.count == 0 {
			st.max = v
		} else if cmp, ok := v.Compare(st.max); ok && cmp > 0 {
			st.max = v
		}
		st.count++
	}
}

func (o *aggOp) finalize(st *aggState, af *plan.AggFunc) types.Value {
	switch af.Name {
	case "count":
		return types.Int64(st.count)
	case "sum":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		if af.ResultKind == types.KindInt64 {
			return types.Int64(st.sumI)
		}
		return types.Float64(st.sumF)
	case "avg":
		if st.count == 0 {
			return types.Null(types.KindFloat64)
		}
		return types.Float64(st.sumF / float64(st.count))
	case "min":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		return st.min
	case "max":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		return st.max
	}
	return types.Null(af.ResultKind)
}
