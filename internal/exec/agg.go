package exec

import (
	"fmt"
	"io"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func decodeDataFile(data []byte) (*types.Batch, error) {
	return arrowipc.DecodeBatch(data)
}

// aggOp is a hash aggregate over group keys with collision-checked buckets.
type aggOp struct {
	child    operator
	qc       *QueryContext
	node     *plan.Aggregate
	groupRun *exprRunner // evaluates GROUP BY expressions (may contain UDFs)
	argRun   *exprRunner // evaluates aggregate argument expressions
	aggs     []*plan.AggFunc
	done     bool
}

func (e *Engine) newAggOp(qc *QueryContext, node *plan.Aggregate, child operator) (operator, error) {
	aggs := make([]*plan.AggFunc, len(node.Aggs))
	argExprs := make([]plan.Expr, 0, len(node.Aggs))
	for i, a := range node.Aggs {
		af, ok := a.(*plan.AggFunc)
		if !ok {
			return nil, fmt.Errorf("exec: aggregate slot %d is %T, expected AggFunc", i, a)
		}
		aggs[i] = af
		if af.Arg != nil {
			argExprs = append(argExprs, af.Arg)
		} else {
			argExprs = append(argExprs, plan.Lit(types.Int64(1))) // COUNT(*)
		}
	}
	groupRun, err := e.newExprRunner(qc, node.GroupBy)
	if err != nil {
		return nil, err
	}
	argRun, err := e.newExprRunner(qc, argExprs)
	if err != nil {
		return nil, err
	}
	return &aggOp{child: child, qc: qc, node: node, groupRun: groupRun, argRun: argRun, aggs: aggs}, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max types.Value
	seen     map[uint64][]types.Value // DISTINCT tracking
	nonNull  bool
}

type groupEntry struct {
	key    []types.Value
	states []aggState
}

func (o *aggOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	groups := map[uint64][]*groupEntry{}
	var order []*groupEntry

	for {
		b, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		keyCols, err := o.groupRun.run(b)
		if err != nil {
			return nil, err
		}
		argCols, err := o.argRun.run(b)
		if err != nil {
			return nil, err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			key := make([]types.Value, len(keyCols))
			for k, col := range keyCols {
				key[k] = col.Value(i)
			}
			h := hashRow(key)
			var entry *groupEntry
			for _, g := range groups[h] {
				if rowsEqual(g.key, key) {
					entry = g
					break
				}
			}
			if entry == nil {
				entry = &groupEntry{key: key, states: make([]aggState, len(o.aggs))}
				groups[h] = append(groups[h], entry)
				order = append(order, entry)
			}
			for ai, af := range o.aggs {
				v := argCols[ai].Value(i)
				o.accumulate(&entry.states[ai], af, v)
			}
		}
	}

	// Global aggregation (no GROUP BY) always yields one row, even over
	// empty input (COUNT(*) = 0); grouped aggregation yields no rows.
	if len(order) == 0 && len(o.node.GroupBy) == 0 {
		entry := &groupEntry{key: nil, states: make([]aggState, len(o.aggs))}
		order = append(order, entry)
	}

	schema := o.node.Schema()
	bb := types.NewBatchBuilder(schema, len(order))
	for _, g := range order {
		row := make([]types.Value, 0, schema.Len())
		row = append(row, g.key...)
		for ai, af := range o.aggs {
			row = append(row, o.finalize(&g.states[ai], af))
		}
		bb.AppendRow(row)
	}
	return bb.Build(), nil
}

func (o *aggOp) accumulate(st *aggState, af *plan.AggFunc, v types.Value) {
	if af.Arg != nil && v.Null {
		return // SQL aggregates skip NULLs
	}
	if af.Distinct {
		if st.seen == nil {
			st.seen = map[uint64][]types.Value{}
		}
		h := v.Hash()
		for _, prev := range st.seen[h] {
			if prev.Equal(v) {
				return
			}
		}
		st.seen[h] = append(st.seen[h], v)
	}
	st.nonNull = true
	switch af.Name {
	case "count":
		st.count++
	case "sum", "avg":
		st.count++
		if v.Kind == types.KindInt64 {
			st.sumI += v.I
		}
		st.sumF += v.AsFloat64()
	case "min":
		if st.count == 0 {
			st.min = v
		} else if cmp, ok := v.Compare(st.min); ok && cmp < 0 {
			st.min = v
		}
		st.count++
	case "max":
		if st.count == 0 {
			st.max = v
		} else if cmp, ok := v.Compare(st.max); ok && cmp > 0 {
			st.max = v
		}
		st.count++
	}
}

func (o *aggOp) finalize(st *aggState, af *plan.AggFunc) types.Value {
	switch af.Name {
	case "count":
		return types.Int64(st.count)
	case "sum":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		if af.ResultKind == types.KindInt64 {
			return types.Int64(st.sumI)
		}
		return types.Float64(st.sumF)
	case "avg":
		if st.count == 0 {
			return types.Null(types.KindFloat64)
		}
		return types.Float64(st.sumF / float64(st.count))
	case "min":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		return st.min
	case "max":
		if !st.nonNull {
			return types.Null(af.ResultKind)
		}
		return st.max
	}
	return types.Null(af.ResultKind)
}
