package exec

import (
	"testing"

	"lakeguard/internal/delta"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func pruneScan(filters ...plan.Expr) *plan.Scan {
	return &plan.Scan{
		Table: "t",
		TableSchema: types.NewSchema(
			types.Field{Name: "n", Kind: types.KindInt64, Nullable: true},
			types.Field{Name: "s", Kind: types.KindString},
		),
		PushedFilters: filters,
	}
}

func nRef() *plan.BoundRef { return &plan.BoundRef{Index: 0, Name: "n", Kind: types.KindInt64} }

func statsFile(min, max int64, nulls, rows int64) delta.AddFile {
	b := types.NewBuilder(types.KindInt64, 2)
	b.Append(types.Int64(min))
	b.Append(types.Int64(max))
	batch := types.MustBatch(types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64}), []*types.Column{b.Build()})
	fs := delta.ComputeStats(batch)
	fs.NumRecords = rows
	cs := fs.Columns["n"]
	cs.NullCount = nulls
	fs.Columns["n"] = cs
	return delta.AddFile{Path: "f", Stats: fs}
}

func TestExprMayMatchIntervals(t *testing.T) {
	lit := func(v int64) *plan.Literal { return plan.Lit(types.Int64(v)) }
	file := statsFile(10, 20, 0, 2)
	cases := []struct {
		name string
		e    plan.Expr
		want bool
	}{
		{"eq inside", plan.NewBinary(plan.OpEq, nRef(), lit(15)), true},
		{"eq below", plan.NewBinary(plan.OpEq, nRef(), lit(5)), false},
		{"eq above", plan.NewBinary(plan.OpEq, nRef(), lit(25)), false},
		{"lt at min", plan.NewBinary(plan.OpLt, nRef(), lit(10)), false},
		{"lte at min", plan.NewBinary(plan.OpLte, nRef(), lit(10)), true},
		{"gt at max", plan.NewBinary(plan.OpGt, nRef(), lit(20)), false},
		{"gte at max", plan.NewBinary(plan.OpGte, nRef(), lit(20)), true},
		{"flipped lit<col", plan.NewBinary(plan.OpLt, lit(25), nRef()), false},
		{"flipped lit<=col", plan.NewBinary(plan.OpLte, lit(20), nRef()), true},
		{"neq some differ", plan.NewBinary(plan.OpNeq, nRef(), lit(15)), true},
		{"and both", plan.And(plan.NewBinary(plan.OpGte, nRef(), lit(12)), plan.NewBinary(plan.OpLte, nRef(), lit(18))), true},
		{"and contradictory", plan.And(plan.NewBinary(plan.OpLt, nRef(), lit(10)), plan.NewBinary(plan.OpGte, nRef(), lit(12))), false},
		{"or one side", plan.NewBinary(plan.OpOr, plan.NewBinary(plan.OpLt, nRef(), lit(5)), plan.NewBinary(plan.OpGt, nRef(), lit(15))), true},
		{"null literal prunes", plan.NewBinary(plan.OpEq, nRef(), plan.Lit(types.Null(types.KindInt64))), false},
		{"in hit", &plan.InList{Child: nRef(), List: []plan.Expr{plan.Lit(types.Int64(3)), plan.Lit(types.Int64(12))}}, true},
		{"in miss", &plan.InList{Child: nRef(), List: []plan.Expr{plan.Lit(types.Int64(3)), plan.Lit(types.Int64(30))}}, false},
		{"not in conservative", &plan.InList{Child: nRef(), List: []plan.Expr{plan.Lit(types.Int64(15))}, Negated: true}, true},
		{"float literal widens", plan.NewBinary(plan.OpGt, nRef(), plan.Lit(types.Float64(19.5))), true},
		{"float literal widens prune", plan.NewBinary(plan.OpGt, nRef(), plan.Lit(types.Float64(20.5))), false},
		{"incomparable kinds keep", plan.NewBinary(plan.OpEq, nRef(), plan.Lit(types.String("x"))), true},
		{"unknown shape keeps", plan.NewBinary(plan.OpEq, nRef(), nRef()), true},
	}
	for _, tc := range cases {
		scan := pruneScan(tc.e)
		if got := exprMayMatch(tc.e, scan, file.Stats); got != tc.want {
			t.Errorf("%s: mayMatch=%v want %v", tc.name, got, tc.want)
		}
	}
}

func TestExprMayMatchNullsAndLegacy(t *testing.T) {
	lit := func(v int64) *plan.Literal { return plan.Lit(types.Int64(v)) }
	eq := plan.NewBinary(plan.OpEq, nRef(), lit(15))
	scan := pruneScan(eq)

	// Legacy file without stats: always kept.
	if got := pruneFiles(scan, []delta.AddFile{{Path: "legacy"}}); len(got) != 1 {
		t.Fatal("stat-less legacy file must never be pruned")
	}
	// All-NULL column: every comparison is NULL, file prunable...
	allNull := statsFile(0, 0, 2, 2)
	allNull.Stats.Columns["n"] = delta.ColStats{NullCount: 2}
	if exprMayMatch(eq, scan, allNull.Stats) {
		t.Fatal("all-NULL column must prune comparisons")
	}
	// ...but IS NULL must keep it, and IS NOT NULL must prune it.
	if !exprMayMatch(&plan.IsNull{Child: nRef()}, scan, allNull.Stats) {
		t.Fatal("IS NULL must keep an all-NULL file")
	}
	if exprMayMatch(&plan.IsNull{Child: nRef(), Negated: true}, scan, allNull.Stats) {
		t.Fatal("IS NOT NULL must prune an all-NULL file")
	}
	// No nulls: IS NULL prunes.
	noNull := statsFile(10, 20, 0, 2)
	if exprMayMatch(&plan.IsNull{Child: nRef()}, scan, noNull.Stats) {
		t.Fatal("IS NULL must prune a file with zero nulls")
	}
	// HasNaN disables range pruning entirely (NaN == anything is true here).
	nan := statsFile(10, 20, 0, 2)
	cs := nan.Stats.Columns["n"]
	cs.HasNaN = true
	nan.Stats.Columns["n"] = cs
	if !exprMayMatch(plan.NewBinary(plan.OpEq, nRef(), lit(999)), scan, nan.Stats) {
		t.Fatal("HasNaN files must never be range-pruned")
	}
}
