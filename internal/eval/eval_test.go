package eval

import (
	"errors"
	"testing"
	"testing/quick"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func lit(v types.Value) plan.Expr { return plan.Lit(v) }

func evalConst(t *testing.T, e plan.Expr) types.Value {
	t.Helper()
	v, err := Eval(e, nil, &Context{User: "alice"})
	if err != nil {
		t.Fatalf("Eval(%s): %v", e.String(), err)
	}
	return v
}

func bin(op plan.BinOp, l, r plan.Expr, rk types.Kind) plan.Expr {
	return &plan.Binary{Op: op, L: l, R: r, ResultKind: rk}
}

func TestArithmetic(t *testing.T) {
	if v := evalConst(t, bin(plan.OpAdd, lit(types.Int64(2)), lit(types.Int64(3)), types.KindInt64)); v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := evalConst(t, bin(plan.OpMul, lit(types.Float64(2.5)), lit(types.Int64(4)), types.KindFloat64)); v.F != 10 {
		t.Errorf("2.5*4 = %v", v)
	}
	// Division by zero yields NULL (SQL-safe).
	if v := evalConst(t, bin(plan.OpDiv, lit(types.Float64(1)), lit(types.Float64(0)), types.KindFloat64)); !v.Null {
		t.Errorf("1/0 = %v", v)
	}
	if v := evalConst(t, bin(plan.OpMod, lit(types.Int64(7)), lit(types.Int64(3)), types.KindInt64)); v.I != 1 {
		t.Errorf("7%%3 = %v", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := lit(types.Null(types.KindBool))
	tru := lit(types.Bool(true))
	fls := lit(types.Bool(false))
	cases := []struct {
		e    plan.Expr
		null bool
		want bool
	}{
		{bin(plan.OpAnd, null, fls, types.KindBool), false, false}, // NULL AND FALSE = FALSE
		{bin(plan.OpAnd, null, tru, types.KindBool), true, false},  // NULL AND TRUE = NULL
		{bin(plan.OpOr, null, tru, types.KindBool), false, true},   // NULL OR TRUE = TRUE
		{bin(plan.OpOr, null, fls, types.KindBool), true, false},   // NULL OR FALSE = NULL
		{bin(plan.OpEq, null, null, types.KindBool), true, false},  // NULL = NULL is NULL
	}
	for i, c := range cases {
		v := evalConst(t, c.e)
		if v.Null != c.null || (!v.Null && v.AsBool() != c.want) {
			t.Errorf("case %d: got %v", i, v)
		}
	}
	// NOT NULL = NULL
	v := evalConst(t, &plan.Unary{Op: plan.OpNot, Child: null})
	if !v.Null {
		t.Errorf("NOT NULL = %v", v)
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	// FALSE AND <error> must not evaluate the right side.
	bad := &plan.ScalarFunc{Name: "nosuch", ResultKind: types.KindBool}
	v := evalConst(t, bin(plan.OpAnd, lit(types.Bool(false)), bad, types.KindBool))
	if v.IsTrue() {
		t.Error("short circuit failed")
	}
}

func TestComparisonsCrossNumeric(t *testing.T) {
	v := evalConst(t, bin(plan.OpLt, lit(types.Int64(2)), lit(types.Float64(2.5)), types.KindBool))
	if !v.IsTrue() {
		t.Error("2 < 2.5 failed")
	}
}

func TestIsNullAndInList(t *testing.T) {
	v := evalConst(t, &plan.IsNull{Child: lit(types.Null(types.KindInt64))})
	if !v.IsTrue() {
		t.Error("IS NULL")
	}
	v2 := evalConst(t, &plan.IsNull{Child: lit(types.Int64(1)), Negated: true})
	if !v2.IsTrue() {
		t.Error("IS NOT NULL")
	}
	in := &plan.InList{Child: lit(types.Int64(2)), List: []plan.Expr{lit(types.Int64(1)), lit(types.Int64(2))}}
	if !evalConst(t, in).IsTrue() {
		t.Error("IN hit")
	}
	miss := &plan.InList{Child: lit(types.Int64(9)), List: []plan.Expr{lit(types.Int64(1))}}
	if evalConst(t, miss).IsTrue() {
		t.Error("IN miss")
	}
	// 9 IN (1, NULL) is NULL, so NOT IN is also NULL (not true).
	withNull := &plan.InList{Child: lit(types.Int64(9)), List: []plan.Expr{lit(types.Int64(1)), lit(types.Null(types.KindInt64))}, Negated: true}
	if v := evalConst(t, withNull); !v.Null {
		t.Errorf("NOT IN with NULL = %v", v)
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "hell", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%pi", true},
	}
	for _, c := range cases {
		e := &plan.Like{Child: lit(types.String(c.s)), Pattern: lit(types.String(c.pat))}
		if got := evalConst(t, e).IsTrue(); got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestLikePropertyPrefix(t *testing.T) {
	f := func(s string) bool {
		e := &plan.Like{Child: lit(types.String(s)), Pattern: lit(types.String("%"))}
		v, err := Eval(e, nil, nil)
		return err == nil && v.IsTrue()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaseEvaluation(t *testing.T) {
	c := &plan.Case{
		Whens: []plan.WhenClause{
			{Cond: lit(types.Bool(false)), Then: lit(types.String("no"))},
			{Cond: lit(types.Bool(true)), Then: lit(types.String("yes"))},
		},
		Else:       lit(types.String("else")),
		ResultKind: types.KindString,
	}
	if v := evalConst(t, c); v.S != "yes" {
		t.Errorf("case = %v", v)
	}
	noMatch := &plan.Case{
		Whens:      []plan.WhenClause{{Cond: lit(types.Bool(false)), Then: lit(types.String("no"))}},
		ResultKind: types.KindString,
	}
	if v := evalConst(t, noMatch); !v.Null {
		t.Errorf("case without else = %v", v)
	}
}

func TestSessionFunctions(t *testing.T) {
	ctx := &Context{User: "alice", IsGroupMember: func(g string) bool { return g == "ds" }}
	v, err := Eval(&plan.CurrentUser{}, nil, ctx)
	if err != nil || v.S != "alice" {
		t.Errorf("CURRENT_USER = %v, %v", v, err)
	}
	v2, _ := Eval(&plan.GroupMember{Group: "ds"}, nil, ctx)
	if !v2.IsTrue() {
		t.Error("group member")
	}
	v3, _ := Eval(&plan.GroupMember{Group: "hr"}, nil, ctx)
	if v3.IsTrue() {
		t.Error("non-member")
	}
	if _, err := Eval(&plan.CurrentUser{}, nil, nil); err == nil {
		t.Error("CURRENT_USER without context should fail")
	}
}

func TestScalarFunctions(t *testing.T) {
	sf := func(name string, rk types.Kind, args ...plan.Expr) plan.Expr {
		return &plan.ScalarFunc{Name: name, Args: args, ResultKind: rk}
	}
	cases := []struct {
		e    plan.Expr
		want string
	}{
		{sf("upper", types.KindString, lit(types.String("hi"))), "HI"},
		{sf("lower", types.KindString, lit(types.String("HI"))), "hi"},
		{sf("length", types.KindInt64, lit(types.String("abc"))), "3"},
		{sf("trim", types.KindString, lit(types.String("  x "))), "x"},
		{sf("concat", types.KindString, lit(types.String("a")), lit(types.String("b")), lit(types.String("c"))), "abc"},
		{sf("substr", types.KindString, lit(types.String("hello")), lit(types.Int64(2)), lit(types.Int64(3))), "ell"},
		{sf("abs", types.KindInt64, lit(types.Int64(-4))), "4"},
		{sf("round", types.KindFloat64, lit(types.Float64(2.567)), lit(types.Int64(1))), "2.6"},
		{sf("floor", types.KindFloat64, lit(types.Float64(2.9))), "2"},
		{sf("ceil", types.KindFloat64, lit(types.Float64(2.1))), "3"},
		{sf("coalesce", types.KindInt64, lit(types.Null(types.KindInt64)), lit(types.Int64(7))), "7"},
		{sf("nullif", types.KindInt64, lit(types.Int64(3)), lit(types.Int64(4))), "3"},
		{sf("if", types.KindString, lit(types.Bool(true)), lit(types.String("y")), lit(types.String("n"))), "y"},
		{sf("greatest", types.KindInt64, lit(types.Int64(3)), lit(types.Int64(9)), lit(types.Int64(5))), "9"},
		{sf("least", types.KindInt64, lit(types.Int64(3)), lit(types.Int64(9))), "3"},
	}
	for _, c := range cases {
		if got := evalConst(t, c.e).String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.e.String(), got, c.want)
		}
	}
	// nullif equal -> NULL
	if v := evalConst(t, sf("nullif", types.KindInt64, lit(types.Int64(3)), lit(types.Int64(3)))); !v.Null {
		t.Error("nullif equal should be NULL")
	}
	// year/month/day
	d, _ := types.DateFromString("2024-12-01")
	if v := evalConst(t, sf("year", types.KindInt64, lit(d))); v.I != 2024 {
		t.Errorf("year = %v", v)
	}
	if v := evalConst(t, sf("month", types.KindInt64, lit(d))); v.I != 12 {
		t.Errorf("month = %v", v)
	}
	// NULL strictness.
	if v := evalConst(t, sf("upper", types.KindString, lit(types.Null(types.KindString)))); !v.Null {
		t.Error("upper(NULL) should be NULL")
	}
	// sha256 hex length.
	if v := evalConst(t, sf("sha256", types.KindString, lit(types.String("x")))); len(v.S) != 64 {
		t.Error("sha256 length")
	}
}

func TestRowReference(t *testing.T) {
	row := func(i int) types.Value { return types.Int64(int64(i * 100)) }
	ref := &plan.BoundRef{Index: 2, Name: "x", Kind: types.KindInt64}
	v, err := Eval(ref, row, nil)
	if err != nil || v.I != 200 {
		t.Errorf("ref = %v, %v", v, err)
	}
	if _, err := Eval(ref, nil, nil); err == nil {
		t.Error("ref without row should fail")
	}
}

func TestUDFRejected(t *testing.T) {
	u := &plan.UDFCall{Name: "f", ResultKind: types.KindInt64}
	if _, err := Eval(u, nil, nil); !errors.Is(err, ErrUDFInRowEval) {
		t.Errorf("err = %v", err)
	}
}

func TestIsConstant(t *testing.T) {
	if !IsConstant(bin(plan.OpAdd, lit(types.Int64(1)), lit(types.Int64(2)), types.KindInt64)) {
		t.Error("literal arith should be constant")
	}
	if IsConstant(&plan.BoundRef{Index: 0, Kind: types.KindInt64}) {
		t.Error("ref is not constant")
	}
	if IsConstant(&plan.CurrentUser{}) {
		t.Error("CURRENT_USER is not constant")
	}
	if IsConstant(&plan.UDFCall{}) {
		t.Error("UDF is not constant")
	}
}

func TestCastEval(t *testing.T) {
	v := evalConst(t, &plan.Cast{Child: lit(types.String("2024-12-01")), To: types.KindDate})
	if v.Kind != types.KindDate || v.String() != "2024-12-01" {
		t.Errorf("cast = %v", v)
	}
	if _, err := Eval(&plan.Cast{Child: lit(types.String("zzz")), To: types.KindInt64}, nil, nil); err == nil {
		t.Error("bad cast should error")
	}
}

func TestEvalPredicateNullIsFalse(t *testing.T) {
	ok, err := EvalPredicate(lit(types.Null(types.KindBool)), nil, nil)
	if err != nil || ok {
		t.Errorf("NULL predicate = %v, %v", ok, err)
	}
}
