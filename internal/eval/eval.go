// Package eval implements row-at-a-time evaluation of resolved plan
// expressions with SQL three-valued-logic semantics. It is shared by the
// physical operators (filters, projections, join conditions) and by the
// optimizer's constant folding. UDF calls are never evaluated here — they
// cross the sandbox boundary in batches — so encountering one is an error;
// the executor extracts them beforehand.
package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// RowFn supplies the value of input column i for the current row.
type RowFn func(i int) types.Value

// Context carries session state dynamic expressions need.
type Context struct {
	// User is the session user (CURRENT_USER()).
	User string
	// IsGroupMember answers IS_ACCOUNT_GROUP_MEMBER checks; nil means no
	// group memberships.
	IsGroupMember func(group string) bool
}

// ErrUDFInRowEval is returned when a UDF call reaches the row evaluator.
var ErrUDFInRowEval = errors.New("eval: UDF calls must be executed through the sandbox, not row evaluation")

// Eval computes an expression for one row.
func Eval(e plan.Expr, row RowFn, ctx *Context) (types.Value, error) {
	switch t := e.(type) {
	case *plan.Literal:
		return t.Value, nil

	case *plan.BoundRef:
		if row == nil {
			return types.Value{}, fmt.Errorf("eval: column reference %s without a row", t.String())
		}
		return row(t.Index), nil

	case *plan.Alias:
		return Eval(t.Child, row, ctx)

	case *plan.CurrentUser:
		if ctx == nil {
			return types.Value{}, errors.New("eval: CURRENT_USER without session context")
		}
		return types.String(ctx.User), nil

	case *plan.GroupMember:
		if ctx == nil {
			return types.Value{}, errors.New("eval: IS_ACCOUNT_GROUP_MEMBER without session context")
		}
		if ctx.IsGroupMember == nil {
			return types.Bool(false), nil
		}
		return types.Bool(ctx.IsGroupMember(t.Group)), nil

	case *plan.Binary:
		return evalBinary(t, row, ctx)

	case *plan.Unary:
		v, err := Eval(t.Child, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		if t.Op == plan.OpNot {
			if v.Null {
				return types.Null(types.KindBool), nil
			}
			return types.Bool(!v.AsBool()), nil
		}
		if v.Null {
			return types.Null(t.ResultKind), nil
		}
		switch v.Kind {
		case types.KindInt64:
			return types.Int64(-v.I), nil
		case types.KindFloat64:
			return types.Float64(-v.F), nil
		}
		return types.Value{}, fmt.Errorf("eval: cannot negate %s", v.Kind)

	case *plan.IsNull:
		v, err := Eval(t.Child, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		return types.Bool(v.Null != t.Negated), nil

	case *plan.InList:
		return evalInList(t, row, ctx)

	case *plan.Like:
		v, err := Eval(t.Child, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		pat, err := Eval(t.Pattern, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null || pat.Null {
			return types.Null(types.KindBool), nil
		}
		m := likeMatch(v.S, pat.S)
		return types.Bool(m != t.Negated), nil

	case *plan.Case:
		for _, w := range t.Whens {
			c, err := Eval(w.Cond, row, ctx)
			if err != nil {
				return types.Value{}, err
			}
			if c.IsTrue() {
				v, err := Eval(w.Then, row, ctx)
				if err != nil {
					return types.Value{}, err
				}
				return v, nil
			}
		}
		if t.Else != nil {
			return Eval(t.Else, row, ctx)
		}
		return types.Null(t.ResultKind), nil

	case *plan.Cast:
		v, err := Eval(t.Child, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		out, err := v.Cast(t.To)
		if err != nil {
			return types.Value{}, fmt.Errorf("eval: %w", err)
		}
		return out, nil

	case *plan.ScalarFunc:
		return evalScalarFunc(t, row, ctx)

	case *plan.UDFCall:
		return types.Value{}, ErrUDFInRowEval

	case *plan.ColumnRef:
		return types.Value{}, fmt.Errorf("eval: unresolved column %s reached execution", t.String())
	}
	return types.Value{}, fmt.Errorf("eval: unsupported expression %T", e)
}

// EvalPredicate evaluates a boolean expression; NULL counts as false.
func EvalPredicate(e plan.Expr, row RowFn, ctx *Context) (bool, error) {
	v, err := Eval(e, row, ctx)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

func evalBinary(t *plan.Binary, row RowFn, ctx *Context) (types.Value, error) {
	// AND/OR use Kleene logic with short circuit.
	if t.Op == plan.OpAnd || t.Op == plan.OpOr {
		l, err := Eval(t.L, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		if t.Op == plan.OpAnd && !l.Null && !l.AsBool() {
			return types.Bool(false), nil
		}
		if t.Op == plan.OpOr && !l.Null && l.AsBool() {
			return types.Bool(true), nil
		}
		r, err := Eval(t.R, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		switch {
		case t.Op == plan.OpAnd:
			if !r.Null && !r.AsBool() {
				return types.Bool(false), nil
			}
			if l.Null || r.Null {
				return types.Null(types.KindBool), nil
			}
			return types.Bool(true), nil
		default: // OR
			if !r.Null && r.AsBool() {
				return types.Bool(true), nil
			}
			if l.Null || r.Null {
				return types.Null(types.KindBool), nil
			}
			return types.Bool(false), nil
		}
	}

	l, err := Eval(t.L, row, ctx)
	if err != nil {
		return types.Value{}, err
	}
	r, err := Eval(t.R, row, ctx)
	if err != nil {
		return types.Value{}, err
	}
	if l.Null || r.Null {
		kind := t.ResultKind
		if t.Op.IsComparison() {
			kind = types.KindBool
		}
		return types.Null(kind), nil
	}

	switch {
	case t.Op == plan.OpConcat:
		return types.String(l.AsString() + r.AsString()), nil
	case t.Op.IsArithmetic():
		return evalArith(t.Op, l, r, t.ResultKind)
	case t.Op.IsComparison():
		cmp, ok := l.Compare(r)
		if !ok {
			return types.Value{}, fmt.Errorf("eval: cannot compare %s and %s", l.Kind, r.Kind)
		}
		var b bool
		switch t.Op {
		case plan.OpEq:
			b = cmp == 0
		case plan.OpNeq:
			b = cmp != 0
		case plan.OpLt:
			b = cmp < 0
		case plan.OpLte:
			b = cmp <= 0
		case plan.OpGt:
			b = cmp > 0
		case plan.OpGte:
			b = cmp >= 0
		}
		return types.Bool(b), nil
	}
	return types.Value{}, fmt.Errorf("eval: unsupported operator %s", t.Op)
}

func evalArith(op plan.BinOp, l, r types.Value, resultKind types.Kind) (types.Value, error) {
	if resultKind == types.KindInt64 && l.Kind == types.KindInt64 && r.Kind == types.KindInt64 {
		switch op {
		case plan.OpAdd:
			return types.Int64(l.I + r.I), nil
		case plan.OpSub:
			return types.Int64(l.I - r.I), nil
		case plan.OpMul:
			return types.Int64(l.I * r.I), nil
		case plan.OpMod:
			if r.I == 0 {
				return types.Null(types.KindInt64), nil
			}
			return types.Int64(l.I % r.I), nil
		case plan.OpDiv:
			// analyzer always widens division; defensive fallback
			if r.I == 0 {
				return types.Null(types.KindInt64), nil
			}
			return types.Int64(l.I / r.I), nil
		}
	}
	lf, rf := l.AsFloat64(), r.AsFloat64()
	var f float64
	switch op {
	case plan.OpAdd:
		f = lf + rf
	case plan.OpSub:
		f = lf - rf
	case plan.OpMul:
		f = lf * rf
	case plan.OpDiv:
		if rf == 0 {
			return types.Null(types.KindFloat64), nil
		}
		f = lf / rf
	case plan.OpMod:
		if rf == 0 {
			return types.Null(types.KindFloat64), nil
		}
		f = math.Mod(lf, rf)
	}
	return types.Float64(f), nil
}

func evalInList(t *plan.InList, row RowFn, ctx *Context) (types.Value, error) {
	v, err := Eval(t.Child, row, ctx)
	if err != nil {
		return types.Value{}, err
	}
	if v.Null {
		return types.Null(types.KindBool), nil
	}
	sawNull := false
	for _, item := range t.List {
		iv, err := Eval(item, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		if iv.Null {
			sawNull = true
			continue
		}
		if cmp, ok := v.Compare(iv); ok && cmp == 0 {
			return types.Bool(!t.Negated), nil
		}
	}
	if sawNull {
		return types.Null(types.KindBool), nil
	}
	return types.Bool(t.Negated), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern segments, iterative two-pointer with
	// backtracking on %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func evalScalarFunc(t *plan.ScalarFunc, row RowFn, ctx *Context) (types.Value, error) {
	args := make([]types.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := Eval(a, row, ctx)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	name := strings.ToLower(t.Name)
	// coalesce/if/nullif handle NULL specially; all others are NULL-strict.
	switch name {
	case "coalesce":
		for _, a := range args {
			if !a.Null {
				return a, nil
			}
		}
		return types.Null(t.ResultKind), nil
	case "if":
		if args[0].IsTrue() {
			return args[1], nil
		}
		return args[2], nil
	case "nullif":
		if !args[0].Null && !args[1].Null {
			if cmp, ok := args[0].Compare(args[1]); ok && cmp == 0 {
				return types.Null(t.ResultKind), nil
			}
		}
		return args[0], nil
	}
	for _, a := range args {
		if a.Null {
			return types.Null(t.ResultKind), nil
		}
	}
	switch name {
	case "upper":
		return types.String(strings.ToUpper(args[0].AsString())), nil
	case "lower":
		return types.String(strings.ToLower(args[0].AsString())), nil
	case "length":
		return types.Int64(int64(len(args[0].AsString()))), nil
	case "trim":
		return types.String(strings.TrimSpace(args[0].AsString())), nil
	case "concat":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.AsString())
		}
		return types.String(b.String()), nil
	case "substr", "substring":
		s := args[0].AsString()
		start := int(args[1].AsInt64()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			end = start + int(args[2].AsInt64())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return types.String(s[start:end]), nil
	case "abs":
		if args[0].Kind == types.KindInt64 {
			if args[0].I < 0 {
				return types.Int64(-args[0].I), nil
			}
			return args[0], nil
		}
		return types.Float64(math.Abs(args[0].AsFloat64())), nil
	case "round":
		if len(args) == 2 {
			scale := math.Pow(10, float64(args[1].AsInt64()))
			return types.Float64(math.Round(args[0].AsFloat64()*scale) / scale), nil
		}
		return types.Float64(math.Round(args[0].AsFloat64())), nil
	case "floor":
		return types.Float64(math.Floor(args[0].AsFloat64())), nil
	case "ceil":
		return types.Float64(math.Ceil(args[0].AsFloat64())), nil
	case "sqrt":
		f := args[0].AsFloat64()
		if f < 0 {
			return types.Null(types.KindFloat64), nil
		}
		return types.Float64(math.Sqrt(f)), nil
	case "sha256":
		sum := sha256.Sum256([]byte(args[0].AsString()))
		return types.String(hex.EncodeToString(sum[:])), nil
	case "year", "month", "day":
		tm, err := toTime(args[0])
		if err != nil {
			return types.Value{}, err
		}
		switch name {
		case "year":
			return types.Int64(int64(tm.Year())), nil
		case "month":
			return types.Int64(int64(tm.Month())), nil
		default:
			return types.Int64(int64(tm.Day())), nil
		}
	case "greatest", "least":
		best := args[0]
		for _, a := range args[1:] {
			cmp, ok := a.Compare(best)
			if !ok {
				return types.Value{}, fmt.Errorf("eval: %s: incomparable arguments", name)
			}
			if (name == "greatest" && cmp > 0) || (name == "least" && cmp < 0) {
				best = a
			}
		}
		return best, nil
	}
	return types.Value{}, fmt.Errorf("eval: unknown scalar function %q", t.Name)
}

func toTime(v types.Value) (time.Time, error) {
	switch v.Kind {
	case types.KindDate:
		return time.Unix(v.I*86400, 0).UTC(), nil
	case types.KindTimestamp:
		return time.UnixMicro(v.I).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("eval: expected date/timestamp, got %s", v.Kind)
}

// IsConstant reports whether an expression has no row, session, or UDF
// dependence and can be folded at plan time.
func IsConstant(e plan.Expr) bool {
	constant := true
	plan.WalkExpr(e, func(x plan.Expr) bool {
		switch x.(type) {
		case *plan.BoundRef, *plan.ColumnRef, *plan.CurrentUser, *plan.GroupMember, *plan.UDFCall, *plan.AggFunc, *plan.Star:
			constant = false
			return false
		}
		return true
	})
	return constant
}
