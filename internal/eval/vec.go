// Vectorized expression evaluation: a columnar fast path that computes
// comparison, arithmetic, and boolean expressions over whole columns with
// optional selection vectors, instead of boxing one Value per row. Only a
// closed subset of the expression language compiles — anything with per-row
// error paths, session state, or user code (LIKE, CASE, CAST, IN, scalar
// functions, CURRENT_USER, UDF calls) is rejected so callers fall back to
// the row interpreter with identical semantics. Within the subset, kernels
// reproduce Eval exactly: Kleene AND/OR, NULL-strict comparisons, division
// and modulo by zero yielding NULL, and Compare's float ordering (NaN
// compares equal to everything).
package eval

import (
	"math"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// VecProg is a compiled columnar evaluator for one expression. Programs are
// immutable after compilation and safe for concurrent Run calls, so parallel
// scan workers share one program.
type VecProg struct {
	root vecNode
}

// Kind returns the result kind of the compiled expression.
func (p *VecProg) Kind() types.Kind { return p.root.kind() }

// Run evaluates the program over the batch columns. sel selects the input
// rows to evaluate (nil = all n rows); the result column is aligned to the
// selection, i.e. row j of the output corresponds to input row sel[j]. Run
// never fails: every kind combination that could error per row was rejected
// at compile time.
func (p *VecProg) Run(cols []*types.Column, n int, sel []int) *types.Column {
	m := n
	if sel != nil {
		m = len(sel)
	}
	return p.root.eval(cols, m, sel)
}

// CompileVec compiles an expression against the actual input column kinds.
// ok=false means the expression is outside the vectorizable subset (or its
// kind combination would need per-row semantics the kernels don't model);
// callers must then use the row interpreter.
func CompileVec(e plan.Expr, inKinds []types.Kind) (*VecProg, bool) {
	n, ok := compileNode(e, inKinds)
	if !ok {
		return nil, false
	}
	return &VecProg{root: n}, true
}

// vecNode evaluates to a column of m rows aligned to the selection.
type vecNode interface {
	kind() types.Kind
	eval(cols []*types.Column, m int, sel []int) *types.Column
}

// operand is one input of a kernel: either a sub-node producing a column or
// a constant folded at compile time.
type operand struct {
	node vecNode
	null bool
	i    int64
	f    float64
	s    string
}

// acc reads operand payloads: a slice for columns, a constant otherwise.
type acc[T int64 | float64 | string] struct {
	v []T
	c T
}

func (a acc[T]) at(i int) T {
	if a.v != nil {
		return a.v[i]
	}
	return a.c
}

// nullmask reads operand validity: a mask for columns, a constant otherwise.
type nullmask struct {
	m []bool
	c bool
}

func (n nullmask) at(i int) bool {
	if n.m != nil {
		return n.m[i]
	}
	return n.c
}

func (o *operand) intAcc(cols []*types.Column, m int, sel []int) (acc[int64], nullmask) {
	if o.node == nil {
		return acc[int64]{c: o.i}, nullmask{c: o.null}
	}
	col := o.node.eval(cols, m, sel)
	return acc[int64]{v: col.Int64s()}, nullmask{m: col.NullMask()}
}

func (o *operand) floatAcc(cols []*types.Column, m int, sel []int) (acc[float64], nullmask) {
	if o.node == nil {
		return acc[float64]{c: o.f}, nullmask{c: o.null}
	}
	col := o.node.eval(cols, m, sel)
	if col.Kind() == types.KindFloat64 {
		return acc[float64]{v: col.Float64s()}, nullmask{m: col.NullMask()}
	}
	// Widen an integer column once per batch, mirroring Value.AsFloat64.
	iv := col.Int64s()
	fv := make([]float64, len(iv))
	for i, x := range iv {
		fv[i] = float64(x)
	}
	return acc[float64]{v: fv}, nullmask{m: col.NullMask()}
}

func (o *operand) strAcc(cols []*types.Column, m int, sel []int) (acc[string], nullmask) {
	if o.node == nil {
		return acc[string]{c: o.s}, nullmask{c: o.null}
	}
	col := o.node.eval(cols, m, sel)
	return acc[string]{v: col.Strings()}, nullmask{m: col.NullMask()}
}

// payload classes for binary kernels
const (
	classInt uint8 = iota
	classFloat
	classString
)

func intPayload(k types.Kind) bool {
	switch k {
	case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
		return true
	}
	return false
}

func stringPayload(k types.Kind) bool {
	return k == types.KindString || k == types.KindBinary
}

// refNode reads an input column.
type refNode struct {
	idx int
	k   types.Kind
}

func (nd *refNode) kind() types.Kind { return nd.k }

func (nd *refNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	c := cols[nd.idx]
	if sel == nil {
		return c
	}
	return c.Gather(sel)
}

// cmpNode compares two operands, reproducing Value.Compare ordering.
type cmpNode struct {
	op    plan.BinOp
	class uint8
	l, r  operand
}

func (nd *cmpNode) kind() types.Kind { return types.KindBool }

func (nd *cmpNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	switch nd.class {
	case classInt:
		l, ln := nd.l.intAcc(cols, m, sel)
		r, rn := nd.r.intAcc(cols, m, sel)
		return cmpKernel(nd.op, l, ln, r, rn, m)
	case classFloat:
		l, ln := nd.l.floatAcc(cols, m, sel)
		r, rn := nd.r.floatAcc(cols, m, sel)
		return cmpKernel(nd.op, l, ln, r, rn, m)
	default:
		l, ln := nd.l.strAcc(cols, m, sel)
		r, rn := nd.r.strAcc(cols, m, sel)
		return cmpKernel(nd.op, l, ln, r, rn, m)
	}
}

// cmpKernel evaluates a NULL-strict comparison. It derives a three-way cmp
// first (like Value.Compare) so float NaN behaves identically to the row
// interpreter.
func cmpKernel[T int64 | float64 | string](op plan.BinOp, l acc[T], ln nullmask, r acc[T], rn nullmask, m int) *types.Column {
	out := make([]int64, m)
	var nulls []bool
	for i := 0; i < m; i++ {
		if ln.at(i) || rn.at(i) {
			if nulls == nil {
				nulls = make([]bool, m)
			}
			nulls[i] = true
			continue
		}
		a, b := l.at(i), r.at(i)
		c := 0
		if a < b {
			c = -1
		} else if a > b {
			c = 1
		}
		var t bool
		switch op {
		case plan.OpEq:
			t = c == 0
		case plan.OpNeq:
			t = c != 0
		case plan.OpLt:
			t = c < 0
		case plan.OpLte:
			t = c <= 0
		case plan.OpGt:
			t = c > 0
		case plan.OpGte:
			t = c >= 0
		}
		if t {
			out[i] = 1
		}
	}
	return types.NewInt64Column(types.KindBool, out, nulls)
}

// arithNode is numeric arithmetic; kernels mirror evalArith exactly,
// including the NULL result on division or modulo by zero.
type arithNode struct {
	op    plan.BinOp
	float bool
	l, r  operand
}

func (nd *arithNode) kind() types.Kind {
	if nd.float {
		return types.KindFloat64
	}
	return types.KindInt64
}

func (nd *arithNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	if nd.float {
		l, ln := nd.l.floatAcc(cols, m, sel)
		r, rn := nd.r.floatAcc(cols, m, sel)
		return arithFloatKernel(nd.op, l, ln, r, rn, m)
	}
	l, ln := nd.l.intAcc(cols, m, sel)
	r, rn := nd.r.intAcc(cols, m, sel)
	return arithIntKernel(nd.op, l, ln, r, rn, m)
}

func arithIntKernel(op plan.BinOp, l acc[int64], ln nullmask, r acc[int64], rn nullmask, m int) *types.Column {
	out := make([]int64, m)
	var nulls []bool
	for i := 0; i < m; i++ {
		if ln.at(i) || rn.at(i) {
			if nulls == nil {
				nulls = make([]bool, m)
			}
			nulls[i] = true
			continue
		}
		a, b := l.at(i), r.at(i)
		switch op {
		case plan.OpAdd:
			out[i] = a + b
		case plan.OpSub:
			out[i] = a - b
		case plan.OpMul:
			out[i] = a * b
		case plan.OpDiv, plan.OpMod:
			if b == 0 {
				if nulls == nil {
					nulls = make([]bool, m)
				}
				nulls[i] = true
				continue
			}
			if op == plan.OpDiv {
				out[i] = a / b
			} else {
				out[i] = a % b
			}
		}
	}
	return types.NewInt64Column(types.KindInt64, out, nulls)
}

func arithFloatKernel(op plan.BinOp, l acc[float64], ln nullmask, r acc[float64], rn nullmask, m int) *types.Column {
	out := make([]float64, m)
	var nulls []bool
	for i := 0; i < m; i++ {
		if ln.at(i) || rn.at(i) {
			if nulls == nil {
				nulls = make([]bool, m)
			}
			nulls[i] = true
			continue
		}
		a, b := l.at(i), r.at(i)
		switch op {
		case plan.OpAdd:
			out[i] = a + b
		case plan.OpSub:
			out[i] = a - b
		case plan.OpMul:
			out[i] = a * b
		case plan.OpDiv, plan.OpMod:
			if b == 0 {
				if nulls == nil {
					nulls = make([]bool, m)
				}
				nulls[i] = true
				continue
			}
			if op == plan.OpDiv {
				out[i] = a / b
			} else {
				out[i] = math.Mod(a, b)
			}
		}
	}
	return types.NewFloat64Column(out, nulls)
}

// andOrNode is Kleene AND/OR. Evaluating both sides eagerly (no short
// circuit) is safe because every compiled sub-expression is total: within
// the vectorizable subset no kernel can fail per row.
type andOrNode struct {
	isAnd bool
	l, r  operand
}

func (nd *andOrNode) kind() types.Kind { return types.KindBool }

func (nd *andOrNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	l, ln := nd.l.intAcc(cols, m, sel)
	r, rn := nd.r.intAcc(cols, m, sel)
	out := make([]int64, m)
	var nulls []bool
	for i := 0; i < m; i++ {
		lnull, rnull := ln.at(i), rn.at(i)
		a := l.at(i) != 0
		b := r.at(i) != 0
		if nd.isAnd {
			switch {
			case (!lnull && !a) || (!rnull && !b):
				// false dominates NULL
			case lnull || rnull:
				if nulls == nil {
					nulls = make([]bool, m)
				}
				nulls[i] = true
			default:
				out[i] = 1
			}
		} else {
			switch {
			case (!lnull && a) || (!rnull && b):
				out[i] = 1
			case lnull || rnull:
				if nulls == nil {
					nulls = make([]bool, m)
				}
				nulls[i] = true
			}
		}
	}
	return types.NewInt64Column(types.KindBool, out, nulls)
}

// notNode is boolean NOT.
type notNode struct {
	child vecNode
}

func (nd *notNode) kind() types.Kind { return types.KindBool }

func (nd *notNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	c := nd.child.eval(cols, m, sel)
	in := c.Int64s()
	out := make([]int64, m)
	for i := 0; i < m; i++ {
		if in[i] == 0 {
			out[i] = 1
		}
	}
	return types.NewInt64Column(types.KindBool, out, c.NullMask())
}

// negNode is numeric negation.
type negNode struct {
	child vecNode
	k     types.Kind
}

func (nd *negNode) kind() types.Kind { return nd.k }

func (nd *negNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	c := nd.child.eval(cols, m, sel)
	if nd.k == types.KindFloat64 {
		in := c.Float64s()
		out := make([]float64, m)
		for i := 0; i < m; i++ {
			out[i] = -in[i]
		}
		return types.NewFloat64Column(out, c.NullMask())
	}
	in := c.Int64s()
	out := make([]int64, m)
	for i := 0; i < m; i++ {
		out[i] = -in[i]
	}
	return types.NewInt64Column(types.KindInt64, out, c.NullMask())
}

// isNullNode is IS [NOT] NULL; the result is never NULL itself.
type isNullNode struct {
	child   vecNode
	negated bool
}

func (nd *isNullNode) kind() types.Kind { return types.KindBool }

func (nd *isNullNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	c := nd.child.eval(cols, m, sel)
	mask := c.NullMask()
	out := make([]int64, m)
	for i := 0; i < m; i++ {
		isNull := mask != nil && mask[i]
		if isNull != nd.negated {
			out[i] = 1
		}
	}
	return types.NewInt64Column(types.KindBool, out, nil)
}

// concatNode is string || string (NULL-strict).
type concatNode struct {
	l, r operand
}

func (nd *concatNode) kind() types.Kind { return types.KindString }

func (nd *concatNode) eval(cols []*types.Column, m int, sel []int) *types.Column {
	l, ln := nd.l.strAcc(cols, m, sel)
	r, rn := nd.r.strAcc(cols, m, sel)
	out := make([]string, m)
	var nulls []bool
	for i := 0; i < m; i++ {
		if ln.at(i) || rn.at(i) {
			if nulls == nil {
				nulls = make([]bool, m)
			}
			nulls[i] = true
			continue
		}
		out[i] = l.at(i) + r.at(i)
	}
	return types.NewStringColumn(types.KindString, out, nulls)
}

// compileOperand compiles one side of a binary kernel: constants fold to a
// scalar, everything else must compile to a node. The returned kind is the
// operand's static kind, used for class selection.
func compileOperand(e plan.Expr, inKinds []types.Kind) (operand, types.Kind, bool) {
	if IsConstant(e) {
		k := e.Type()
		if k == types.KindNull {
			return operand{}, 0, false
		}
		v, err := Eval(e, nil, nil)
		if err != nil {
			return operand{}, 0, false
		}
		if !v.Null && v.Kind != k {
			cast, cerr := v.Cast(k)
			if cerr != nil {
				return operand{}, 0, false
			}
			v = cast
		}
		return operand{null: v.Null, i: v.I, f: v.AsFloat64(), s: v.S}, k, true
	}
	n, ok := compileNode(e, inKinds)
	if !ok {
		return operand{}, 0, false
	}
	return operand{node: n}, n.kind(), true
}

// compileNode compiles a non-constant expression to a kernel tree, or
// reports that it is outside the vectorizable subset.
func compileNode(e plan.Expr, inKinds []types.Kind) (vecNode, bool) {
	switch t := e.(type) {
	case *plan.Alias:
		return compileNode(t.Child, inKinds)

	case *plan.BoundRef:
		if t.Index < 0 || t.Index >= len(inKinds) {
			return nil, false
		}
		k := inKinds[t.Index]
		// The analyzer's static kind must agree with the physical column;
		// when they disagree the row path's per-value casts apply instead.
		if k != t.Kind || k == types.KindNull {
			return nil, false
		}
		return &refNode{idx: t.Index, k: k}, true

	case *plan.IsNull:
		child, ok := compileNode(t.Child, inKinds)
		if !ok {
			return nil, false
		}
		return &isNullNode{child: child, negated: t.Negated}, true

	case *plan.Unary:
		child, ok := compileNode(t.Child, inKinds)
		if !ok {
			return nil, false
		}
		if t.Op == plan.OpNot {
			if child.kind() != types.KindBool {
				return nil, false
			}
			return &notNode{child: child}, true
		}
		k := child.kind()
		if (k != types.KindInt64 && k != types.KindFloat64) || t.ResultKind != k {
			return nil, false
		}
		return &negNode{child: child, k: k}, true

	case *plan.Binary:
		l, lk, ok := compileOperand(t.L, inKinds)
		if !ok {
			return nil, false
		}
		r, rk, ok := compileOperand(t.R, inKinds)
		if !ok {
			return nil, false
		}
		if l.node == nil && r.node == nil {
			return nil, false // all-constant: the optimizer's folding job
		}
		switch {
		case t.Op == plan.OpAnd || t.Op == plan.OpOr:
			if lk != types.KindBool || rk != types.KindBool {
				return nil, false
			}
			return &andOrNode{isAnd: t.Op == plan.OpAnd, l: l, r: r}, true

		case t.Op.IsComparison():
			switch {
			case lk == rk && intPayload(lk):
				return &cmpNode{op: t.Op, class: classInt, l: l, r: r}, true
			case lk == rk && lk == types.KindFloat64:
				return &cmpNode{op: t.Op, class: classFloat, l: l, r: r}, true
			case lk == rk && stringPayload(lk):
				return &cmpNode{op: t.Op, class: classString, l: l, r: r}, true
			case lk.Numeric() && rk.Numeric():
				return &cmpNode{op: t.Op, class: classFloat, l: l, r: r}, true
			}
			return nil, false

		case t.Op.IsArithmetic():
			if t.ResultKind == types.KindInt64 && lk == types.KindInt64 && rk == types.KindInt64 {
				return &arithNode{op: t.Op, float: false, l: l, r: r}, true
			}
			numeric := func(k types.Kind) bool { return k == types.KindInt64 || k == types.KindFloat64 }
			if t.ResultKind == types.KindFloat64 && numeric(lk) && numeric(rk) {
				return &arithNode{op: t.Op, float: true, l: l, r: r}, true
			}
			return nil, false

		case t.Op == plan.OpConcat:
			if !stringPayload(lk) || !stringPayload(rk) || t.ResultKind != types.KindString {
				return nil, false
			}
			return &concatNode{l: l, r: r}, true
		}
		return nil, false
	}
	return nil, false
}
