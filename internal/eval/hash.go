package eval

import (
	"math"

	"lakeguard/internal/types"
)

// Columnar hash kernel for join keys and group keys.
//
// The exec layer's row-at-a-time path hashes a key row by combining
// types.Value.Hash() per column with an FNV-1a fold. That is correct but
// boxes every value and walks a maphash per row. HashColumns produces a
// 64-bit hash per row column-at-a-time over raw payload slices instead.
//
// The kernel does not reproduce Value.Hash bit-for-bit (Value.Hash uses a
// process-seeded maphash); what correctness requires is that it induces the
// same *partition* of key values: two values equal under Value.Equal must
// hash equal here, and values in different Value.Hash classes should
// (probabilistically) differ. Concretely, mirroring Value.Hash's classes:
//
//   - NULL hashes to a fixed constant regardless of kind;
//   - every integer-payload kind (BOOLEAN/BIGINT/DATE/TIMESTAMP) and every
//     integral DOUBLE hash as the int64 value, so 3 and 3.0 collide the way
//     Compare/Equal say they must;
//   - non-integral DOUBLEs hash their bit pattern (NaN lands in its own
//     class — the row path also resolves NaN equality after hashing, not by
//     hash, so this matches);
//   - STRING/BINARY hash their bytes.
const (
	hashOffset64 uint64 = 14695981039346656037 // FNV-1a offset basis
	hashPrime64  uint64 = 1099511628211        // FNV-1a prime

	hashNullClass uint64 = 0x9e3779b97f4a7c15
	hashIntTag    uint64 = 0xa24baed4963ee407
	hashFloatTag  uint64 = 0x9fb21c651e98df25
	hashStrTag    uint64 = 0xc2b2ae3d27d4eb4f
)

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// raw payloads into well-distributed bucket indices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashInt64(v int64) uint64   { return mix64(uint64(v) ^ hashIntTag) }
func hashBytes(s string) uint64 {
	h := hashOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime64
	}
	return mix64(h ^ hashStrTag)
}

// hashFloat64 hashes a DOUBLE into the class Value.Hash assigns it: integral
// finite values share the int64 class, everything else hashes its bits. The
// integral test matches Value.Hash verbatim.
func hashFloat64(f float64) uint64 {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
		return hashInt64(int64(f))
	}
	return mix64(math.Float64bits(f) ^ hashFloatTag)
}

// HashColumns computes one 64-bit hash per row over n rows of the given key
// columns, combining columns with the same FNV-1a fold the row path uses for
// multi-column keys. out is reused when it has capacity; the (possibly
// reallocated) slice is returned.
func HashColumns(cols []*types.Column, n int, out []uint64) []uint64 {
	if cap(out) < n {
		out = make([]uint64, n)
	} else {
		out = out[:n]
	}
	for i := range out {
		out[i] = hashOffset64
	}
	for _, c := range cols {
		combineColumnHash(c, n, out)
	}
	return out
}

func combineColumnHash(c *types.Column, n int, out []uint64) {
	nulls := c.NullMask()
	switch c.Kind() {
	case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
		vals := c.Int64s()
		for i := 0; i < n; i++ {
			h := hashNullClass
			if nulls == nil || !nulls[i] {
				h = hashInt64(vals[i])
			}
			out[i] = (out[i] ^ h) * hashPrime64
		}
	case types.KindFloat64:
		vals := c.Float64s()
		for i := 0; i < n; i++ {
			h := hashNullClass
			if nulls == nil || !nulls[i] {
				h = hashFloat64(vals[i])
			}
			out[i] = (out[i] ^ h) * hashPrime64
		}
	case types.KindString, types.KindBinary:
		vals := c.Strings()
		for i := 0; i < n; i++ {
			h := hashNullClass
			if nulls == nil || !nulls[i] {
				h = hashBytes(vals[i])
			}
			out[i] = (out[i] ^ h) * hashPrime64
		}
	default:
		// KindNull and friends carry no payload: every row is the NULL class.
		for i := 0; i < n; i++ {
			out[i] = (out[i] ^ hashNullClass) * hashPrime64
		}
	}
}
