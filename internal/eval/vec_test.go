package eval

import (
	"math"
	"math/rand"
	"testing"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// vecFixture builds the input columns the randomized cross-check runs over:
// integers (with zeros for division), floats (with NULLs, NaN, infinities),
// strings, and booleans.
func vecFixture(n int) ([]*types.Column, []types.Kind) {
	i1 := types.NewBuilder(types.KindInt64, n)
	i2 := types.NewBuilder(types.KindInt64, n)
	f1 := types.NewBuilder(types.KindFloat64, n)
	f2 := types.NewBuilder(types.KindFloat64, n)
	s1 := types.NewBuilder(types.KindString, n)
	b1 := types.NewBuilder(types.KindBool, n)
	words := []string{"", "a", "ab", "zed", "zed", "kilo"}
	for i := 0; i < n; i++ {
		i1.Append(types.Int64(int64(i%21) - 10)) // includes zeros and negatives
		if i%7 == 0 {
			i2.AppendNull()
		} else {
			i2.Append(types.Int64(int64(i*13)%17 - 8))
		}
		switch {
		case i%11 == 0:
			f1.AppendNull()
		case i%23 == 0:
			f1.Append(types.Float64(math.NaN()))
		case i%29 == 0:
			f1.Append(types.Float64(math.Inf(1)))
		case i%31 == 0:
			f1.Append(types.Float64(math.Inf(-1)))
		default:
			f1.Append(types.Float64(float64(i%19)*0.75 - 4))
		}
		f2.Append(types.Float64(float64(i%13) - 6)) // includes exact zeros
		if i%5 == 0 {
			s1.AppendNull()
		} else {
			s1.Append(types.String(words[i%len(words)]))
		}
		if i%9 == 0 {
			b1.AppendNull()
		} else {
			b1.Append(types.Bool(i%2 == 0))
		}
	}
	cols := []*types.Column{i1.Build(), i2.Build(), f1.Build(), f2.Build(), s1.Build(), b1.Build()}
	kinds := []types.Kind{types.KindInt64, types.KindInt64, types.KindFloat64, types.KindFloat64, types.KindString, types.KindBool}
	return cols, kinds
}

// randNum builds a random numeric expression, setting ResultKind the way the
// analyzer does: division always widens to DOUBLE, other arithmetic widens
// only when an operand is DOUBLE.
func randNum(r *rand.Rand, depth int) plan.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return &plan.BoundRef{Index: 0, Name: "i1", Kind: types.KindInt64}
		case 1:
			return &plan.BoundRef{Index: 1, Name: "i2", Kind: types.KindInt64}
		case 2:
			return &plan.BoundRef{Index: 2, Name: "f1", Kind: types.KindFloat64}
		case 3:
			return &plan.BoundRef{Index: 3, Name: "f2", Kind: types.KindFloat64}
		case 4:
			return plan.Lit(types.Int64(int64(r.Intn(7)) - 3))
		default:
			return plan.Lit(types.Float64(float64(r.Intn(9)) - 4.5))
		}
	}
	l, rr := randNum(r, depth-1), randNum(r, depth-1)
	op := []plan.BinOp{plan.OpAdd, plan.OpSub, plan.OpMul, plan.OpDiv, plan.OpMod}[r.Intn(5)]
	rk := types.KindInt64
	if op == plan.OpDiv || l.Type() == types.KindFloat64 || rr.Type() == types.KindFloat64 {
		rk = types.KindFloat64
	}
	var e plan.Expr = &plan.Binary{Op: op, L: l, R: rr, ResultKind: rk}
	if r.Intn(6) == 0 {
		e = &plan.Unary{Op: plan.OpNeg, Child: e, ResultKind: e.Type()}
	}
	return e
}

func randCmp(r *rand.Rand, depth int) plan.Expr {
	op := []plan.BinOp{plan.OpEq, plan.OpNeq, plan.OpLt, plan.OpLte, plan.OpGt, plan.OpGte}[r.Intn(6)]
	if r.Intn(4) == 0 { // string comparison
		l := plan.Expr(&plan.BoundRef{Index: 4, Name: "s1", Kind: types.KindString})
		rr := plan.Expr(plan.Lit(types.String([]string{"a", "zed", ""}[r.Intn(3)])))
		if r.Intn(2) == 0 {
			l, rr = rr, l
		}
		return &plan.Binary{Op: op, L: l, R: rr, ResultKind: types.KindBool}
	}
	return &plan.Binary{Op: op, L: randNum(r, depth-1), R: randNum(r, depth-1), ResultKind: types.KindBool}
}

func randBool(r *rand.Rand, depth int) plan.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return &plan.BoundRef{Index: 5, Name: "b1", Kind: types.KindBool}
		case 1:
			return plan.Lit(types.Bool(r.Intn(2) == 0))
		case 2:
			return &plan.IsNull{Child: randNum(r, 1), Negated: r.Intn(2) == 0}
		default:
			return randCmp(r, 1)
		}
	}
	switch r.Intn(4) {
	case 0:
		return &plan.Binary{Op: plan.OpAnd, L: randBool(r, depth-1), R: randBool(r, depth-1), ResultKind: types.KindBool}
	case 1:
		return &plan.Binary{Op: plan.OpOr, L: randBool(r, depth-1), R: randBool(r, depth-1), ResultKind: types.KindBool}
	case 2:
		return &plan.Unary{Op: plan.OpNot, Child: randBool(r, depth-1), ResultKind: types.KindBool}
	default:
		return randCmp(r, depth)
	}
}

func sameValue(got, want types.Value) bool {
	if got.Null != want.Null {
		return false
	}
	if got.Null {
		return true
	}
	if got.Kind != want.Kind {
		return false
	}
	if got.Kind == types.KindFloat64 {
		return got.F == want.F || (math.IsNaN(got.F) && math.IsNaN(want.F))
	}
	return got.Equal(want)
}

// TestVecMatchesRowEval cross-checks the columnar kernels against the row
// interpreter on randomized expressions over columns with NULLs, zeros
// (division/modulo), NaN, infinities, and mixed numeric kinds — both over the
// full batch and through a selection vector.
func TestVecMatchesRowEval(t *testing.T) {
	const n = 257
	cols, kinds := vecFixture(n)
	r := rand.New(rand.NewSource(7))

	sel := make([]int, 0, n/3)
	for i := 0; i < n; i += 3 {
		sel = append(sel, (i*7)%n)
	}

	compiled := 0
	for trial := 0; trial < 600; trial++ {
		var e plan.Expr
		if trial%2 == 0 {
			e = randBool(r, 3)
		} else {
			e = randNum(r, 3)
		}
		prog, ok := CompileVec(e, kinds)
		if !ok {
			continue
		}
		compiled++
		check := func(got types.Value, row int) {
			want, err := Eval(e, func(ci int) types.Value { return cols[ci].Value(row) }, nil)
			if err != nil {
				t.Fatalf("row eval failed for %s at row %d: %v", e, row, err)
			}
			if !sameValue(got, want) {
				t.Fatalf("divergence for %s at row %d: vec=%v row=%v", e, row, got, want)
			}
		}
		out := prog.Run(cols, n, nil)
		if out.Len() != n {
			t.Fatalf("%s: vec returned %d rows, want %d", e, out.Len(), n)
		}
		for i := 0; i < n; i++ {
			check(out.Value(i), i)
		}
		outSel := prog.Run(cols, n, sel)
		if outSel.Len() != len(sel) {
			t.Fatalf("%s: vec over sel returned %d rows, want %d", e, outSel.Len(), len(sel))
		}
		for j, i := range sel {
			check(outSel.Value(j), i)
		}
	}
	// The generator must actually exercise the kernels, not fall back.
	if compiled < 200 {
		t.Fatalf("only %d/600 random expressions compiled; generator or compiler regressed", compiled)
	}
	t.Logf("cross-checked %d compiled expressions", compiled)
}

// TestVecRejectsOutsideSubset pins the fallback contract: expressions with
// per-row error paths or session state must not compile.
func TestVecRejectsOutsideSubset(t *testing.T) {
	kinds := []types.Kind{types.KindString}
	ref := &plan.BoundRef{Index: 0, Name: "s", Kind: types.KindString}
	for _, e := range []plan.Expr{
		&plan.Like{Child: ref, Pattern: plan.Lit(types.String("a%"))},
		&plan.CurrentUser{},
		&plan.Binary{Op: plan.OpAdd, L: plan.Lit(types.Int64(1)), R: plan.Lit(types.Int64(2)), ResultKind: types.KindInt64}, // all-constant
		&plan.BoundRef{Index: 3, Name: "oob", Kind: types.KindInt64},                                                        // out of range
	} {
		if _, ok := CompileVec(e, kinds); ok {
			t.Errorf("%s compiled; expected row-interpreter fallback", e)
		}
	}
}

func benchPredicateInputs(n int) ([]*types.Column, []types.Kind, plan.Expr) {
	b := types.NewBuilder(types.KindInt64, n)
	for i := 0; i < n; i++ {
		b.Append(types.Int64(int64((i * 37) % 1000)))
	}
	cols := []*types.Column{b.Build()}
	kinds := []types.Kind{types.KindInt64}
	pred := &plan.Binary{
		Op:         plan.OpGt,
		L:          &plan.BoundRef{Index: 0, Name: "v", Kind: types.KindInt64},
		R:          plan.Lit(types.Int64(500)),
		ResultKind: types.KindBool,
	}
	return cols, kinds, pred
}

// BenchmarkFilterRowInterp evaluates a simple comparison predicate one row at
// a time through the interpreter — the pre-vectorization filter path.
func BenchmarkFilterRowInterp(b *testing.B) {
	const n = 8192
	cols, _, pred := benchPredicateInputs(n)
	b.ReportAllocs()
	kept := 0
	for i := 0; i < b.N; i++ {
		kept = 0
		for r := 0; r < n; r++ {
			ok, err := EvalPredicate(pred, func(ci int) types.Value { return cols[ci].Value(r) }, nil)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				kept++
			}
		}
	}
	if kept == 0 {
		b.Fatal("predicate kept nothing")
	}
}

// BenchmarkFilterVecKernel evaluates the same predicate through the compiled
// columnar kernel.
func BenchmarkFilterVecKernel(b *testing.B) {
	const n = 8192
	cols, kinds, pred := benchPredicateInputs(n)
	prog, ok := CompileVec(pred, kinds)
	if !ok {
		b.Fatal("predicate did not compile")
	}
	b.ReportAllocs()
	kept := 0
	for i := 0; i < b.N; i++ {
		kept = 0
		out := prog.Run(cols, n, nil)
		bits := out.Int64s()
		nulls := out.NullMask()
		for r := 0; r < n; r++ {
			if bits[r] == 1 && (nulls == nil || !nulls[r]) {
				kept++
			}
		}
	}
	if kept == 0 {
		b.Fatal("predicate kept nothing")
	}
}
