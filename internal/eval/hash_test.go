package eval

import (
	"math"
	"testing"

	"lakeguard/internal/types"
)

func colOf(t *testing.T, kind types.Kind, vals ...types.Value) *types.Column {
	t.Helper()
	b := types.NewBuilder(kind, len(vals))
	for _, v := range vals {
		b.Append(v)
	}
	return b.Build()
}

// TestHashColumnsEqualValuesAgree is the contract the vectorized join and
// aggregation operators rely on: any two values that compare equal under
// Value.Equal must receive the same column hash, including NULLs and
// cross-kind numeric equality (BIGINT 5 = DOUBLE 5.0).
func TestHashColumnsEqualValuesAgree(t *testing.T) {
	vals := []types.Value{
		types.Int64(0), types.Int64(5), types.Int64(-7), types.Int64(math.MaxInt64),
		types.Float64(0), types.Float64(5), types.Float64(-7), types.Float64(5.5),
		types.Float64(math.Inf(1)), types.Float64(math.NaN()),
		types.Bool(true), types.Bool(false),
		types.String(""), types.String("a"), types.String("ab"),
		types.Null(types.KindInt64), types.Null(types.KindFloat64), types.Null(types.KindString),
	}
	hash := func(v types.Value) uint64 {
		c := colOf(t, v.Kind, v)
		return HashColumns([]*types.Column{c}, 1, nil)[0]
	}
	isNaN := func(v types.Value) bool {
		return !v.Null && v.Kind == types.KindFloat64 && math.IsNaN(v.F)
	}
	for _, a := range vals {
		for _, b := range vals {
			if isNaN(a) != isNaN(b) {
				// cmpFloat makes NaN compare equal to every float, but
				// Value.Hash puts NaN in its own float-bits class. The
				// row path inherits that inconsistency (hash joins and
				// groups never pair NaN with non-NaN), and the vectorized
				// kernel must reproduce it, not fix it.
				continue
			}
			ha, hb := hash(a), hash(b)
			if a.Equal(b) && ha != hb {
				t.Errorf("%v and %v are equal but hash %x vs %x", a, b, ha, hb)
			}
		}
	}
}

// TestHashColumnsDiscriminates sanity-checks that obviously different values
// land on different hashes (not a cryptographic claim, just that the kernel
// is not degenerate).
func TestHashColumnsDiscriminates(t *testing.T) {
	c := colOf(t, types.KindInt64,
		types.Int64(1), types.Int64(2), types.Int64(3), types.Int64(-1),
		types.Null(types.KindInt64))
	h := HashColumns([]*types.Column{c}, c.Len(), nil)
	seen := map[uint64]int{}
	for i, v := range h {
		if j, dup := seen[v]; dup {
			t.Fatalf("rows %d and %d collide: %x", j, i, v)
		}
		seen[v] = i
	}
	s := colOf(t, types.KindString, types.String("a"), types.String("b"), types.String(""))
	hs := HashColumns([]*types.Column{s}, s.Len(), nil)
	if hs[0] == hs[1] || hs[0] == hs[2] || hs[1] == hs[2] {
		t.Fatalf("string hashes collide: %x", hs)
	}
}

// TestHashColumnsMultiColumn checks column-order sensitivity and that the
// combined hash changes when any component changes.
func TestHashColumnsMultiColumn(t *testing.T) {
	a := colOf(t, types.KindInt64, types.Int64(1), types.Int64(1))
	b := colOf(t, types.KindInt64, types.Int64(2), types.Int64(2))
	ab := HashColumns([]*types.Column{a, b}, 2, nil)
	ba := HashColumns([]*types.Column{b, a}, 2, nil)
	if ab[0] != ab[1] {
		t.Fatalf("identical rows hash differently: %x vs %x", ab[0], ab[1])
	}
	if ab[0] == ba[0] {
		t.Fatalf("column order does not affect the combined hash: %x", ab[0])
	}
	c := colOf(t, types.KindInt64, types.Int64(2), types.Int64(3))
	ac := HashColumns([]*types.Column{a, c}, 2, nil)
	if ac[0] == ac[1] {
		t.Fatalf("differing second column did not change the hash: %x", ac[0])
	}
}

// TestHashColumnsIntegralFloatClass pins the hash-class rule inherited from
// Value.Hash: integral floats in int64 range share the BIGINT class, while
// non-integral, infinite, and out-of-range floats use the float-bits class.
func TestHashColumnsIntegralFloatClass(t *testing.T) {
	ints := colOf(t, types.KindInt64, types.Int64(42), types.Int64(-3))
	flts := colOf(t, types.KindFloat64, types.Float64(42), types.Float64(-3))
	hi := HashColumns([]*types.Column{ints}, 2, nil)
	hf := HashColumns([]*types.Column{flts}, 2, nil)
	if hi[0] != hf[0] || hi[1] != hf[1] {
		t.Fatalf("integral floats must share the int class: %x vs %x", hi, hf)
	}
	odd := colOf(t, types.KindFloat64,
		types.Float64(42.5), types.Float64(math.Inf(-1)), types.Float64(2e300))
	ho := HashColumns([]*types.Column{odd}, 3, nil)
	for i, h := range ho {
		if h == hi[0] {
			t.Fatalf("non-integral float %d reused an int-class hash", i)
		}
	}
}

// TestHashColumnsReusesOut checks the out-slice reuse contract.
func TestHashColumnsReusesOut(t *testing.T) {
	c := colOf(t, types.KindInt64, types.Int64(9), types.Int64(10))
	buf := make([]uint64, 8)
	h := HashColumns([]*types.Column{c}, 2, buf)
	if &h[0] != &buf[0] {
		t.Fatal("HashColumns did not reuse the provided buffer")
	}
	fresh := HashColumns([]*types.Column{c}, 2, nil)
	if h[0] != fresh[0] || h[1] != fresh[1] {
		t.Fatal("buffer reuse changed hash values")
	}
}
