package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// acceptsPrometheus reports whether an Accept header prefers the Prometheus
// text exposition format over JSON. Prometheus scrapers send either
// text/plain;version=0.0.4 or the openmetrics media type; a plain
// "text/plain" also selects text. JSON stays the default for browsers and
// tools that accept */* or application/json.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch strings.ToLower(mt) {
		case "application/json", "*/*":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// promName sanitizes a registry metric name into a valid Prometheus metric
// name: dots and other non-[a-zA-Z0-9_:] runes become underscores, and a
// leading digit gets a leading underscore.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// RenderPrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket{le="..."} series plus _sum and _count.
// Names are emitted in sorted order so scrapes are diffable.
func (r *Registry) RenderPrometheus() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name])
	}
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = promFloat(h.bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count())
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
