package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (use negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for latencies recorded
// in milliseconds.
var DefLatencyBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram with atomic counts. Observations
// above the last bound land in an implicit +Inf bucket. Nil-safe.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCount returns the count in bucket i (len(bounds) = +Inf bucket).
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the bucket that contains the target rank, the standard
// fixed-bucket estimate. Observations in the +Inf bucket clamp to the last
// finite bound (the estimate cannot exceed what the buckets can resolve).
// Returns 0 with ok=false when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				if len(h.bounds) == 0 {
					return 0, false
				}
				return h.bounds[len(h.bounds)-1], true
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac, true
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0, false
	}
	return h.bounds[len(h.bounds)-1], true
}

type histBucket struct {
	LE    any   `json:"le"` // float bound, or "+Inf" for the overflow bucket
	Count int64 `json:"count"`
}

type histJSON struct {
	Buckets []histBucket `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   int64        `json:"count"`
	P50     float64      `json:"p50,omitempty"`
	P90     float64      `json:"p90,omitempty"`
	P99     float64      `json:"p99,omitempty"`
}

func (h *Histogram) snapshot() histJSON {
	out := histJSON{Sum: h.Sum(), Count: h.Count()}
	for i := range h.counts {
		var le any = "+Inf"
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, histBucket{LE: le, Count: h.counts[i].Load()})
	}
	if p, ok := h.Quantile(0.50); ok {
		out.P50 = p
	}
	if p, ok := h.Quantile(0.90); ok {
		out.P90 = p
	}
	if p, ok := h.Quantile(0.99); ok {
		out.P99 = p
	}
	return out
}

// Registry is a process-wide named-metric registry. Instruments are created
// on first use and shared thereafter; a nil *Registry vends nil instruments,
// so wiring telemetry is optional at every layer. The registry serves
// itself as an expvar-style JSON document over HTTP.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (bounds are fixed at first creation; nil bounds selects
// DefLatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

type registryJSON struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

func (r *Registry) snapshot() registryJSON {
	out := registryJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]histJSON{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		out.Histograms[name] = h.snapshot()
	}
	return out
}

// ServeHTTP serves the registry at /metrics. JSON is the default; a client
// whose Accept header asks for the Prometheus text exposition format
// (text/plain, or the openmetrics media type a Prometheus scraper sends)
// gets that instead — same instruments, scrape-ready rendering.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req != nil && acceptsPrometheus(req.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.RenderPrometheus()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r == nil {
		w.Write([]byte("{}\n"))
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.snapshot())
}
