package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartTrace(context.Background(), "query")
	if root == nil {
		t.Fatal("root span is nil")
	}
	root.SetAttr("user", "alice@corp.com")

	ctx2, child := StartSpan(ctx, "analyze")
	child.SetInt("nodes", 7)
	child.End()

	_, grand := StartSpan(ctx2, "inner")
	grand.Count("rows", 3)
	grand.Count("rows", 4)
	grand.End()

	if tr.OpenSpans() != 1 { // only root open
		t.Fatalf("OpenSpans = %d, want 1", tr.OpenSpans())
	}
	root.End()
	root.End() // idempotent
	if tr.OpenSpans() != 0 {
		t.Fatalf("OpenSpans after End = %d, want 0", tr.OpenSpans())
	}

	trace := root.trace
	if trace.ID() == "" || root.TraceID() != trace.ID() {
		t.Fatalf("trace id mismatch: %q vs %q", trace.ID(), root.TraceID())
	}
	if got := len(trace.Spans()); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "analyze" {
		t.Fatalf("root children = %v", kids)
	}
	// "inner" is a child of "analyze" because StartSpan used analyze's ctx.
	if gk := kids[0].Children(); len(gk) != 1 || gk[0].Name() != "inner" {
		t.Fatalf("analyze children wrong: %v", gk)
	}
	if v := gk(trace); v != 7 {
		t.Fatalf("counted rows via helper = %d", v)
	}
	if u, ok := root.Attr("user"); !ok || u != "alice@corp.com" {
		t.Fatalf("attr user = %q, %v", u, ok)
	}
	if rows := trace.Find("inner")[0].CountValue("rows"); rows != 7 {
		t.Fatalf("rows count = %d, want 7", rows)
	}
	if len(tr.Recent()) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(tr.Recent()))
	}
}

// gk pulls the accumulated rows count out of the trace to exercise Find.
func gk(trace *Trace) int64 {
	spans := trace.Find("inner")
	if len(spans) != 1 {
		return -1
	}
	return spans[0].CountValue("rows")
}

func TestSpanErrorStatus(t *testing.T) {
	tr := NewTracer()
	_, root := tr.StartTrace(context.Background(), "q")
	ctx := ContextWithSpan(context.Background(), root)
	_, s := StartSpan(ctx, "exec.scan")
	s.SetAttr("fault.site", "storage.get")
	s.EndErr(errors.New("injected: boom"))
	root.End()
	if s.Err() != "injected: boom" {
		t.Fatalf("err = %q", s.Err())
	}
	snap := s.snapshot()
	if snap.Status != "error" || snap.Attrs["fault.site"] != "storage.get" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var tracer *Tracer
	ctx, span := tracer.StartTrace(context.Background(), "q")
	if span != nil {
		t.Fatal("nil tracer minted a span")
	}
	ctx2, child := StartSpan(ctx, "x")
	if child != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced ctx should return (ctx, nil)")
	}
	child.SetAttr("k", "v")
	child.SetInt("n", 1)
	child.Count("c", 1)
	child.Fail(errors.New("x"))
	child.EndErr(nil)
	child.End()
	if child.TraceID() != "" || child.Err() != "" || !child.Ended() {
		t.Fatal("nil span accessors")
	}
	if tracer.OpenSpans() != 0 || tracer.Recent() != nil {
		t.Fatal("nil tracer accessors")
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(5)
	reg.Histogram("h", nil).Observe(1)
	if reg.Counter("c").Value() != 0 {
		t.Fatal("nil registry counter")
	}

	var prof *Profile
	op := prof.NewOp(nil, "Scan", "")
	op.AddBatch(10)
	op.AddWall(time.Millisecond)
	op.CountEval(true)
	if prof.Render() != "" || op.Rows() != 0 {
		t.Fatal("nil profile")
	}
}

func TestSlowRing(t *testing.T) {
	tr := NewTracer()
	tr.SetRetain(2)
	tr.SetSlowThreshold(time.Nanosecond) // everything is slow
	for i := 0; i < 4; i++ {
		_, root := tr.StartTrace(context.Background(), "q")
		root.End()
	}
	if len(tr.Recent()) != 2 || len(tr.Slow()) != 2 {
		t.Fatalf("rings: recent=%d slow=%d, want 2/2", len(tr.Recent()), len(tr.Slow()))
	}
	tr2 := NewTracer() // threshold 0: slow ring disabled
	_, root := tr2.StartTrace(context.Background(), "q")
	root.End()
	if len(tr2.Slow()) != 0 {
		t.Fatal("slow ring should be disabled at threshold 0")
	}
}

func TestSpanConcurrentCounts(t *testing.T) {
	tr := NewTracer()
	_, root := tr.StartTrace(context.Background(), "q")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				root.Count("morsels", 1)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := root.CountValue("morsels"); got != 800 {
		t.Fatalf("morsels = %d, want 800", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries.total").Add(3)
	reg.Gauge("sandbox.active").Set(2)
	h := reg.Histogram("query.total_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // +Inf bucket
	if h.Count() != 4 || h.Sum() != 5055.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.BucketCount(0) != 1 || h.BucketCount(1) != 1 || h.BucketCount(2) != 1 || h.BucketCount(3) != 1 {
		t.Fatalf("bucket spread wrong")
	}
	// Same name returns the same instrument.
	if reg.Counter("queries.total") != reg.Counter("queries.total") {
		t.Fatal("counter identity")
	}

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var payload struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if payload.Counters["queries.total"] != 3 || payload.Gauges["sandbox.active"] != 2 {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.Histograms["query.total_ms"].Count != 4 {
		t.Fatalf("hist payload = %+v", payload.Histograms)
	}
}

func TestProfileRender(t *testing.T) {
	p := NewProfile()
	p.AnalyzeNanos = int64(400 * time.Microsecond)
	p.ExecNanos = int64(2 * time.Millisecond)
	p.TotalNanos = int64(3 * time.Millisecond)
	sortOp := p.NewOp(nil, "Sort", "amount")
	sortOp.AddWall(time.Millisecond)
	sortOp.AddBatch(4)
	filter := p.NewOp(sortOp, "Filter", "region = 'US'")
	filter.AddBatch(4)
	filter.CountEval(true)
	filter.CountEval(false)
	scan := p.NewOp(filter, "Scan", "main.default.sales")
	scan.AddBatch(8)

	out := p.Render()
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"Sort (amount)",
		"rows 4",
		"Filter (region = 'US')",
		"vectorized 1/2",
		"  Scan", // child indentation
		"rows 8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDebugQueriesHandler(t *testing.T) {
	tr := NewTracer()
	tr.SetSlowThreshold(time.Nanosecond)
	ctx, root := tr.StartTrace(context.Background(), "query")
	_, s := StartSpan(ctx, "exec.scan")
	s.End()
	root.End()

	rec := httptest.NewRecorder()
	DebugQueriesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	var payload struct {
		OpenSpans int64 `json:"open_spans"`
		Recent    []struct {
			TraceID string `json:"trace_id"`
			Spans   int    `json:"spans"`
			Root    struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"root"`
		} `json:"recent"`
		Slow []json.RawMessage `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("debug JSON: %v\n%s", err, rec.Body.String())
	}
	if payload.OpenSpans != 0 || len(payload.Recent) != 1 || len(payload.Slow) != 1 {
		t.Fatalf("payload = %+v", payload)
	}
	got := payload.Recent[0]
	if got.Spans != 2 || got.Root.Name != "query" || len(got.Root.Children) != 1 || got.Root.Children[0].Name != "exec.scan" {
		t.Fatalf("trace snapshot = %+v", got)
	}
}
