package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

type spanJSON struct {
	Name       string            `json:"name"`
	ID         uint64            `json:"id"`
	DurationMS float64           `json:"duration_ms"`
	Status     string            `json:"status"` // ok | error | open
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Counts     map[string]int64  `json:"counts,omitempty"`
	Children   []spanJSON        `json:"children,omitempty"`
}

type traceJSON struct {
	TraceID    string   `json:"trace_id"`
	Name       string   `json:"name"`
	DurationMS float64  `json:"duration_ms"`
	Spans      int      `json:"spans"`
	Root       spanJSON `json:"root"`
}

func (s *Span) snapshot() spanJSON {
	out := spanJSON{
		Name:       s.name,
		ID:         s.id,
		DurationMS: float64(s.Duration()) / 1e6,
	}
	s.mu.Lock()
	switch {
	case s.errMsg != "":
		out.Status = "error"
		out.Error = s.errMsg
	case s.ended.Load():
		out.Status = "ok"
	default:
		out.Status = "open"
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.value
		}
	}
	if len(s.counts) > 0 {
		out.Counts = make(map[string]int64, len(s.counts))
		for _, c := range s.counts {
			out.Counts[c.key] = c.n
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

func (t *Trace) snapshot() traceJSON {
	out := traceJSON{
		TraceID:    t.ID(),
		Name:       t.Name(),
		DurationMS: float64(t.Duration()) / 1e6,
		Spans:      len(t.Spans()),
	}
	if root := t.Root(); root != nil {
		out.Root = root.snapshot()
	}
	return out
}

type debugJSON struct {
	OpenSpans       int64       `json:"open_spans"`
	TracesStarted   int64       `json:"traces_started"`
	SlowThresholdMS float64     `json:"slow_threshold_ms"`
	Recent          []traceJSON `json:"recent"`
	Slow            []traceJSON `json:"slow"`
}

// DebugQueriesHandler serves the tracer's retained query profiles as JSON:
// the last-N completed traces plus the slow-query log (the /debug/queries
// endpoint). ?n=K limits the number of recent traces returned.
func DebugQueriesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := debugJSON{Recent: []traceJSON{}, Slow: []traceJSON{}}
		if t != nil {
			out.OpenSpans = t.OpenSpans()
			out.TracesStarted = t.TracesStarted()
			out.SlowThresholdMS = float64(t.SlowThreshold()) / 1e6
			recent := t.Recent()
			if nStr := r.URL.Query().Get("n"); nStr != "" {
				if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(recent) {
					recent = recent[len(recent)-n:]
				}
			}
			for _, tr := range recent {
				out.Recent = append(out.Recent, tr.snapshot())
			}
			for _, tr := range t.Slow() {
				out.Slow = append(out.Slow, tr.snapshot())
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
