package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram must report ok=false")
	}
	// 10 observations uniformly in (0,10]: the bucket holds all of them, so
	// the median interpolates to the middle of [0,10].
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	p50, ok := h.Quantile(0.5)
	if !ok || p50 != 5 {
		t.Fatalf("p50 = %v (ok=%v), want 5", p50, ok)
	}
	// Add 10 in (10,20]: p50 = 10 (boundary), p75 interpolates into bucket 2.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	p50, _ = h.Quantile(0.5)
	if p50 != 10 {
		t.Fatalf("p50 after second bucket = %v, want 10", p50)
	}
	p75, _ := h.Quantile(0.75)
	if p75 != 15 {
		t.Fatalf("p75 = %v, want 15", p75)
	}
	// +Inf observations clamp to the last finite bound.
	for i := 0; i < 100; i++ {
		h.Observe(1e9)
	}
	p99, _ := h.Quantile(0.99)
	if p99 != 30 {
		t.Fatalf("p99 with +Inf mass = %v, want clamp to 30", p99)
	}
	// Out-of-range q clamps instead of panicking.
	if v, ok := h.Quantile(2); !ok || v != 30 {
		t.Fatalf("Quantile(2) = %v (ok=%v)", v, ok)
	}
	var nilH *Histogram
	if _, ok := nilH.Quantile(0.5); ok {
		t.Fatal("nil histogram must report ok=false")
	}
}

func TestHistogramQuantilesInJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.ms", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}
	var doc struct {
		Histograms map[string]struct {
			P50 float64 `json:"p50"`
			P90 float64 `json:"p90"`
			P99 float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	hs, ok := doc.Histograms["q.ms"]
	if !ok {
		t.Fatalf("histogram missing from snapshot: %s", rec.Body.String())
	}
	// All mass in (1,2]: every percentile interpolates inside that bucket.
	for _, p := range []float64{hs.P50, hs.P90, hs.P99} {
		if p <= 1 || p > 2 {
			t.Fatalf("percentile %v outside (1,2]: %+v", p, hs)
		}
	}
	if hs.P50 > hs.P90 || hs.P90 > hs.P99 {
		t.Fatalf("percentiles not monotonic: %+v", hs)
	}
	if math.Abs(hs.P50-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", hs.P50)
	}
}

func TestAcceptsPrometheus(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{"text/html,application/xhtml+xml,*/*;q=0.8", false},
		{"text/plain", true},
		{"text/plain;version=0.0.4;q=0.5", true},
		{"application/openmetrics-text;version=1.0.0", true},
		// First match wins across comma-separated alternatives.
		{"application/json, text/plain", false},
		{"text/plain, application/json", true},
	}
	for _, c := range cases {
		if got := acceptsPrometheus(c.accept); got != c.want {
			t.Errorf("acceptsPrometheus(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

func TestRenderPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries.total").Add(7)
	r.Gauge("sessions.active").Set(3)
	h := r.Histogram("exec.ms", []float64{1, 10})
	h.Observe(0.5) // bucket le=1
	h.Observe(5)   // bucket le=10
	h.Observe(100) // +Inf bucket

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	r.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		"queries_total 7",
		"# TYPE sessions_active gauge",
		"sessions_active 3",
		"# TYPE exec_ms histogram",
		`exec_ms_bucket{le="1"} 1`,
		`exec_ms_bucket{le="10"} 2`,
		`exec_ms_bucket{le="+Inf"} 3`,
		"exec_ms_sum 105.5",
		"exec_ms_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"systemtables.flush_ms": "systemtables_flush_ms",
		"a-b.c":                 "a_b_c",
		"0leading":              "_0leading",
		"ok_name:x":             "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
