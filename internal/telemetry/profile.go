package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// OpStats accumulates runtime statistics for one physical operator. The hot
// counters are atomics so per-worker morsels can report without locking.
type OpStats struct {
	Name   string
	Detail string

	wall         atomic.Int64 // nanoseconds spent in Next()
	rows         atomic.Int64
	batches      atomic.Int64
	vecBatches   atomic.Int64 // batches evaluated by vectorized kernels
	rowBatches   atomic.Int64 // batches that fell back to the row interpreter
	filesScanned atomic.Int64 // data files read by a scan
	filesPruned  atomic.Int64 // data files skipped by zone-map statistics
	rfFiles      atomic.Int64 // data files skipped by a join's runtime filter
	probeRows    atomic.Int64 // rows a hash join probed against its build table
	rfRows       atomic.Int64 // probe-side rows dropped by a runtime filter
	spillParts   atomic.Int64 // hash-table spill partitions written
	spillBytes   atomic.Int64 // bytes written to spill storage
	readBytes    atomic.Int64 // bytes fetched from storage by a scan
	dvMaskedRows atomic.Int64 // rows removed by deletion vectors after read

	mu       sync.Mutex
	children []*OpStats
}

// AddWall accumulates wall time spent producing output.
func (o *OpStats) AddWall(d time.Duration) {
	if o == nil {
		return
	}
	o.wall.Add(int64(d))
}

// AddBatch records one output batch of the given row count.
func (o *OpStats) AddBatch(rows int) {
	if o == nil {
		return
	}
	o.batches.Add(1)
	o.rows.Add(int64(rows))
}

// CountEval records whether a batch's expressions ran vectorized or fell
// back to the row interpreter.
func (o *OpStats) CountEval(vectorized bool) {
	if o == nil {
		return
	}
	if vectorized {
		o.vecBatches.Add(1)
	} else {
		o.rowBatches.Add(1)
	}
}

// AddFiles records a scan's data-skipping outcome: files it will read vs.
// files its statistics proved empty for the pushed filters.
func (o *OpStats) AddFiles(scanned, pruned int) {
	if o == nil {
		return
	}
	o.filesScanned.Add(int64(scanned))
	o.filesPruned.Add(int64(pruned))
}

// AddRuntimeFilePruned moves n files from "scanned" to "skipped by runtime
// filter": the files were admitted by build-time zone-map pruning (so they
// were counted scanned) but a join's build-side filter later proved them
// empty before any storage GET.
func (o *OpStats) AddRuntimeFilePruned(n int) {
	if o == nil {
		return
	}
	o.filesScanned.Add(int64(-n))
	o.rfFiles.Add(int64(n))
}

// AddProbe records rows a hash join probed against its build table.
func (o *OpStats) AddProbe(rows int) {
	if o == nil {
		return
	}
	o.probeRows.Add(int64(rows))
}

// AddRuntimeFiltered records probe-side rows dropped by a runtime filter
// before reaching the join.
func (o *OpStats) AddRuntimeFiltered(rows int) {
	if o == nil {
		return
	}
	o.rfRows.Add(int64(rows))
}

// AddReadBytes records bytes a scan fetched from storage (the per-tenant
// bytes-GET attribution the billing rollup charges).
func (o *OpStats) AddReadBytes(n int64) {
	if o == nil {
		return
	}
	o.readBytes.Add(n)
}

// ReadBytes returns bytes fetched from storage.
func (o *OpStats) ReadBytes() int64 {
	if o == nil {
		return 0
	}
	return o.readBytes.Load()
}

// AddDVMasked records rows a scan dropped because the file's deletion
// vector marked them deleted.
func (o *OpStats) AddDVMasked(rows int) {
	if o == nil {
		return
	}
	o.dvMaskedRows.Add(int64(rows))
}

// DVMaskedRows returns rows dropped by deletion vectors.
func (o *OpStats) DVMaskedRows() int64 {
	if o == nil {
		return 0
	}
	return o.dvMaskedRows.Load()
}

// AddSpill records hash-table spill volume: partitions written and bytes.
func (o *OpStats) AddSpill(partitions int, bytes int64) {
	if o == nil {
		return
	}
	o.spillParts.Add(int64(partitions))
	o.spillBytes.Add(bytes)
}

// FilesScanned returns data files read.
func (o *OpStats) FilesScanned() int64 {
	if o == nil {
		return 0
	}
	return o.filesScanned.Load()
}

// FilesPruned returns data files skipped by statistics.
func (o *OpStats) FilesPruned() int64 {
	if o == nil {
		return 0
	}
	return o.filesPruned.Load()
}

// Wall returns accumulated wall time.
func (o *OpStats) Wall() time.Duration {
	if o == nil {
		return 0
	}
	return time.Duration(o.wall.Load())
}

// Rows returns total rows emitted.
func (o *OpStats) Rows() int64 {
	if o == nil {
		return 0
	}
	return o.rows.Load()
}

// Batches returns total batches emitted.
func (o *OpStats) Batches() int64 {
	if o == nil {
		return 0
	}
	return o.batches.Load()
}

// VecBatches returns batches evaluated by vectorized kernels.
func (o *OpStats) VecBatches() int64 {
	if o == nil {
		return 0
	}
	return o.vecBatches.Load()
}

// RowFallbackBatches returns batches evaluated by the row interpreter.
func (o *OpStats) RowFallbackBatches() int64 {
	if o == nil {
		return 0
	}
	return o.rowBatches.Load()
}

// RuntimeFilePruned returns data files skipped by a runtime filter.
func (o *OpStats) RuntimeFilePruned() int64 {
	if o == nil {
		return 0
	}
	return o.rfFiles.Load()
}

// ProbeRows returns rows probed against a join's build table.
func (o *OpStats) ProbeRows() int64 {
	if o == nil {
		return 0
	}
	return o.probeRows.Load()
}

// RuntimeFilteredRows returns probe-side rows dropped by a runtime filter.
func (o *OpStats) RuntimeFilteredRows() int64 {
	if o == nil {
		return 0
	}
	return o.rfRows.Load()
}

// SpillPartitions returns hash-table spill partitions written.
func (o *OpStats) SpillPartitions() int64 {
	if o == nil {
		return 0
	}
	return o.spillParts.Load()
}

// SpillBytes returns bytes written to spill storage.
func (o *OpStats) SpillBytes() int64 {
	if o == nil {
		return 0
	}
	return o.spillBytes.Load()
}

// Children returns the operator's input operators.
func (o *OpStats) Children() []*OpStats {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*OpStats, len(o.children))
	copy(out, o.children)
	return out
}

// Profile is one query's EXPLAIN ANALYZE payload: per-phase latencies plus
// a tree of OpStats mirroring the physical operator tree. Nil-safe.
type Profile struct {
	// QueueWaitNanos is time the request spent in the admission queue before
	// any execution phase began (stamped from the request context, where the
	// Connect layer recorded it via ContextWithQueueWait).
	QueueWaitNanos int64
	// Phase wall times, stamped sequentially by the query driver.
	AnalyzeNanos  int64
	OptimizeNanos int64
	VerifyNanos   int64
	ExecNanos     int64
	TotalNanos    int64

	mu   sync.Mutex
	root *OpStats
}

// NewProfile creates an empty profile.
func NewProfile() *Profile { return &Profile{} }

// NewOp registers an operator node under parent (nil parent = plan root) and
// returns its stats sink. On a nil profile it returns nil and every
// downstream stats call no-ops.
func (p *Profile) NewOp(parent *OpStats, name, detail string) *OpStats {
	if p == nil {
		return nil
	}
	op := &OpStats{Name: name, Detail: detail}
	if parent == nil {
		p.mu.Lock()
		p.root = op
		p.mu.Unlock()
	} else {
		parent.mu.Lock()
		parent.children = append(parent.children, op)
		parent.mu.Unlock()
	}
	return op
}

// Root returns the root operator's stats.
func (p *Profile) Root() *OpStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.root
}

// ProfileTotals are the tree-wide aggregates a completed query contributes
// to the query-history and billing system tables.
type ProfileTotals struct {
	RowsOut      int64 // rows emitted by the root operator
	FilesScanned int64
	FilesPruned  int64 // zone-map plus runtime-filter pruning
	ReadBytes    int64
	SpillBytes   int64
}

// Totals walks the operator tree and sums the counters that outlive the
// query. Nil-safe: an unprofiled query reports zeros.
func (p *Profile) Totals() ProfileTotals {
	var t ProfileTotals
	root := p.Root()
	if root == nil {
		return t
	}
	t.RowsOut = root.Rows()
	var walk func(o *OpStats)
	walk = func(o *OpStats) {
		t.FilesScanned += o.FilesScanned()
		t.FilesPruned += o.FilesPruned() + o.RuntimeFilePruned()
		t.ReadBytes += o.ReadBytes()
		t.SpillBytes += o.SpillBytes()
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(root)
	return t
}

func fmtDur(nanos int64) string {
	return time.Duration(nanos).Round(time.Microsecond).String()
}

// Render formats the profile as an annotated plan tree.
func (p *Profile) Render() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (total %s: analyze %s, optimize %s, verify %s, exec %s)\n",
		fmtDur(p.TotalNanos), fmtDur(p.AnalyzeNanos), fmtDur(p.OptimizeNanos),
		fmtDur(p.VerifyNanos), fmtDur(p.ExecNanos))
	if p.QueueWaitNanos > 0 {
		fmt.Fprintf(&b, "queue wait %s (admission)\n", fmtDur(p.QueueWaitNanos))
	}
	renderOp(&b, p.Root(), 0)
	return b.String()
}

func renderOp(b *strings.Builder, o *OpStats, depth int) {
	if o == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(o.Name)
	if o.Detail != "" {
		fmt.Fprintf(b, " (%s)", o.Detail)
	}
	fmt.Fprintf(b, "  [wall %s, rows %d, batches %d", fmtDur(o.wall.Load()), o.Rows(), o.Batches())
	if v, r := o.VecBatches(), o.RowFallbackBatches(); v+r > 0 {
		fmt.Fprintf(b, ", vectorized %d/%d", v, v+r)
	}
	if s, pr, rf := o.FilesScanned(), o.FilesPruned(), o.RuntimeFilePruned(); s+pr+rf > 0 {
		fmt.Fprintf(b, ", files %d (pruned %d", s, pr)
		if rf > 0 {
			fmt.Fprintf(b, ", runtime filter %d", rf)
		}
		if dv := o.DVMaskedRows(); dv > 0 {
			fmt.Fprintf(b, ", dv-masked %d rows", dv)
		}
		b.WriteString(")")
	}
	if p := o.ProbeRows(); p > 0 {
		fmt.Fprintf(b, ", probe rows %d", p)
		if rf := o.RuntimeFilteredRows(); rf > 0 {
			fmt.Fprintf(b, " (filtered %d by runtime filter)", rf)
		}
	} else if rf := o.RuntimeFilteredRows(); rf > 0 {
		fmt.Fprintf(b, ", rows filtered %d by runtime filter", rf)
	}
	if sp, sb := o.SpillPartitions(), o.SpillBytes(); sp > 0 || sb > 0 {
		fmt.Fprintf(b, ", spill %d partitions / %d bytes", sp, sb)
	}
	b.WriteString("]\n")
	for _, c := range o.Children() {
		renderOp(b, c, depth+1)
	}
}
