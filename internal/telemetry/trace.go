// Package telemetry provides request-scoped distributed tracing, a
// process-wide metrics registry, and per-operator execution profiles
// (EXPLAIN ANALYZE) for the Lakeguard stack.
//
// The package is stdlib-only so that every layer — connect, gateway, core,
// analyzer, optimizer, sentinel, exec, sandbox, cluster, storage, audit —
// may depend on it without widening the architecture's import boundaries.
// All hot-path types are nil-safe: a nil *Span, *Counter, *Gauge,
// *Histogram, or *Profile accepts every method as a no-op, so instrumented
// code never branches on "is telemetry enabled".
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// spanBlock is the per-trace span preallocation quantum: spans are carved
// out of fixed blocks so tracing a query performs O(spans/spanBlock) heap
// allocations instead of one per span.
const spanBlock = 32

type attr struct {
	key   string
	value string
}

type count struct {
	key string
	n   int64
}

// Span records one timed operation inside a trace. Spans form a tree rooted
// at the span minted by Tracer.StartTrace; children are created with
// StartSpan. A span must be ended exactly once on every path (End or
// EndErr) — the span-end lint rule enforces this statically, and
// Tracer.OpenSpans exposes the started-minus-ended balance for leak tests.
//
// All methods are safe on a nil receiver.
type Span struct {
	trace    *Trace
	id       uint64
	parentID uint64
	name     string
	start    time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	counts   []count
	errMsg   string
	children []*Span

	ended atomic.Bool
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the ID of the trace this span belongs to ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace.ID()
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (rendered as a string).
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Attr returns a previously set attribute.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key {
			return a.value, true
		}
	}
	return "", false
}

// Count accumulates n into a named per-span counter (e.g. rows, morsels).
func (s *Span) Count(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.counts {
		if s.counts[i].key == key {
			s.counts[i].n += n
			s.mu.Unlock()
			return
		}
	}
	s.counts = append(s.counts, count{key, n})
	s.mu.Unlock()
}

// CountValue returns the accumulated value of a per-span counter.
func (s *Span) CountValue(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counts {
		if c.key == key {
			return c.n
		}
	}
	return 0
}

// Fail marks the span as errored without ending it. Injected faults, crashes
// and deny decisions are recorded — never hidden — so chaos runs stay
// debuggable from the trace alone.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Err returns the recorded error message ("" if the span succeeded).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// End closes the span. Idempotent: only the first End takes effect. Ending
// the trace's root span completes the trace and publishes it to the
// tracer's recent/slow rings.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	s.end = time.Now()
	s.mu.Unlock()
	s.trace.spanEnded(s)
}

// EndErr records err (if non-nil) and ends the span.
func (s *Span) EndErr(err error) {
	s.Fail(err)
	s.End()
}

// Ended reports whether the span has been closed.
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	return s.ended.Load()
}

// Duration returns the span's wall time (time-so-far if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Children returns the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Trace is one query's span tree plus the preallocated block the spans are
// carved from.
type Trace struct {
	id     string
	tracer *Tracer
	name   string
	start  time.Time

	mu     sync.Mutex
	free   []Span
	spans  []*Span
	nextID uint64
	root   *Span
	end    time.Time
}

// ID returns the trace ID ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Name returns the trace's root operation name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Spans returns every span in creation order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Find returns all spans with the given name.
func (t *Trace) Find(name string) []*Span {
	var out []*Span
	for _, s := range t.Spans() {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

// Duration returns root-span wall time (time-so-far if still running).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	end := t.end
	t.mu.Unlock()
	if end.IsZero() {
		return time.Since(t.start)
	}
	return end.Sub(t.start)
}

func (t *Trace) newSpan(name string, parent *Span) *Span {
	t.mu.Lock()
	if len(t.free) == 0 {
		t.free = make([]Span, spanBlock)
	}
	s := &t.free[0]
	t.free = t.free[1:]
	t.nextID++
	s.trace = t
	s.id = t.nextID
	s.name = name
	s.start = time.Now()
	if parent != nil {
		s.parentID = parent.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	if t.tracer != nil {
		t.tracer.started.Add(1)
	}
	return s
}

func (t *Trace) spanEnded(s *Span) {
	if t == nil {
		return
	}
	if t.tracer != nil {
		t.tracer.ended.Add(1)
	}
	t.mu.Lock()
	isRoot := s == t.root
	if isRoot {
		t.end = time.Now()
	}
	t.mu.Unlock()
	if isRoot && t.tracer != nil {
		t.tracer.completeTrace(t)
	}
}

// Tracer mints traces and retains completed ones in two bounded rings: the
// most recent N queries and the slow-query log (root duration above a
// configurable threshold).
type Tracer struct {
	started       atomic.Int64
	ended         atomic.Int64
	traces        atomic.Int64
	slowThreshold atomic.Int64 // nanoseconds; 0 disables the slow ring

	mu     sync.Mutex
	retain int
	recent []*Trace
	slow   []*Trace
}

// NewTracer returns a tracer retaining the last 32 traces.
func NewTracer() *Tracer { return &Tracer{retain: 32} }

// SetRetain bounds the recent/slow rings to the last n completed traces.
func (t *Tracer) SetRetain(n int) {
	if t == nil || n < 1 {
		return
	}
	t.mu.Lock()
	t.retain = n
	t.mu.Unlock()
}

// SetSlowThreshold enables the slow-query ring for traces whose root span
// takes at least d (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowThreshold.Store(int64(d))
}

// SlowThreshold returns the current slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowThreshold.Load())
}

// StartTrace mints a fresh trace with a root span and returns a context
// carrying it. On a nil tracer it returns (ctx, nil): the whole
// instrumentation chain downstream degrades to no-ops.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{id: newTraceID(), tracer: t, name: name, start: time.Now()}
	root := tr.newSpan(name, nil)
	tr.mu.Lock()
	tr.root = root
	tr.mu.Unlock()
	t.traces.Add(1)
	return ContextWithSpan(ctx, root), root
}

// OpenSpans returns spans started but not yet ended across all traces. A
// clean system returns to 0 after every query — including chaos runs with
// sibling-cancelled workers.
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load() - t.ended.Load()
}

// TracesStarted returns the number of traces minted.
func (t *Tracer) TracesStarted() int64 {
	if t == nil {
		return 0
	}
	return t.traces.Load()
}

// Recent returns the retained completed traces, oldest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.recent))
	copy(out, t.recent)
	return out
}

// Slow returns the retained slow traces, oldest first.
func (t *Tracer) Slow() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.slow))
	copy(out, t.slow)
	return out
}

func (t *Tracer) completeTrace(tr *Trace) {
	slow := t.SlowThreshold() > 0 && tr.Duration() >= t.SlowThreshold()
	t.mu.Lock()
	t.recent = appendRing(t.recent, tr, t.retain)
	if slow {
		t.slow = appendRing(t.slow, tr, t.retain)
	}
	t.mu.Unlock()
}

func appendRing(ring []*Trace, tr *Trace, retain int) []*Trace {
	ring = append(ring, tr)
	if len(ring) > retain {
		copy(ring, ring[len(ring)-retain:])
		ring = ring[:retain]
	}
	return ring
}

var traceSeq atomic.Uint64

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-" + strconv.FormatUint(traceSeq.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

type queueWaitKey struct{}

// ContextWithQueueWait stamps the admission queue wait onto the request
// context, so the query driver can copy it into the EXPLAIN ANALYZE profile.
func ContextWithQueueWait(ctx context.Context, d time.Duration) context.Context {
	if d <= 0 {
		return ctx
	}
	return context.WithValue(ctx, queueWaitKey{}, d)
}

// QueueWaitFrom returns the admission queue wait recorded on ctx (0 if none).
func QueueWaitFrom(ctx context.Context) time.Duration {
	if ctx == nil {
		return 0
	}
	d, _ := ctx.Value(queueWaitKey{}).(time.Duration)
	return d
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the current span carried by ctx (nil if untraced).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFrom returns the trace ID carried by ctx ("" if untraced).
func TraceIDFrom(ctx context.Context) string {
	return SpanFrom(ctx).TraceID()
}

// StartSpan opens a child of the current span in ctx and returns a context
// carrying the child. If ctx carries no span (tracing disabled or untraced
// entry point) it returns (ctx, nil) and all downstream span calls no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.trace.newSpan(name, parent)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}
