package analyzer

import (
	"fmt"
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// resolveExpr resolves column references, functions, and types within an
// expression against a scope, inserting implicit casts where SQL requires
// them.
func (a *Analyzer) resolveExpr(e plan.Expr, sc *scope) (plan.Expr, error) {
	switch t := e.(type) {
	case *plan.Literal, *plan.BoundRef, *plan.CurrentUser, *plan.GroupMember:
		return e, nil

	case *plan.ColumnRef:
		c, err := sc.resolve(t.Qualifier, t.Name)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %w", err)
		}
		return &plan.BoundRef{Index: c.index, Name: c.name, Kind: c.kind}, nil

	case *plan.Star:
		return nil, fmt.Errorf("analyzer: * is only allowed as a top-level SELECT item")

	case *plan.Alias:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		return &plan.Alias{Child: child, Name: t.Name}, nil

	case *plan.Binary:
		return a.resolveBinary(t, sc)

	case *plan.Unary:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		if t.Op == plan.OpNot {
			if child.Type() != types.KindBool {
				return nil, fmt.Errorf("analyzer: NOT requires a boolean, got %s", child.Type())
			}
			return &plan.Unary{Op: plan.OpNot, Child: child}, nil
		}
		if !child.Type().Numeric() {
			return nil, fmt.Errorf("analyzer: cannot negate %s", child.Type())
		}
		return &plan.Unary{Op: plan.OpNeg, Child: child, ResultKind: child.Type()}, nil

	case *plan.IsNull:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		return &plan.IsNull{Child: child, Negated: t.Negated}, nil

	case *plan.InList:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		list := make([]plan.Expr, len(t.List))
		for i, item := range t.List {
			r, err := a.resolveExpr(item, sc)
			if err != nil {
				return nil, err
			}
			r, err = coerceTo(r, child.Type())
			if err != nil {
				return nil, fmt.Errorf("analyzer: IN list item %d: %w", i+1, err)
			}
			list[i] = r
		}
		return &plan.InList{Child: child, List: list, Negated: t.Negated}, nil

	case *plan.Like:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		pat, err := a.resolveExpr(t.Pattern, sc)
		if err != nil {
			return nil, err
		}
		if child.Type() != types.KindString || pat.Type() != types.KindString {
			return nil, fmt.Errorf("analyzer: LIKE requires string operands")
		}
		return &plan.Like{Child: child, Pattern: pat, Negated: t.Negated}, nil

	case *plan.Case:
		return a.resolveCase(t, sc)

	case *plan.Cast:
		child, err := a.resolveExpr(t.Child, sc)
		if err != nil {
			return nil, err
		}
		return &plan.Cast{Child: child, To: t.To}, nil

	case *plan.FuncCall:
		return a.resolveFuncCall(t, sc)

	case *plan.AggFunc:
		// Already-resolved aggregates only appear in contexts the aggregate
		// analyzer constructs; reaching here means misuse.
		return nil, fmt.Errorf("analyzer: aggregate %s is not allowed here", plan.RedactedString(t))

	case *plan.ScalarFunc:
		args := make([]plan.Expr, len(t.Args))
		for i, arg := range t.Args {
			r, err := a.resolveExpr(arg, sc)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return &plan.ScalarFunc{Name: t.Name, Args: args, ResultKind: t.ResultKind}, nil

	case *plan.UDFCall:
		args := make([]plan.Expr, len(t.Args))
		for i, arg := range t.Args {
			r, err := a.resolveExpr(arg, sc)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		cp := *t
		cp.Args = args
		return &cp, nil
	}
	return nil, fmt.Errorf("analyzer: unsupported expression %T", e)
}

func (a *Analyzer) resolveBinary(t *plan.Binary, sc *scope) (plan.Expr, error) {
	l, err := a.resolveExpr(t.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := a.resolveExpr(t.R, sc)
	if err != nil {
		return nil, err
	}
	lk, rk := l.Type(), r.Type()
	switch {
	case t.Op == plan.OpAnd || t.Op == plan.OpOr:
		if lk != types.KindBool || rk != types.KindBool {
			return nil, fmt.Errorf("analyzer: %s requires boolean operands, got %s and %s", t.Op, lk, rk)
		}
		return &plan.Binary{Op: t.Op, L: l, R: r, ResultKind: types.KindBool}, nil

	case t.Op == plan.OpConcat:
		l = castIfNeeded(l, types.KindString)
		r = castIfNeeded(r, types.KindString)
		return &plan.Binary{Op: t.Op, L: l, R: r, ResultKind: types.KindString}, nil

	case t.Op.IsArithmetic():
		if !lk.Numeric() || !rk.Numeric() {
			return nil, fmt.Errorf("analyzer: %s requires numeric operands, got %s and %s", t.Op, lk, rk)
		}
		result := types.KindInt64
		if lk == types.KindFloat64 || rk == types.KindFloat64 || t.Op == plan.OpDiv {
			result = types.KindFloat64
			l = castIfNeeded(l, types.KindFloat64)
			r = castIfNeeded(r, types.KindFloat64)
		}
		return &plan.Binary{Op: t.Op, L: l, R: r, ResultKind: result}, nil

	case t.Op.IsComparison():
		l2, r2, err := unifyComparison(l, r)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %w", err)
		}
		return &plan.Binary{Op: t.Op, L: l2, R: r2, ResultKind: types.KindBool}, nil
	}
	return nil, fmt.Errorf("analyzer: unsupported operator %s", t.Op)
}

// unifyComparison makes two comparison operands comparable, casting string
// literals to temporal kinds and widening numerics.
func unifyComparison(l, r plan.Expr) (plan.Expr, plan.Expr, error) {
	lk, rk := l.Type(), r.Type()
	switch {
	case lk == rk:
		return l, r, nil
	case lk.Numeric() && rk.Numeric():
		return l, r, nil
	case lk == types.KindNull || rk == types.KindNull:
		// NULL literal comparisons resolve at runtime.
		return l, r, nil
	case (lk == types.KindDate || lk == types.KindTimestamp) && rk == types.KindString:
		return l, &plan.Cast{Child: r, To: lk}, nil
	case (rk == types.KindDate || rk == types.KindTimestamp) && lk == types.KindString:
		return &plan.Cast{Child: l, To: rk}, r, nil
	}
	return nil, nil, fmt.Errorf("cannot compare %s and %s", lk, rk)
}

func castIfNeeded(e plan.Expr, to types.Kind) plan.Expr {
	if e.Type() == to {
		return e
	}
	return &plan.Cast{Child: e, To: to}
}

// coerceTo inserts a cast when kinds differ and are compatible.
func coerceTo(e plan.Expr, to types.Kind) (plan.Expr, error) {
	k := e.Type()
	if k == to || to == types.KindNull || k == types.KindNull {
		return e, nil
	}
	if k.Numeric() && to.Numeric() {
		return e, nil // runtime compares numerics cross-kind
	}
	if (to == types.KindDate || to == types.KindTimestamp) && k == types.KindString {
		return &plan.Cast{Child: e, To: to}, nil
	}
	return nil, fmt.Errorf("cannot coerce %s to %s", k, to)
}

func (a *Analyzer) resolveCase(t *plan.Case, sc *scope) (plan.Expr, error) {
	out := &plan.Case{Whens: make([]plan.WhenClause, len(t.Whens))}
	var resultKinds []types.Kind
	for i, w := range t.Whens {
		cond, err := a.resolveExpr(w.Cond, sc)
		if err != nil {
			return nil, err
		}
		if cond.Type() != types.KindBool {
			return nil, fmt.Errorf("analyzer: CASE WHEN condition must be boolean, got %s", cond.Type())
		}
		then, err := a.resolveExpr(w.Then, sc)
		if err != nil {
			return nil, err
		}
		out.Whens[i] = plan.WhenClause{Cond: cond, Then: then}
		resultKinds = append(resultKinds, then.Type())
	}
	if t.Else != nil {
		els, err := a.resolveExpr(t.Else, sc)
		if err != nil {
			return nil, err
		}
		out.Else = els
		resultKinds = append(resultKinds, els.Type())
	}
	common, err := commonKind(resultKinds)
	if err != nil {
		return nil, fmt.Errorf("analyzer: CASE branches: %w", err)
	}
	out.ResultKind = common
	// Cast all branches to the common kind.
	for i := range out.Whens {
		out.Whens[i].Then = castIfNeeded(out.Whens[i].Then, common)
	}
	if out.Else != nil {
		out.Else = castIfNeeded(out.Else, common)
	}
	return out, nil
}

// commonKind finds the unified kind of a set of expression kinds.
func commonKind(kinds []types.Kind) (types.Kind, error) {
	result := types.KindNull
	for _, k := range kinds {
		switch {
		case k == types.KindNull:
			// NULL adapts to anything.
		case result == types.KindNull:
			result = k
		case result == k:
		case result.Numeric() && k.Numeric():
			result = types.KindFloat64
		default:
			return 0, fmt.Errorf("incompatible types %s and %s", result, k)
		}
	}
	if result == types.KindNull {
		result = types.KindString
	}
	return result, nil
}

// resolveFuncCall dispatches a FuncCall to a builtin, session UDF, or
// cataloged UDF.
func (a *Analyzer) resolveFuncCall(t *plan.FuncCall, sc *scope) (plan.Expr, error) {
	name := strings.ToLower(t.Name)
	args := make([]plan.Expr, len(t.Args))
	for i, arg := range t.Args {
		r, err := a.resolveExpr(arg, sc)
		if err != nil {
			return nil, err
		}
		args[i] = r
	}

	if sig, ok := scalarBuiltins[name]; ok {
		if len(args) < sig.minArgs || len(args) > sig.maxArgs {
			return nil, fmt.Errorf("analyzer: %s expects %d..%d arguments, got %d",
				strings.ToUpper(name), sig.minArgs, sig.maxArgs, len(args))
		}
		kind, err := sig.result(args)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %s: %w", strings.ToUpper(name), err)
		}
		return &plan.ScalarFunc{Name: name, Args: args, ResultKind: kind}, nil
	}

	if IsAggregateName(name) {
		// Reached outside aggregate context; Project rejects it later with a
		// clear error, but catch bare misuse here too.
		if len(args) > 1 {
			return nil, fmt.Errorf("analyzer: %s takes at most one argument, got %d", strings.ToUpper(name), len(args))
		}
		var arg plan.Expr
		if len(args) > 0 {
			arg = args[0]
		}
		kind, err := aggResultKind(name, arg)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %w", err)
		}
		return &plan.AggFunc{Name: name, Arg: arg, Distinct: t.Distinct, ResultKind: kind}, nil
	}

	// Session (ephemeral) UDF.
	if tf, ok := a.TempFuncs[name]; ok {
		return a.buildUDFCall(name, tf.Owner, tf.Body, tf.Resources, tf.Params, tf.Returns, false, args)
	}

	// Cataloged UDF (EXECUTE privilege checked by the catalog).
	fn, err := a.Cat.ResolveFunction(a.Ctx, strings.Split(t.Name, "."))
	if err != nil {
		if strings.Contains(err.Error(), "permission") {
			return nil, err
		}
		return nil, fmt.Errorf("analyzer: unknown function %q", t.Name)
	}
	return a.buildUDFCall(fn.FullName, fn.Owner, fn.Body, fn.Resources, fn.Params, fn.Returns, true, args)
}

func (a *Analyzer) buildUDFCall(name, owner, body, resources string, params []types.Field, returns types.Kind, cataloged bool, args []plan.Expr) (plan.Expr, error) {
	if len(args) != len(params) {
		return nil, fmt.Errorf("analyzer: function %s expects %d arguments, got %d", name, len(params), len(args))
	}
	argNames := make([]string, len(params))
	for i, p := range params {
		argNames[i] = p.Name
		if args[i].Type() != p.Kind && args[i].Type() != types.KindNull {
			args[i] = &plan.Cast{Child: args[i], To: p.Kind}
		}
	}
	return &plan.UDFCall{
		Name: name, Owner: owner, Body: body, ArgNames: argNames,
		Args: args, ResultKind: returns, Cataloged: cataloged, Resources: resources,
	}, nil
}
