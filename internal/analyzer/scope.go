package analyzer

import (
	"fmt"
	"strings"

	"lakeguard/internal/types"
)

// scopeCol is one column visible during expression resolution.
type scopeCol struct {
	qualifier string // table alias or table name ("" for derived columns)
	name      string
	kind      types.Kind
	index     int // ordinal in the operator's input row
}

// scope is the set of columns an expression may reference.
type scope struct {
	cols []scopeCol
}

func scopeFromSchema(qualifier string, s *types.Schema, offset int) *scope {
	sc := &scope{cols: make([]scopeCol, s.Len())}
	for i, f := range s.Fields {
		sc.cols[i] = scopeCol{qualifier: qualifier, name: f.Name, kind: f.Kind, index: offset + i}
	}
	return sc
}

// withQualifier returns a copy of the scope with every column requalified
// (SubqueryAlias semantics).
func (sc *scope) withQualifier(q string) *scope {
	out := &scope{cols: make([]scopeCol, len(sc.cols))}
	copy(out.cols, sc.cols)
	for i := range out.cols {
		out.cols[i].qualifier = q
	}
	return out
}

// concat merges two scopes side by side, offsetting the right side (Join).
func (sc *scope) concat(right *scope, rightOffset int) *scope {
	out := &scope{cols: make([]scopeCol, 0, len(sc.cols)+len(right.cols))}
	out.cols = append(out.cols, sc.cols...)
	for _, c := range right.cols {
		c.index += rightOffset
		out.cols = append(out.cols, c)
	}
	return out
}

// resolve finds a column by (qualifier, name). Ambiguity is an error.
func (sc *scope) resolve(qualifier, name string) (scopeCol, error) {
	var found []scopeCol
	for _, c := range sc.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if qualifier != "" && !qualifierMatches(c.qualifier, qualifier) {
			continue
		}
		found = append(found, c)
	}
	switch len(found) {
	case 0:
		full := name
		if qualifier != "" {
			full = qualifier + "." + name
		}
		return scopeCol{}, fmt.Errorf("column %q not found; available: %s", full, sc.describe())
	case 1:
		return found[0], nil
	}
	return scopeCol{}, fmt.Errorf("column %q is ambiguous (%d matches)", name, len(found))
}

// qualifierMatches accepts exact matches and suffix matches on dotted names,
// so alias "t", bare table "sales", and full "main.default.sales" all work.
func qualifierMatches(have, want string) bool {
	if strings.EqualFold(have, want) {
		return true
	}
	return strings.HasSuffix(strings.ToLower(have), "."+strings.ToLower(want))
}

// columnsFor returns the scope columns matching a star qualifier ("" = all).
func (sc *scope) columnsFor(qualifier string) []scopeCol {
	if qualifier == "" {
		return sc.cols
	}
	var out []scopeCol
	for _, c := range sc.cols {
		if qualifierMatches(c.qualifier, qualifier) {
			out = append(out, c)
		}
	}
	return out
}

func (sc *scope) describe() string {
	names := make([]string, 0, len(sc.cols))
	for _, c := range sc.cols {
		if c.qualifier != "" {
			names = append(names, c.qualifier+"."+c.name)
		} else {
			names = append(names, c.name)
		}
	}
	if len(names) > 12 {
		names = append(names[:12], "...")
	}
	return strings.Join(names, ", ")
}
