package analyzer

import (
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// TestAnalyzerErrorMessages pins a broad set of resolution failures: each
// case must fail, and where a fragment is given the message must contain it
// (users debug through these strings).
func TestAnalyzerErrorMessages(t *testing.T) {
	cat := newWorld(t)
	cases := []struct {
		query    string
		fragment string
	}{
		{"SELECT nope FROM sales", "not found"},
		{"SELECT s.amount FROM sales", "not found"}, // wrong qualifier
		{"SELECT * FROM missing_table", "not found"},
		{"SELECT amount FROM sales WHERE upper(amount) = 'X'", ""},
		{"SELECT substr(seller) FROM sales", ""}, // arity (substr needs >= 2)
		{"SELECT abs(seller) FROM sales", "numeric"},
		{"SELECT sum(amount, amount) FROM sales", ""},
		{"SELECT amount FROM sales WHERE amount IN ('x')", ""},
		{"SELECT amount FROM sales WHERE seller LIKE amount", "LIKE"},
		{"SELECT CASE WHEN amount THEN 1 END FROM sales", "boolean"},
		{"SELECT amount FROM sales ORDER BY nosuch", ""},
		{"SELECT seller FROM sales GROUP BY region", "GROUP BY"},
		{"SELECT amount FROM sales CROSS JOIN sales WHERE amount > 0", "ambiguous"},
		{"SELECT a.amount FROM sales a JOIN sales b ON amount = amount", "ambiguous"},
		{"SELECT * FROM sales s JOIN sales q ON s.amount", "boolean"},
	}
	for _, c := range cases {
		q, err := sql.ParseQuery(c.query)
		if err != nil {
			t.Errorf("parse %q unexpectedly failed: %v", c.query, err)
			continue
		}
		_, err = New(cat, adminCtx()).Analyze(q)
		if err == nil {
			t.Errorf("%q: expected analysis error", c.query)
			continue
		}
		if c.fragment != "" && !strings.Contains(err.Error(), c.fragment) {
			t.Errorf("%q: error %q missing fragment %q", c.query, err.Error(), c.fragment)
		}
	}
}

func TestCorruptStoredPolicyFailsClosed(t *testing.T) {
	// A syntactically valid but semantically broken stored policy must fail
	// resolution (fail closed), never silently skip enforcement.
	cat := newWorld(t)
	// Valid syntax, unknown column.
	if err := cat.SetRowFilter(adminCtx(), []string{"sales"}, "nonexistent_col = 'US'", false); err != nil {
		t.Fatal(err)
	}
	q, _ := sql.ParseQuery("SELECT amount FROM sales")
	if _, err := New(cat, adminCtx()).Analyze(q); err == nil {
		t.Fatal("broken row filter must fail the query, not skip enforcement")
	}
	// Non-boolean row filter.
	cat.SetRowFilter(adminCtx(), []string{"sales"}, "amount + 1", false)
	if _, err := New(cat, adminCtx()).Analyze(q); err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Fatal("non-boolean row filter must be rejected")
	}
	// Broken mask.
	cat.SetRowFilter(adminCtx(), []string{"sales"}, "", true)
	cat.SetColumnMask(adminCtx(), []string{"sales"}, "seller", "upper(nonexistent)", false)
	if _, err := New(cat, adminCtx()).Analyze(q); err == nil {
		t.Fatal("broken mask must fail the query")
	}
}

func TestViewDepthLimit(t *testing.T) {
	cat := newWorld(t)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	// Chain of views v0 <- v1 <- ... deeper than MaxViewDepth.
	prev := "sales"
	for i := 0; i <= MaxViewDepth; i++ {
		name := "v" + itoa(i)
		if err := cat.CreateView(adminCtx(), []string{name},
			"SELECT amount FROM "+prev, false, false, vs, ""); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	q, _ := sql.ParseQuery("SELECT * FROM " + prev)
	_, err := New(cat, adminCtx()).Analyze(q)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("err = %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestAnalyzeExprAgainstSchema(t *testing.T) {
	cat := newWorld(t)
	a := New(cat, adminCtx())
	schema := types.NewSchema(
		types.Field{Name: "x", Kind: types.KindInt64},
		types.Field{Name: "s", Kind: types.KindString},
	)
	e, err := sql.ParseExpr("x > 1 AND upper(s) = 'A'")
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := a.AnalyzeExpr(e, schema)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Type() != types.KindBool {
		t.Errorf("type = %v", resolved.Type())
	}
	if plan.ExprContains(resolved, func(x plan.Expr) bool {
		_, ok := x.(*plan.ColumnRef)
		return ok
	}) {
		t.Error("unresolved refs remain")
	}
}

func TestRemoteScanOnViewForDedicated(t *testing.T) {
	// Views (even without explicit FGAC) are governed objects: untrusted
	// compute must not see their bodies and resolves them to RemoteScan.
	cat := newWorld(t)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	cat.CreateView(adminCtx(), []string{"v"}, "SELECT amount FROM sales", false, false, vs, "")
	cat.Grant(adminCtx(), catalog.PrivSelect, []string{"v"}, alice)
	q, _ := sql.ParseQuery("SELECT * FROM v")
	out, err := New(cat, ctxFor(alice, catalog.ComputeDedicated)).Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Contains(out, func(n plan.Node) bool { _, ok := n.(*plan.RemoteScan); return ok }) {
		t.Error("view on dedicated compute should resolve to RemoteScan")
	}
}
