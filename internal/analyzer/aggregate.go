package analyzer

import (
	"fmt"
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// analyzeAggregate rewrites a parser-produced Aggregate (whose Aggs are raw
// SELECT items) into the physical form:
//
//	Project(items over [groups..., aggCalls...])
//	  [Filter(having)]
//	    Aggregate(groupBy, aggCalls)
//	      child
//
// Select items may mix grouped expressions, aggregate calls, and scalar
// functions over both. HAVING (having != nil) is resolved with the same
// machinery and may introduce aggregate calls not present in the select
// list.
func (a *Analyzer) analyzeAggregate(t *plan.Aggregate, having plan.Expr) (plan.Node, *scope, error) {
	child, cs, err := a.analyzeNode(t.Child)
	if err != nil {
		return nil, nil, err
	}

	// Resolve GROUP BY expressions against the child.
	groups := make([]plan.Expr, len(t.GroupBy))
	groupKeys := make([]string, len(t.GroupBy))
	for i, g := range t.GroupBy {
		r, err := a.resolveExpr(g, cs)
		if err != nil {
			return nil, nil, err
		}
		if containsAggCall(r) {
			return nil, nil, fmt.Errorf("analyzer: aggregate functions are not allowed in GROUP BY")
		}
		groups[i] = r
		groupKeys[i] = r.String()
	}

	st := &aggState{an: a, cs: cs, groups: groups, groupKeys: groupKeys}

	// Rewrite each select item.
	items := make([]plan.Expr, 0, len(t.Aggs))
	for _, item := range t.Aggs {
		if _, isStar := item.(*plan.Star); isStar {
			return nil, nil, fmt.Errorf("analyzer: * is not allowed in an aggregate SELECT list")
		}
		rewritten, err := st.rewrite(item)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, rewritten)
	}

	var havingResolved plan.Expr
	if having != nil {
		havingResolved, err = st.rewrite(having)
		if err != nil {
			return nil, nil, err
		}
		if havingResolved.Type() != types.KindBool {
			return nil, nil, fmt.Errorf("analyzer: HAVING must be boolean, got %s", havingResolved.Type())
		}
	}

	// Build the core aggregate's output schema: groups then agg calls.
	coreSchema := &types.Schema{}
	for i, g := range groups {
		coreSchema.Fields = append(coreSchema.Fields, types.Field{
			Name: groupFieldName(t.GroupBy[i], g), Kind: g.Type(), Nullable: true,
		})
	}
	for _, c := range st.aggCalls {
		coreSchema.Fields = append(coreSchema.Fields, types.Field{
			Name: c.String(), Kind: c.Type(), Nullable: true,
		})
	}
	aggExprs := make([]plan.Expr, len(st.aggCalls))
	for i, c := range st.aggCalls {
		aggExprs[i] = c
	}
	var node plan.Node = &plan.Aggregate{
		GroupBy: groups, Aggs: aggExprs, Child: child, OutSchema: coreSchema,
	}
	if havingResolved != nil {
		node = &plan.Filter{Cond: havingResolved, Child: node}
	}

	outSchema := &types.Schema{Fields: make([]types.Field, len(items))}
	for i, item := range items {
		outSchema.Fields[i] = types.Field{Name: plan.OutputName(item), Kind: item.Type(), Nullable: true}
	}
	p := &plan.Project{Exprs: items, Child: node, OutSchema: outSchema}
	return p, scopeFromSchema("", outSchema, 0), nil
}

func groupFieldName(orig, resolved plan.Expr) string {
	if c, ok := orig.(*plan.ColumnRef); ok {
		return c.Name
	}
	if b, ok := resolved.(*plan.BoundRef); ok {
		return b.Name
	}
	return resolved.String()
}

// aggState accumulates aggregate calls while rewriting select items.
type aggState struct {
	an        *Analyzer
	cs        *scope
	groups    []plan.Expr
	groupKeys []string
	aggCalls  []*plan.AggFunc
}

// rewrite maps an item expression over the aggregate output: grouped
// sub-expressions become BoundRefs to group slots, aggregate calls become
// BoundRefs to agg slots, and anything else must decompose into those.
func (st *aggState) rewrite(e plan.Expr) (plan.Expr, error) {
	switch t := e.(type) {
	case *plan.Alias:
		child, err := st.rewrite(t.Child)
		if err != nil {
			return nil, err
		}
		return &plan.Alias{Child: child, Name: t.Name}, nil
	case *plan.Literal, *plan.CurrentUser, *plan.GroupMember:
		return e, nil
	}

	// Aggregate call?
	if call, ok := asAggCall(e); ok {
		if fc, isCall := e.(*plan.FuncCall); isCall && len(fc.Args) > 1 {
			return nil, fmt.Errorf("analyzer: %s takes at most one argument, got %d", strings.ToUpper(call.name), len(fc.Args))
		}
		var arg plan.Expr
		var err error
		if call.arg != nil {
			arg, err = st.an.resolveExpr(call.arg, st.cs)
			if err != nil {
				return nil, err
			}
			if containsAggCall(arg) {
				return nil, fmt.Errorf("analyzer: nested aggregate in %s", plan.RedactedString(e))
			}
		}
		kind, err := aggResultKind(call.name, arg)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %w", err)
		}
		af := &plan.AggFunc{Name: call.name, Arg: arg, Distinct: call.distinct, ResultKind: kind}
		// Reuse an identical existing slot.
		for i, existing := range st.aggCalls {
			if existing.String() == af.String() {
				return &plan.BoundRef{Index: len(st.groups) + i, Name: af.String(), Kind: existing.ResultKind}, nil
			}
		}
		st.aggCalls = append(st.aggCalls, af)
		return &plan.BoundRef{Index: len(st.groups) + len(st.aggCalls) - 1, Name: af.String(), Kind: kind}, nil
	}

	// Whole expression matches a GROUP BY expression?
	if resolved, err := st.an.resolveExpr(e, st.cs); err == nil && !containsAggCall(resolved) {
		key := resolved.String()
		for i, gk := range st.groupKeys {
			if gk == key {
				return &plan.BoundRef{Index: i, Name: groupFieldName(e, resolved), Kind: st.groups[i].Type()}, nil
			}
		}
		// A bare column that is not grouped is an error.
		if _, isRef := e.(*plan.ColumnRef); isRef {
			return nil, fmt.Errorf("analyzer: column %s must appear in GROUP BY or inside an aggregate function", plan.RedactedString(e))
		}
	} else if _, isRef := e.(*plan.ColumnRef); isRef {
		return nil, err
	}

	// Composite expression: rewrite children, then re-resolve the node
	// against the aggregate output scope (children are now BoundRefs, so
	// only type-level resolution remains).
	children := e.ChildExprs()
	if len(children) == 0 {
		return nil, fmt.Errorf("analyzer: expression %s must appear in GROUP BY or inside an aggregate function", plan.RedactedString(e))
	}
	newChildren := make([]plan.Expr, len(children))
	for i, c := range children {
		nc, err := st.rewrite(c)
		if err != nil {
			return nil, err
		}
		newChildren[i] = nc
	}
	composed := e.WithChildExprs(newChildren)
	// Type-check the composed expression in a scope of its own leaves.
	return st.an.resolveExpr(composed, st.aggOutScope())
}

// aggOutScope is the (group..., agg...) output scope of the core aggregate.
func (st *aggState) aggOutScope() *scope {
	sc := &scope{}
	for i, g := range st.groups {
		sc.cols = append(sc.cols, scopeCol{name: fmt.Sprintf("__group%d", i), kind: g.Type(), index: i})
	}
	for i, c := range st.aggCalls {
		sc.cols = append(sc.cols, scopeCol{name: c.String(), kind: c.Type(), index: len(st.groups) + i})
	}
	return sc
}

type aggCallParts struct {
	name     string
	arg      plan.Expr
	distinct bool
}

func asAggCall(e plan.Expr) (aggCallParts, bool) {
	switch t := e.(type) {
	case *plan.FuncCall:
		if IsAggregateName(t.Name) {
			var arg plan.Expr
			if len(t.Args) > 0 {
				arg = t.Args[0]
			}
			return aggCallParts{name: strings.ToLower(t.Name), arg: arg, distinct: t.Distinct}, true
		}
	case *plan.AggFunc:
		return aggCallParts{name: t.Name, arg: t.Arg, distinct: t.Distinct}, true
	}
	return aggCallParts{}, false
}
