package analyzer

import (
	"errors"
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

const (
	admin = "admin@corp.com"
	alice = "alice@corp.com"
	bob   = "bob@corp.com"
)

func adminCtx() catalog.RequestContext {
	return catalog.RequestContext{User: admin, Compute: catalog.ComputeStandard, SessionID: "s0"}
}

func ctxFor(user string, compute catalog.ComputeType) catalog.RequestContext {
	return catalog.RequestContext{User: user, Compute: compute, SessionID: "s-" + user}
}

// newWorld builds a catalog with the sales table used throughout.
func newWorld(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	schema := types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindDate},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	)
	if err := cat.CreateTable(adminCtx(), []string{"sales"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	return cat
}

func analyze(t *testing.T, cat *catalog.Catalog, ctx catalog.RequestContext, query string) plan.Node {
	t.Helper()
	a := New(cat, ctx)
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	out, err := a.Analyze(q)
	if err != nil {
		t.Fatalf("analyze %q: %v", query, err)
	}
	return out
}

func analyzeErr(t *testing.T, cat *catalog.Catalog, ctx catalog.RequestContext, query string) error {
	t.Helper()
	a := New(cat, ctx)
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	_, err = a.Analyze(q)
	if err == nil {
		t.Fatalf("analyze %q: expected error", query)
	}
	return err
}

func TestResolveSimpleSelect(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(), "SELECT amount, seller FROM sales WHERE region = 'US'")
	schema := out.Schema()
	if schema.Len() != 2 || schema.Fields[0].Name != "amount" || schema.Fields[0].Kind != types.KindFloat64 {
		t.Fatalf("schema = %s", schema)
	}
	// No unresolved nodes remain.
	if plan.Contains(out, func(n plan.Node) bool { _, ok := n.(*plan.UnresolvedRelation); return ok }) {
		t.Error("unresolved relation remains")
	}
	unresolvedExpr := false
	plan.Walk(out, func(n plan.Node) bool {
		if f, ok := n.(*plan.Filter); ok {
			if plan.ExprContains(f.Cond, func(e plan.Expr) bool { _, ok := e.(*plan.ColumnRef); return ok }) {
				unresolvedExpr = true
			}
		}
		return true
	})
	if unresolvedExpr {
		t.Error("unresolved column refs remain")
	}
}

func TestStarExpansion(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(), "SELECT * FROM sales")
	if out.Schema().Len() != 4 {
		t.Fatalf("star expanded to %d cols", out.Schema().Len())
	}
	out2 := analyze(t, cat, adminCtx(), "SELECT s.* FROM sales s")
	if out2.Schema().Len() != 4 {
		t.Fatalf("qualified star expanded to %d cols", out2.Schema().Len())
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	cat := newWorld(t)
	if err := analyzeErr(t, cat, adminCtx(), "SELECT nope FROM sales"); !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
	if err := analyzeErr(t, cat, adminCtx(), "SELECT 1 FROM nope"); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	cat := newWorld(t)
	err := analyzeErr(t, cat, ctxFor(alice, catalog.ComputeStandard), "SELECT * FROM sales")
	if !errors.Is(err, catalog.ErrPermission) {
		t.Errorf("err = %v", err)
	}
}

func TestDateLiteralCoercion(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(), "SELECT amount FROM sales WHERE date = '2024-12-01'")
	// The string literal must be cast to DATE.
	foundCast := false
	plan.Walk(out, func(n plan.Node) bool {
		if f, ok := n.(*plan.Filter); ok {
			plan.WalkExpr(f.Cond, func(e plan.Expr) bool {
				if c, ok := e.(*plan.Cast); ok && c.To == types.KindDate {
					foundCast = true
				}
				return true
			})
		}
		return true
	})
	if !foundCast {
		t.Error("date coercion cast not inserted")
	}
}

func TestTypeErrors(t *testing.T) {
	cat := newWorld(t)
	cases := []string{
		"SELECT amount + seller FROM sales",
		"SELECT * FROM sales WHERE amount",
		"SELECT * FROM sales WHERE seller AND region",
		"SELECT * FROM sales WHERE amount LIKE 'x%'",
		"SELECT * FROM sales WHERE seller = amount",
		"SELECT -seller FROM sales",
		"SELECT NOT amount FROM sales",
	}
	for _, q := range cases {
		analyzeErr(t, cat, adminCtx(), q)
	}
}

func TestJoinResolution(t *testing.T) {
	cat := newWorld(t)
	schema := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "quota", Kind: types.KindFloat64},
	)
	if err := cat.CreateTable(adminCtx(), []string{"quotas"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	out := analyze(t, cat, adminCtx(),
		"SELECT s.seller, q.quota FROM sales s JOIN quotas q ON s.seller = q.seller")
	if out.Schema().Len() != 2 {
		t.Fatalf("schema = %s", out.Schema())
	}
	// Unqualified ambiguous column errors.
	err := analyzeErr(t, cat, adminCtx(),
		"SELECT seller FROM sales s JOIN quotas q ON s.seller = q.seller")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v", err)
	}
}

func TestAggregateRewrite(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(),
		"SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY region")
	proj, ok := out.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	agg, ok := proj.Child.(*plan.Aggregate)
	if !ok {
		t.Fatalf("child = %T", proj.Child)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg shape: %d groups %d aggs", len(agg.GroupBy), len(agg.Aggs))
	}
	if out.Schema().Fields[1].Name != "total" || out.Schema().Fields[1].Kind != types.KindFloat64 {
		t.Errorf("schema = %s", out.Schema())
	}
	if out.Schema().Fields[2].Kind != types.KindInt64 {
		t.Error("count should be BIGINT")
	}
}

func TestAggregateExpressionOverAggs(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(),
		"SELECT region, SUM(amount) / COUNT(*) AS mean FROM sales GROUP BY region")
	if out.Schema().Fields[1].Kind != types.KindFloat64 {
		t.Errorf("mean kind = %v", out.Schema().Fields[1].Kind)
	}
	// Identical agg calls share one slot.
	out2 := analyze(t, cat, adminCtx(),
		"SELECT SUM(amount), SUM(amount) FROM sales")
	var agg *plan.Aggregate
	plan.Walk(out2, func(n plan.Node) bool {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
		return true
	})
	if len(agg.Aggs) != 1 {
		t.Errorf("duplicate aggs not shared: %d slots", len(agg.Aggs))
	}
}

func TestAggregateErrors(t *testing.T) {
	cat := newWorld(t)
	// Non-grouped column.
	err := analyzeErr(t, cat, adminCtx(), "SELECT seller, SUM(amount) FROM sales GROUP BY region")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("err = %v", err)
	}
	// Aggregate of non-numeric.
	analyzeErr(t, cat, adminCtx(), "SELECT SUM(seller) FROM sales GROUP BY region")
	// Nested aggregate.
	analyzeErr(t, cat, adminCtx(), "SELECT SUM(COUNT(*)) FROM sales")
	// Star in aggregate select.
	analyzeErr(t, cat, adminCtx(), "SELECT *, COUNT(*) FROM sales")
	// Aggregate in WHERE.
	analyzeErr(t, cat, adminCtx(), "SELECT region FROM sales WHERE SUM(amount) > 1 GROUP BY region")
}

func TestHavingResolution(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(),
		"SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 100 AND region <> 'EU'")
	// HAVING introduces an agg slot not in the select list.
	var agg *plan.Aggregate
	var filter *plan.Filter
	plan.Walk(out, func(n plan.Node) bool {
		switch v := n.(type) {
		case *plan.Aggregate:
			agg = v
		case *plan.Filter:
			filter = v
		}
		return true
	})
	if agg == nil || filter == nil {
		t.Fatal("missing aggregate or having filter")
	}
	if len(agg.Aggs) != 1 {
		t.Errorf("agg slots = %d", len(agg.Aggs))
	}
	if out.Schema().Len() != 1 {
		t.Errorf("final schema = %s", out.Schema())
	}
}

func TestRowFilterInjection(t *testing.T) {
	cat := newWorld(t)
	if err := cat.SetRowFilter(adminCtx(), []string{"sales"},
		"region = 'US' OR IS_ACCOUNT_GROUP_MEMBER('admins')", false); err != nil {
		t.Fatal(err)
	}
	cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	out := analyze(t, cat, ctxFor(alice, catalog.ComputeStandard), "SELECT amount FROM sales")

	var sv *plan.SecureView
	plan.Walk(out, func(n plan.Node) bool {
		if v, ok := n.(*plan.SecureView); ok {
			sv = v
		}
		return true
	})
	if sv == nil {
		t.Fatal("no SecureView injected")
	}
	if sv.PolicyKinds[0] != "row_filter" {
		t.Errorf("kinds = %v", sv.PolicyKinds)
	}
	// The filter lives under the barrier and references the group function.
	foundGroupFn := plan.Contains(out, func(n plan.Node) bool {
		f, ok := n.(*plan.Filter)
		return ok && plan.ExprContains(f.Cond, func(e plan.Expr) bool {
			_, ok := e.(*plan.GroupMember)
			return ok
		})
	})
	if !foundGroupFn {
		t.Error("row filter predicate missing from plan")
	}
}

func TestColumnMaskInjection(t *testing.T) {
	cat := newWorld(t)
	mask := "CASE WHEN IS_ACCOUNT_GROUP_MEMBER('hr') THEN seller ELSE '***' END"
	if err := cat.SetColumnMask(adminCtx(), []string{"sales"}, "seller", mask, false); err != nil {
		t.Fatal(err)
	}
	out := analyze(t, cat, adminCtx(), "SELECT seller FROM sales")
	// Schema unchanged.
	if out.Schema().Fields[0].Name != "seller" || out.Schema().Fields[0].Kind != types.KindString {
		t.Fatalf("schema = %s", out.Schema())
	}
	// A masking projection with a CASE sits under a SecureView.
	foundMask := plan.Contains(out, func(n plan.Node) bool {
		p, ok := n.(*plan.Project)
		if !ok {
			return false
		}
		for _, e := range p.Exprs {
			if plan.ExprContains(e, func(x plan.Expr) bool { _, ok := x.(*plan.Case); return ok }) {
				return true
			}
		}
		return false
	})
	if !foundMask {
		t.Error("mask projection missing")
	}
}

func TestDedicatedComputeGetsRemoteScan(t *testing.T) {
	cat := newWorld(t)
	cat.SetRowFilter(adminCtx(), []string{"sales"}, "region = 'US'", false)
	cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	out := analyze(t, cat, ctxFor(alice, catalog.ComputeDedicated),
		"SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'")
	var rs *plan.RemoteScan
	plan.Walk(out, func(n plan.Node) bool {
		if r, ok := n.(*plan.RemoteScan); ok {
			rs = r
		}
		return true
	})
	if rs == nil {
		t.Fatal("expected RemoteScan for FGAC table on dedicated compute")
	}
	if rs.Relation != "main.default.sales" {
		t.Errorf("relation = %q", rs.Relation)
	}
	// The policy internals must not appear anywhere in the plan.
	if strings.Contains(plan.Explain(out), "US") {
		t.Error("policy literal leaked into dedicated-compute plan")
	}
	// Plain tables on dedicated compute scan locally.
	cat.SetRowFilter(adminCtx(), []string{"sales"}, "", true)
	out2 := analyze(t, cat, ctxFor(alice, catalog.ComputeDedicated), "SELECT amount FROM sales")
	if plan.Contains(out2, func(n plan.Node) bool { _, ok := n.(*plan.RemoteScan); return ok }) {
		t.Error("plain table should not use RemoteScan")
	}
}

func TestViewDefinerRights(t *testing.T) {
	cat := newWorld(t)
	vs := types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "seller", Kind: types.KindString},
	)
	err := cat.CreateView(adminCtx(), []string{"sensor_view"},
		"SELECT amount, seller FROM sales WHERE region <> 'CLASSIFIED'", false, false, vs, "")
	if err != nil {
		t.Fatal(err)
	}
	// Alice can SELECT the view but not the base table.
	cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sensor_view"}, alice)
	out := analyze(t, cat, ctxFor(alice, catalog.ComputeStandard), "SELECT * FROM sensor_view")
	if out.Schema().Len() != 2 {
		t.Fatalf("schema = %s", out.Schema())
	}
	if !plan.Contains(out, func(n plan.Node) bool {
		sv, ok := n.(*plan.SecureView)
		return ok && sv.PolicyKinds[0] == "view"
	}) {
		t.Error("view barrier missing")
	}
	// Direct base access still denied.
	if err := analyzeErr(t, cat, ctxFor(alice, catalog.ComputeStandard), "SELECT * FROM sales"); !errors.Is(err, catalog.ErrPermission) {
		t.Errorf("err = %v", err)
	}
}

func TestViewCycleDetection(t *testing.T) {
	cat := newWorld(t)
	vs := types.NewSchema(types.Field{Name: "x", Kind: types.KindInt64})
	// v1 -> v2 -> v1
	if err := cat.CreateView(adminCtx(), []string{"v1"}, "SELECT x FROM v2", false, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView(adminCtx(), []string{"v2"}, "SELECT x FROM v1", false, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	err := analyzeErr(t, cat, adminCtx(), "SELECT * FROM v1")
	if !strings.Contains(err.Error(), "cycl") {
		t.Errorf("err = %v", err)
	}
}

func TestMaterializedViewRequiresRefresh(t *testing.T) {
	cat := newWorld(t)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	if err := cat.CreateView(adminCtx(), []string{"mv"}, "SELECT amount FROM sales", true, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	err := analyzeErr(t, cat, adminCtx(), "SELECT * FROM mv")
	if !strings.Contains(err.Error(), "refresh") {
		t.Errorf("err = %v", err)
	}
	if err := cat.RefreshMaterializedView(adminCtx(), []string{"mv"}, nil); err != nil {
		t.Fatal(err)
	}
	out := analyze(t, cat, adminCtx(), "SELECT * FROM mv")
	if !plan.Contains(out, func(n plan.Node) bool { _, ok := n.(*plan.Scan); return ok }) {
		t.Error("MV should scan its backing storage")
	}
}

func TestTempViews(t *testing.T) {
	cat := newWorld(t)
	a := New(cat, adminCtx())
	tv, err := sql.ParseQuery("SELECT amount FROM sales WHERE region = 'US'")
	if err != nil {
		t.Fatal(err)
	}
	a.TempViews = map[string]plan.Node{"us_sales": tv}
	q, _ := sql.ParseQuery("SELECT * FROM us_sales")
	out, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 1 || out.Schema().Fields[0].Name != "amount" {
		t.Fatalf("schema = %s", out.Schema())
	}
	// Another analyzer (session) does not see the temp view.
	b := New(cat, adminCtx())
	q2, _ := sql.ParseQuery("SELECT * FROM us_sales")
	if _, err := b.Analyze(q2); err == nil {
		t.Error("temp view leaked across sessions")
	}
}

func TestSessionAndCatalogUDFs(t *testing.T) {
	cat := newWorld(t)
	a := New(cat, adminCtx())
	a.TempFuncs = map[string]TempFunc{
		"boost": {
			Params:  []types.Field{{Name: "x", Kind: types.KindFloat64}},
			Returns: types.KindFloat64,
			Body:    "return x * 1.1",
			Owner:   admin,
		},
	}
	q, _ := sql.ParseQuery("SELECT boost(amount) AS boosted FROM sales")
	out, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	var call *plan.UDFCall
	plan.Walk(out, func(n plan.Node) bool {
		if p, ok := n.(*plan.Project); ok {
			for _, e := range p.Exprs {
				plan.WalkExpr(e, func(x plan.Expr) bool {
					if u, ok := x.(*plan.UDFCall); ok {
						call = u
					}
					return true
				})
			}
		}
		return true
	})
	if call == nil {
		t.Fatal("UDF call not resolved")
	}
	if call.Cataloged || call.Owner != admin || call.ResultKind != types.KindFloat64 {
		t.Errorf("call = %+v", call)
	}
	// Wrong arity.
	q2, _ := sql.ParseQuery("SELECT boost(amount, amount) FROM sales")
	if _, err := a.Analyze(q2); err == nil {
		t.Error("arity error missed")
	}
	// Cataloged UDF requires EXECUTE.
	if err := cat.CreateFunction(adminCtx(), []string{"redact"},
		[]types.Field{{Name: "s", Kind: types.KindString}}, types.KindString, "return '***'", false, ""); err != nil {
		t.Fatal(err)
	}
	cat.Grant(adminCtx(), catalog.PrivSelect, []string{"sales"}, alice)
	al := New(cat, ctxFor(alice, catalog.ComputeStandard))
	q3, _ := sql.ParseQuery("SELECT redact(seller) FROM sales")
	if _, err := al.Analyze(q3); !errors.Is(err, catalog.ErrPermission) {
		t.Errorf("err = %v", err)
	}
	cat.Grant(adminCtx(), catalog.PrivExecute, []string{"redact"}, alice)
	out3, err := al.Analyze(q3)
	if err != nil {
		t.Fatal(err)
	}
	var call3 *plan.UDFCall
	plan.Walk(out3, func(n plan.Node) bool {
		if p, ok := n.(*plan.Project); ok {
			plan.WalkExpr(p.Exprs[0], func(x plan.Expr) bool {
				if u, ok := x.(*plan.UDFCall); ok {
					call3 = u
				}
				return true
			})
		}
		return true
	})
	if call3 == nil || !call3.Cataloged || call3.Owner != admin {
		t.Errorf("cataloged call = %+v", call3)
	}
}

func TestUnionTypeCheck(t *testing.T) {
	cat := newWorld(t)
	analyze(t, cat, adminCtx(), "SELECT amount FROM sales UNION ALL SELECT amount FROM sales")
	analyzeErr(t, cat, adminCtx(), "SELECT amount FROM sales UNION ALL SELECT seller FROM sales")
	analyzeErr(t, cat, adminCtx(), "SELECT amount, seller FROM sales UNION ALL SELECT amount FROM sales")
}

func TestScalarFunctionResolution(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(), "SELECT upper(seller) AS u, length(region) AS l FROM sales")
	if out.Schema().Fields[0].Kind != types.KindString || out.Schema().Fields[1].Kind != types.KindInt64 {
		t.Errorf("schema = %s", out.Schema())
	}
	analyzeErr(t, cat, adminCtx(), "SELECT upper(seller, region) FROM sales")
	analyzeErr(t, cat, adminCtx(), "SELECT nosuchfunc(seller) FROM sales")
}

func TestCaseCommonType(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(),
		"SELECT CASE WHEN amount > 10 THEN 1 ELSE 0.5 END AS x FROM sales")
	if out.Schema().Fields[0].Kind != types.KindFloat64 {
		t.Errorf("case kind = %v", out.Schema().Fields[0].Kind)
	}
	analyzeErr(t, cat, adminCtx(),
		"SELECT CASE WHEN amount > 10 THEN 1 ELSE 'no' END FROM sales")
	analyzeErr(t, cat, adminCtx(),
		"SELECT CASE WHEN seller THEN 1 END FROM sales")
}

func TestTimeTravelVersionPropagates(t *testing.T) {
	cat := newWorld(t)
	out := analyze(t, cat, adminCtx(), "SELECT amount FROM sales VERSION AS OF 0")
	found := false
	plan.Walk(out, func(n plan.Node) bool {
		if s, ok := n.(*plan.Scan); ok && s.Version == 0 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("scan version not propagated")
	}
}
