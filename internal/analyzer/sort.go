package analyzer

import (
	"fmt"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// analyzeSort resolves ORDER BY terms. Terms resolve against the child's
// output first (so projection aliases work); a qualified name whose
// qualifier was erased by a projection falls back to unqualified resolution;
// and a term referencing a column the projection dropped is supported by
// temporarily extending the projection with hidden sort columns:
//
//	Project(visible)          -- drops hidden columns again
//	  Sort(orders)
//	    Project(visible + hidden)
//	      child
func (a *Analyzer) analyzeSort(t *plan.Sort) (plan.Node, *scope, error) {
	child, cs, err := a.analyzeNode(t.Child)
	if err != nil {
		return nil, nil, err
	}

	resolveWithFallback := func(e plan.Expr, sc *scope) (plan.Expr, error) {
		r, err := a.resolveExpr(e, sc)
		if err == nil {
			return r, nil
		}
		// Retry with qualifiers stripped (projections erase them).
		stripped := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
			if c, ok := x.(*plan.ColumnRef); ok && c.Qualifier != "" {
				return &plan.ColumnRef{Name: c.Name}
			}
			return x
		})
		if stripped != e {
			if r2, err2 := a.resolveExpr(stripped, sc); err2 == nil {
				return r2, nil
			}
		}
		return nil, err
	}

	orders := make([]plan.SortOrder, len(t.Orders))
	var missing []int // order terms that did not resolve against the output
	for i, o := range t.Orders {
		e, err := resolveWithFallback(o.Expr, cs)
		if err != nil {
			missing = append(missing, i)
			orders[i] = plan.SortOrder{Expr: nil, Desc: o.Desc}
			continue
		}
		if !e.Type().Orderable() {
			return nil, nil, fmt.Errorf("analyzer: cannot ORDER BY %s of type %s", plan.RedactedString(e), e.Type())
		}
		orders[i] = plan.SortOrder{Expr: e, Desc: o.Desc}
	}
	if len(missing) == 0 {
		return &plan.Sort{Orders: orders, Child: child}, cs, nil
	}

	// Hidden-column path: only possible when the child is a projection whose
	// input still has the referenced columns.
	proj, ok := child.(*plan.Project)
	if !ok {
		e := t.Orders[missing[0]].Expr
		return nil, nil, fmt.Errorf("analyzer: ORDER BY %s does not resolve against the select list", plan.RedactedString(e))
	}
	innerScope := scopeFromSchema("", proj.Child.Schema(), 0)
	extended := append([]plan.Expr{}, proj.Exprs...)
	extSchema := proj.OutSchema.Clone()
	for _, mi := range missing {
		e, err := resolveWithFallback(t.Orders[mi].Expr, innerScope)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzer: ORDER BY %s: %w", plan.RedactedString(t.Orders[mi].Expr), err)
		}
		if !e.Type().Orderable() {
			return nil, nil, fmt.Errorf("analyzer: cannot ORDER BY %s of type %s", plan.RedactedString(e), e.Type())
		}
		hiddenIdx := len(extended)
		name := fmt.Sprintf("__sort%d", mi)
		extended = append(extended, &plan.Alias{Child: e, Name: name})
		extSchema.Fields = append(extSchema.Fields, types.Field{Name: name, Kind: e.Type(), Nullable: true})
		orders[mi] = plan.SortOrder{
			Expr: &plan.BoundRef{Index: hiddenIdx, Name: name, Kind: e.Type()},
			Desc: t.Orders[mi].Desc,
		}
	}
	extProj := &plan.Project{Exprs: extended, Child: proj.Child, OutSchema: extSchema}
	sorted := &plan.Sort{Orders: orders, Child: extProj}
	// Drop the hidden columns again.
	visible := make([]plan.Expr, proj.OutSchema.Len())
	for i, f := range proj.OutSchema.Fields {
		visible[i] = &plan.BoundRef{Index: i, Name: f.Name, Kind: f.Kind}
	}
	final := &plan.Project{Exprs: visible, Child: sorted, OutSchema: proj.OutSchema}
	return final, scopeFromSchema("", proj.OutSchema, 0), nil
}
