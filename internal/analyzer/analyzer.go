// Package analyzer resolves unresolved logical plans against the catalog:
// name resolution, view expansion, type checking, star expansion, aggregate
// rewriting — and, critically for Lakeguard, governance policy injection.
// Row filters and column masks are woven into the plan under SecureView
// barriers during analysis, so by the time a plan executes there is no
// unguarded path to governed data. Relations whose policies cannot be
// enforced on the requesting compute resolve to RemoteScan leaves for
// external FGAC.
package analyzer

import (
	"context"
	"fmt"
	"strings"

	"lakeguard/internal/catalog"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// TempFunc is a session-scoped (ephemeral) UDF definition.
type TempFunc struct {
	Params  []types.Field
	Returns types.Kind
	Body    string
	Owner   string
	// Resources names a specialized execution environment requirement.
	Resources string
}

// Analyzer resolves plans for one (user, compute) request context.
type Analyzer struct {
	Cat *catalog.Catalog
	Ctx catalog.RequestContext
	// TempViews maps lower-cased names to unresolved plans registered in the
	// session (invisible to other sessions).
	TempViews map[string]plan.Node
	// TempFuncs maps lower-cased names to session UDFs.
	TempFuncs map[string]TempFunc

	viewStack []string
}

// MaxViewDepth bounds nested view expansion (cycle guard).
const MaxViewDepth = 16

// New creates an analyzer.
func New(cat *catalog.Catalog, ctx catalog.RequestContext) *Analyzer {
	return &Analyzer{Cat: cat, Ctx: ctx}
}

// Analyze resolves a plan. The input is not mutated.
func (a *Analyzer) Analyze(n plan.Node) (plan.Node, error) {
	out, _, err := a.analyzeNode(n)
	return out, err
}

// AnalyzeCtx is Analyze under a telemetry span: name resolution and policy
// compilation are where grants are checked and row filters/column masks are
// attached, so the analysis phase is always visible in a query's trace.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, n plan.Node) (plan.Node, error) {
	_, sp := telemetry.StartSpan(ctx, "analyzer.analyze")
	sp.SetAttr("user", a.Ctx.User)
	out, err := a.Analyze(n)
	sp.EndErr(err)
	return out, err
}

// AnalyzeExpr resolves a standalone expression against a schema (used for
// policy expressions and remote-scan filters).
func (a *Analyzer) AnalyzeExpr(e plan.Expr, schema *types.Schema) (plan.Expr, error) {
	return a.resolveExpr(e, scopeFromSchema("", schema, 0))
}

func (a *Analyzer) analyzeNode(n plan.Node) (plan.Node, *scope, error) {
	switch t := n.(type) {
	case *plan.UnresolvedRelation:
		return a.resolveRelation(t)

	case *plan.LocalRelation:
		return t, scopeFromSchema("", t.Data.Schema, 0), nil

	case *plan.Scan:
		return t, scopeFromSchema(lastPart(t.Table), t.Schema(), 0), nil

	case *plan.RemoteScan:
		return t, scopeFromSchema(lastPart(t.Relation), t.OutSchema, 0), nil

	case *plan.SubqueryAlias:
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		return &plan.SubqueryAlias{Name: t.Name, Child: child}, cs.withQualifier(t.Name), nil

	case *plan.SecureView:
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		return &plan.SecureView{Name: t.Name, PolicyKinds: t.PolicyKinds, Labels: t.Labels, Child: child}, cs, nil

	case *plan.Filter:
		if agg, ok := t.Child.(*plan.Aggregate); ok {
			// HAVING clause: resolve with aggregate machinery.
			return a.analyzeAggregate(agg, t.Cond)
		}
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		cond, err := a.resolveExpr(t.Cond, cs)
		if err != nil {
			return nil, nil, err
		}
		if cond.Type() != types.KindBool {
			return nil, nil, fmt.Errorf("analyzer: WHERE condition must be boolean, got %s", cond.Type())
		}
		if containsAggCall(cond) {
			return nil, nil, fmt.Errorf("analyzer: aggregate functions are not allowed in WHERE; use HAVING")
		}
		return &plan.Filter{Cond: cond, Child: child}, cs, nil

	case *plan.Project:
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		items, err := a.expandStars(t.Exprs, cs)
		if err != nil {
			return nil, nil, err
		}
		resolved := make([]plan.Expr, len(items))
		outSchema := &types.Schema{Fields: make([]types.Field, len(items))}
		for i, item := range items {
			r, err := a.resolveExpr(item, cs)
			if err != nil {
				return nil, nil, err
			}
			if containsAggCall(r) {
				return nil, nil, fmt.Errorf("analyzer: aggregate %s is not allowed without GROUP BY context", plan.RedactedString(r))
			}
			resolved[i] = r
			outSchema.Fields[i] = types.Field{Name: plan.OutputName(r), Kind: r.Type(), Nullable: true}
		}
		p := &plan.Project{Exprs: resolved, Child: child, OutSchema: outSchema}
		return p, scopeFromSchema("", outSchema, 0), nil

	case *plan.Aggregate:
		return a.analyzeAggregate(t, nil)

	case *plan.Join:
		return a.analyzeJoin(t)

	case *plan.Sort:
		return a.analyzeSort(t)

	case *plan.Limit:
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		if t.N < 0 || t.Offset < 0 {
			return nil, nil, fmt.Errorf("analyzer: LIMIT/OFFSET must be non-negative")
		}
		return &plan.Limit{N: t.N, Offset: t.Offset, Child: child}, cs, nil

	case *plan.Distinct:
		child, cs, err := a.analyzeNode(t.Child)
		if err != nil {
			return nil, nil, err
		}
		return &plan.Distinct{Child: child}, cs, nil

	case *plan.Union:
		l, ls, err := a.analyzeNode(t.L)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := a.analyzeNode(t.R)
		if err != nil {
			return nil, nil, err
		}
		lsch, rsch := l.Schema(), r.Schema()
		if lsch.Len() != rsch.Len() {
			return nil, nil, fmt.Errorf("analyzer: UNION arity mismatch: %d vs %d", lsch.Len(), rsch.Len())
		}
		for i := range lsch.Fields {
			if lsch.Fields[i].Kind != rsch.Fields[i].Kind {
				return nil, nil, fmt.Errorf("analyzer: UNION column %d type mismatch: %s vs %s",
					i+1, lsch.Fields[i].Kind, rsch.Fields[i].Kind)
			}
		}
		return &plan.Union{L: l, R: r}, ls, nil
	}
	return nil, nil, fmt.Errorf("analyzer: unsupported plan node %T", n)
}

func (a *Analyzer) analyzeJoin(t *plan.Join) (plan.Node, *scope, error) {
	l, ls, err := a.analyzeNode(t.L)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := a.analyzeNode(t.R)
	if err != nil {
		return nil, nil, err
	}
	full := ls.concat(rs, l.Schema().Len())
	var cond plan.Expr
	if t.Cond != nil {
		cond, err = a.resolveExpr(t.Cond, full)
		if err != nil {
			return nil, nil, err
		}
		if cond.Type() != types.KindBool {
			return nil, nil, fmt.Errorf("analyzer: join condition must be boolean, got %s", cond.Type())
		}
	} else if t.Type != plan.JoinCross {
		return nil, nil, fmt.Errorf("analyzer: %s join requires an ON condition", t.Type)
	}
	j := &plan.Join{Type: t.Type, Cond: cond, L: l, R: r}
	switch t.Type {
	case plan.JoinLeftSemi, plan.JoinLeftAnti:
		return j, ls, nil
	}
	return j, full, nil
}

// expandStars replaces Star items with column references from the scope.
func (a *Analyzer) expandStars(items []plan.Expr, sc *scope) ([]plan.Expr, error) {
	var out []plan.Expr
	for _, item := range items {
		star, ok := item.(*plan.Star)
		if !ok {
			out = append(out, item)
			continue
		}
		cols := sc.columnsFor(star.Qualifier)
		if len(cols) == 0 {
			return nil, fmt.Errorf("analyzer: %s matches no columns", star.Qualifier+".*")
		}
		for _, c := range cols {
			out = append(out, &plan.BoundRef{Index: c.index, Name: c.name, Kind: c.kind})
		}
	}
	return out, nil
}

func lastPart(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func containsAggCall(e plan.Expr) bool {
	return plan.ExprContains(e, func(x plan.Expr) bool {
		if _, ok := x.(*plan.AggFunc); ok {
			return true
		}
		if f, ok := x.(*plan.FuncCall); ok {
			return IsAggregateName(f.Name)
		}
		return false
	})
}

// ParseAndAnalyze parses SQL and analyzes the resulting query plan.
func (a *Analyzer) ParseAndAnalyze(sqlText string) (plan.Node, error) {
	q, err := sql.ParseQuery(sqlText)
	if err != nil {
		return nil, err
	}
	return a.Analyze(q)
}
