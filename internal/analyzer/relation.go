package analyzer

import (
	"fmt"
	"strings"

	"lakeguard/internal/catalog"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// resolveRelation turns an UnresolvedRelation into one of:
//
//   - a session temp view's plan,
//   - a Scan with injected policies under a SecureView (tables on trusted
//     compute),
//   - a re-analyzed view body under a SecureView (views, definer rights),
//   - a Scan of a materialized view's backing storage,
//   - a RemoteScan leaf when the catalog marks the relation as not locally
//     processable (external FGAC, paper §3.4).
func (a *Analyzer) resolveRelation(r *plan.UnresolvedRelation) (plan.Node, *scope, error) {
	// Session temp views shadow catalog objects for single-part names.
	if len(r.Parts) == 1 {
		if tv, ok := a.TempViews[strings.ToLower(r.Parts[0])]; ok {
			node, sc, err := a.analyzeNode(tv)
			if err != nil {
				return nil, nil, fmt.Errorf("analyzer: temp view %q: %w", r.Parts[0], err)
			}
			return &plan.SubqueryAlias{Name: r.Parts[0], Child: node}, sc.withQualifier(r.Parts[0]), nil
		}
	}

	meta, err := a.Cat.ResolveTable(a.Ctx, r.Parts)
	if err != nil {
		return nil, nil, err
	}

	if !meta.LocalProcessingAllowed {
		rs := &plan.RemoteScan{
			Relation:    meta.FullName,
			OutSchema:   meta.Schema,
			PushedLimit: -1,
		}
		return rs, scopeFromSchema(lastPart(meta.FullName), meta.Schema, 0), nil
	}

	switch meta.Type {
	case catalog.TypeTable:
		return a.resolveTable(r, meta)
	case catalog.TypeView:
		return a.resolveView(meta)
	case catalog.TypeMaterializedView:
		return a.resolveMaterializedView(r, meta)
	}
	return nil, nil, fmt.Errorf("analyzer: unsupported object type %s for %s", meta.Type, meta.FullName)
}

// resolveTable builds Scan → [Filter rowFilter] → [Project masks] →
// [SecureView]. Row filters see unmasked values; masks rewrite the output.
func (a *Analyzer) resolveTable(r *plan.UnresolvedRelation, meta *catalog.TableMeta) (plan.Node, *scope, error) {
	scan := &plan.Scan{Table: meta.FullName, TableSchema: meta.Schema, Version: r.AsOfVersion, RunAsUser: a.Ctx.User}
	tableScope := scopeFromSchema(lastPart(meta.FullName), meta.Schema, 0)
	var node plan.Node = scan
	var kinds []string
	var labels []plan.Label

	if meta.RowFilterSQL != "" {
		filterExpr, err := a.parsePolicyExpr(meta.RowFilterSQL, meta.FullName, "row filter")
		if err != nil {
			return nil, nil, err
		}
		resolved, err := a.resolveExpr(filterExpr, tableScope)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzer: row filter on %s: %w", meta.FullName, err)
		}
		if resolved.Type() != types.KindBool {
			return nil, nil, fmt.Errorf("analyzer: row filter on %s must be boolean", meta.FullName)
		}
		node = &plan.Filter{Cond: resolved, Child: node}
		kinds = append(kinds, "row_filter")
		labels = append(labels, plan.Label{Kind: plan.LabelRowFilter, Securable: meta.FullName})
		// An identity-dependent filter (CURRENT_USER, group membership)
		// scopes rows to a tenant, not just a predicate: escaping it is a
		// cross-tenant leak, so it carries a second, stronger obligation.
		if identityDependent(resolved) {
			labels = append(labels, plan.Label{Kind: plan.LabelTenantScope, Securable: meta.FullName})
		}
	}

	if len(meta.ColumnMasks) > 0 {
		exprs := make([]plan.Expr, meta.Schema.Len())
		for i, f := range meta.Schema.Fields {
			ref := &plan.BoundRef{Index: i, Name: f.Name, Kind: f.Kind}
			maskSQL, masked := meta.ColumnMasks[strings.ToLower(f.Name)]
			if !masked {
				exprs[i] = ref
				continue
			}
			maskExpr, err := a.parsePolicyExpr(maskSQL, meta.FullName, "column mask")
			if err != nil {
				return nil, nil, err
			}
			resolved, err := a.resolveExpr(maskExpr, tableScope)
			if err != nil {
				return nil, nil, fmt.Errorf("analyzer: column mask on %s.%s: %w", meta.FullName, f.Name, err)
			}
			exprs[i] = &plan.Alias{Child: castIfNeeded(resolved, f.Kind), Name: f.Name}
			labels = append(labels, plan.Label{
				Kind: plan.LabelColumnMask, Securable: meta.FullName, Column: strings.ToLower(f.Name),
			})
		}
		node = &plan.Project{Exprs: exprs, Child: node, OutSchema: meta.Schema}
		kinds = append(kinds, "column_mask")
	}

	if len(kinds) > 0 {
		node = &plan.SecureView{Name: meta.FullName, PolicyKinds: kinds, Labels: labels, Child: node}
	}
	return node, tableScope, nil
}

// identityDependent reports whether a resolved policy expression references
// the session identity (CURRENT_USER or IS_ACCOUNT_GROUP_MEMBER).
func identityDependent(e plan.Expr) bool {
	return plan.ExprContains(e, func(x plan.Expr) bool {
		switch x.(type) {
		case *plan.CurrentUser, *plan.GroupMember:
			return true
		}
		return false
	})
}

func (a *Analyzer) parsePolicyExpr(src, securable, what string) (plan.Expr, error) {
	e, err := sql.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("analyzer: invalid %s stored on %s: %w", what, securable, err)
	}
	return e, nil
}

// resolveView expands a view definition with definer rights: the body is
// analyzed under the view owner's identity (so the querying user needs no
// permission on underlying tables), while dynamic functions like
// CURRENT_USER still evaluate as the *querying* user at runtime.
func (a *Analyzer) resolveView(meta *catalog.TableMeta) (plan.Node, *scope, error) {
	if len(a.viewStack) >= MaxViewDepth {
		return nil, nil, fmt.Errorf("analyzer: view nesting exceeds %d (cycle through %s?)", MaxViewDepth, meta.FullName)
	}
	for _, v := range a.viewStack {
		if v == meta.FullName {
			return nil, nil, fmt.Errorf("analyzer: cyclic view reference through %s", meta.FullName)
		}
	}
	body, err := sql.ParseQuery(meta.ViewText)
	if err != nil {
		return nil, nil, fmt.Errorf("analyzer: view %s has invalid definition: %w", meta.FullName, err)
	}
	ownerCtx := a.Ctx
	ownerCtx.User = meta.Owner
	sub := &Analyzer{
		Cat:       a.Cat,
		Ctx:       ownerCtx,
		viewStack: append(a.viewStack, meta.FullName),
		// Deliberately no TempViews/TempFuncs: views cannot capture session
		// state.
	}
	resolved, _, err := sub.analyzeNode(body)
	if err != nil {
		return nil, nil, fmt.Errorf("analyzer: expanding view %s: %w", meta.FullName, err)
	}
	name := lastPart(meta.FullName)
	node := &plan.SubqueryAlias{
		Name: name,
		Child: &plan.SecureView{
			Name: meta.FullName, PolicyKinds: []string{"view"}, Child: resolved,
		},
	}
	return node, scopeFromSchema("", resolved.Schema(), 0).withQualifier(name), nil
}

// resolveMaterializedView scans the MV's precomputed backing storage.
func (a *Analyzer) resolveMaterializedView(r *plan.UnresolvedRelation, meta *catalog.TableMeta) (plan.Node, *scope, error) {
	if !meta.MVFresh {
		return nil, nil, fmt.Errorf("analyzer: materialized view %s has never been refreshed; run REFRESH MATERIALIZED VIEW", meta.FullName)
	}
	scan := &plan.Scan{Table: meta.FullName, TableSchema: meta.Schema, Version: r.AsOfVersion, RunAsUser: a.Ctx.User}
	node := &plan.SecureView{Name: meta.FullName, PolicyKinds: []string{"materialized_view"}, Child: scan}
	return node, scopeFromSchema(lastPart(meta.FullName), meta.Schema, 0), nil
}
