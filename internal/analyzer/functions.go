package analyzer

import (
	"fmt"
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// builtinSig describes one scalar builtin: argument arity bounds and a
// result-kind rule given resolved argument kinds.
type builtinSig struct {
	minArgs, maxArgs int
	result           func(args []plan.Expr) (types.Kind, error)
}

func fixedKind(k types.Kind) func([]plan.Expr) (types.Kind, error) {
	return func([]plan.Expr) (types.Kind, error) { return k, nil }
}

func sameAsArg(i int) func([]plan.Expr) (types.Kind, error) {
	return func(args []plan.Expr) (types.Kind, error) { return args[i].Type(), nil }
}

func numericResult(args []plan.Expr) (types.Kind, error) {
	k := args[0].Type()
	if !k.Numeric() {
		return 0, fmt.Errorf("expected a numeric argument, got %s", k)
	}
	return k, nil
}

// stringArg0 requires the first argument to be a string and returns kind k.
func stringArg0(k types.Kind) func([]plan.Expr) (types.Kind, error) {
	return func(args []plan.Expr) (types.Kind, error) {
		if at := args[0].Type(); at != types.KindString && at != types.KindNull {
			return 0, fmt.Errorf("expected a string argument, got %s", at)
		}
		return k, nil
	}
}

// scalarBuiltins is the engine's scalar function library.
var scalarBuiltins = map[string]builtinSig{
	"upper":     {1, 1, stringArg0(types.KindString)},
	"lower":     {1, 1, stringArg0(types.KindString)},
	"length":    {1, 1, stringArg0(types.KindInt64)},
	"trim":      {1, 1, stringArg0(types.KindString)},
	"concat":    {1, 16, fixedKind(types.KindString)},
	"substr":    {2, 3, stringArg0(types.KindString)},
	"substring": {2, 3, stringArg0(types.KindString)},
	"abs":       {1, 1, numericResult},
	"round":     {1, 2, fixedKind(types.KindFloat64)},
	"floor":     {1, 1, fixedKind(types.KindFloat64)},
	"ceil":      {1, 1, fixedKind(types.KindFloat64)},
	"sqrt":      {1, 1, fixedKind(types.KindFloat64)},
	"coalesce":  {1, 16, sameAsArg(0)},
	"nullif":    {2, 2, sameAsArg(0)},
	"sha256":    {1, 1, stringArg0(types.KindString)},
	"if":        {3, 3, sameAsArg(1)},
	"year":      {1, 1, fixedKind(types.KindInt64)},
	"month":     {1, 1, fixedKind(types.KindInt64)},
	"day":       {1, 1, fixedKind(types.KindInt64)},
	"greatest":  {2, 16, sameAsArg(0)},
	"least":     {2, 16, sameAsArg(0)},
}

// IsScalarBuiltin reports whether name is an engine builtin (used by the
// optimizer to distinguish cheap expressions from sandboxed UDF calls).
func IsScalarBuiltin(name string) bool {
	_, ok := scalarBuiltins[strings.ToLower(name)]
	return ok
}

// aggKinds maps aggregate function names to a result-kind rule.
func aggResultKind(name string, arg plan.Expr) (types.Kind, error) {
	switch name {
	case "count":
		return types.KindInt64, nil
	case "sum":
		if arg == nil {
			return 0, fmt.Errorf("SUM requires an argument")
		}
		k := arg.Type()
		if !k.Numeric() {
			return 0, fmt.Errorf("SUM requires a numeric argument, got %s", k)
		}
		return k, nil
	case "avg":
		if arg == nil || !arg.Type().Numeric() {
			return 0, fmt.Errorf("AVG requires a numeric argument")
		}
		return types.KindFloat64, nil
	case "min", "max":
		if arg == nil {
			return 0, fmt.Errorf("%s requires an argument", strings.ToUpper(name))
		}
		if !arg.Type().Orderable() {
			return 0, fmt.Errorf("%s requires an orderable argument, got %s", strings.ToUpper(name), arg.Type())
		}
		return arg.Type(), nil
	}
	return 0, fmt.Errorf("unknown aggregate %q", name)
}

// IsAggregateName reports whether name is an aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToLower(name) {
	case "sum", "count", "min", "max", "avg":
		return true
	}
	return false
}
