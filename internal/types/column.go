package types

import "fmt"

// Column is a typed vector of values with validity tracking. Columns are
// immutable once built; operators construct new columns via Builder.
type Column struct {
	kind  Kind
	nulls []bool // nil means "no nulls"
	ints  []int64
	flts  []float64
	strs  []string
	n     int
}

// Kind returns the column's scalar kind.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int { return c.n }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.nulls != nil && c.nulls[i] }

// HasNulls reports whether any row is NULL.
func (c *Column) HasNulls() bool {
	if c.nulls == nil {
		return false
	}
	for _, b := range c.nulls {
		if b {
			return true
		}
	}
	return false
}

// Int64 returns the integer payload of row i (valid for BOOLEAN, BIGINT,
// DATE, TIMESTAMP columns).
func (c *Column) Int64(i int) int64 { return c.ints[i] }

// Float64 returns the float payload of row i.
func (c *Column) Float64(i int) float64 { return c.flts[i] }

// StringAt returns the string payload of row i.
func (c *Column) StringAt(i int) string { return c.strs[i] }

// Int64s exposes the raw integer payload (BOOLEAN/BIGINT/DATE/TIMESTAMP
// columns). The slice is shared with the column and must not be mutated;
// it exists so vectorized kernels can run over whole columns without boxing
// each row into a Value.
func (c *Column) Int64s() []int64 { return c.ints }

// Float64s exposes the raw DOUBLE payload (shared, read-only).
func (c *Column) Float64s() []float64 { return c.flts }

// Strings exposes the raw STRING/BINARY payload (shared, read-only).
func (c *Column) Strings() []string { return c.strs }

// NullMask exposes the validity mask; nil means no NULLs (shared, read-only).
func (c *Column) NullMask() []bool { return c.nulls }

// NewInt64Column wraps a raw integer payload as a column. The column takes
// ownership of the slices; nulls may be nil (no NULLs) or len(vals).
func NewInt64Column(kind Kind, vals []int64, nulls []bool) *Column {
	return &Column{kind: kind, ints: vals, nulls: nulls, n: len(vals)}
}

// NewFloat64Column wraps a raw DOUBLE payload as a column.
func NewFloat64Column(vals []float64, nulls []bool) *Column {
	return &Column{kind: KindFloat64, flts: vals, nulls: nulls, n: len(vals)}
}

// NewStringColumn wraps a raw STRING/BINARY payload as a column.
func NewStringColumn(kind Kind, vals []string, nulls []bool) *Column {
	return &Column{kind: kind, strs: vals, nulls: nulls, n: len(vals)}
}

// Value materializes row i as a scalar Value.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return Null(c.kind)
	}
	switch c.kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		return Value{Kind: c.kind, I: c.ints[i]}
	case KindFloat64:
		return Value{Kind: c.kind, F: c.flts[i]}
	case KindString, KindBinary:
		return Value{Kind: c.kind, S: c.strs[i]}
	}
	return Null(c.kind)
}

// Gather returns a new column with the rows at the given indices, in order.
// It copies raw payload slices directly instead of boxing each row.
func (c *Column) Gather(indices []int) *Column {
	out := &Column{kind: c.kind, n: len(indices)}
	if c.nulls != nil {
		out.nulls = make([]bool, len(indices))
		for j, i := range indices {
			out.nulls[j] = c.nulls[i]
		}
	}
	switch {
	case c.ints != nil:
		out.ints = make([]int64, len(indices))
		for j, i := range indices {
			out.ints[j] = c.ints[i]
		}
	case c.flts != nil:
		out.flts = make([]float64, len(indices))
		for j, i := range indices {
			out.flts[j] = c.flts[i]
		}
	case c.strs != nil:
		out.strs = make([]string, len(indices))
		for j, i := range indices {
			out.strs[j] = c.strs[i]
		}
	}
	return out
}

// GatherPad is Gather with outer-join padding: an index of -1 produces a
// NULL row instead of reading the payload. It works on columns of any
// length, including empty ones (all indices -1), which is how join tails
// synthesize an all-NULL side without materializing source rows.
func (c *Column) GatherPad(indices []int) *Column {
	out := &Column{kind: c.kind, n: len(indices)}
	needNulls := c.nulls != nil
	if !needNulls {
		for _, i := range indices {
			if i < 0 {
				needNulls = true
				break
			}
		}
	}
	if needNulls {
		out.nulls = make([]bool, len(indices))
	}
	switch c.kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		out.ints = make([]int64, len(indices))
		for j, i := range indices {
			if i < 0 {
				out.nulls[j] = true
				continue
			}
			out.ints[j] = c.ints[i]
			if c.nulls != nil {
				out.nulls[j] = c.nulls[i]
			}
		}
	case KindFloat64:
		out.flts = make([]float64, len(indices))
		for j, i := range indices {
			if i < 0 {
				out.nulls[j] = true
				continue
			}
			out.flts[j] = c.flts[i]
			if c.nulls != nil {
				out.nulls[j] = c.nulls[i]
			}
		}
	case KindString, KindBinary:
		out.strs = make([]string, len(indices))
		for j, i := range indices {
			if i < 0 {
				out.nulls[j] = true
				continue
			}
			out.strs[j] = c.strs[i]
			if c.nulls != nil {
				out.nulls[j] = c.nulls[i]
			}
		}
	default:
		for j := range indices {
			if out.nulls == nil {
				out.nulls = make([]bool, len(indices))
			}
			out.nulls[j] = true
		}
	}
	return out
}

// Slice returns a copy of rows [from, to) via bulk payload copies.
func (c *Column) Slice(from, to int) *Column {
	out := &Column{kind: c.kind, n: to - from}
	if c.nulls != nil {
		out.nulls = append([]bool(nil), c.nulls[from:to]...)
	}
	switch {
	case c.ints != nil:
		out.ints = append([]int64(nil), c.ints[from:to]...)
	case c.flts != nil:
		out.flts = append([]float64(nil), c.flts[from:to]...)
	case c.strs != nil:
		out.strs = append([]string(nil), c.strs[from:to]...)
	}
	return out
}

// Builder accumulates values into a Column.
type Builder struct {
	col Column
}

// NewBuilder creates a builder for the given kind with capacity hint n.
func NewBuilder(kind Kind, n int) *Builder {
	b := &Builder{col: Column{kind: kind}}
	switch kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		b.col.ints = make([]int64, 0, n)
	case KindFloat64:
		b.col.flts = make([]float64, 0, n)
	case KindString, KindBinary:
		b.col.strs = make([]string, 0, n)
	}
	return b
}

// Append adds a value, casting numerics if needed; mismatched kinds panic
// because they indicate an analyzer bug, not bad user input.
func (b *Builder) Append(v Value) {
	if v.Null {
		b.AppendNull()
		return
	}
	k := b.col.kind
	if v.Kind != k {
		cast, err := v.Cast(k)
		if err != nil {
			panic(fmt.Sprintf("column builder: cannot append %s to %s column", v.Kind, k))
		}
		v = cast
	}
	switch k {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		b.col.ints = append(b.col.ints, v.I)
	case KindFloat64:
		b.col.flts = append(b.col.flts, v.F)
	case KindString, KindBinary:
		b.col.strs = append(b.col.strs, v.S)
	default:
		panic(fmt.Sprintf("column builder: unsupported kind %v", k))
	}
	if b.col.nulls != nil {
		b.col.nulls = append(b.col.nulls, false)
	}
	b.col.n++
}

// AppendNull adds a NULL row.
func (b *Builder) AppendNull() {
	if b.col.nulls == nil {
		b.col.nulls = make([]bool, b.col.n, b.col.n+1)
	}
	b.col.nulls = append(b.col.nulls, true)
	switch b.col.kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		b.col.ints = append(b.col.ints, 0)
	case KindFloat64:
		b.col.flts = append(b.col.flts, 0)
	case KindString, KindBinary:
		b.col.strs = append(b.col.strs, "")
	}
	b.col.n++
}

// AppendColumn appends every row of src via bulk payload copies. Kinds must
// match for the fast path; mismatched kinds fall back to per-value appends
// (which cast numerics like Append).
func (b *Builder) AppendColumn(src *Column) {
	if src.kind != b.col.kind {
		for i := 0; i < src.n; i++ {
			b.Append(src.Value(i))
		}
		return
	}
	if src.nulls != nil {
		if b.col.nulls == nil {
			b.col.nulls = make([]bool, b.col.n, b.col.n+src.n)
		}
		b.col.nulls = append(b.col.nulls, src.nulls...)
	} else if b.col.nulls != nil {
		b.col.nulls = append(b.col.nulls, make([]bool, src.n)...)
	}
	switch b.col.kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		b.col.ints = append(b.col.ints, src.ints...)
	case KindFloat64:
		b.col.flts = append(b.col.flts, src.flts...)
	case KindString, KindBinary:
		b.col.strs = append(b.col.strs, src.strs...)
	}
	b.col.n += src.n
}

// AppendInt64 is a fast path for integer-payload kinds.
func (b *Builder) AppendInt64(v int64) {
	b.col.ints = append(b.col.ints, v)
	if b.col.nulls != nil {
		b.col.nulls = append(b.col.nulls, false)
	}
	b.col.n++
}

// AppendFloat64 is a fast path for DOUBLE columns.
func (b *Builder) AppendFloat64(v float64) {
	b.col.flts = append(b.col.flts, v)
	if b.col.nulls != nil {
		b.col.nulls = append(b.col.nulls, false)
	}
	b.col.n++
}

// AppendString is a fast path for STRING/BINARY columns.
func (b *Builder) AppendString(v string) {
	b.col.strs = append(b.col.strs, v)
	if b.col.nulls != nil {
		b.col.nulls = append(b.col.nulls, false)
	}
	b.col.n++
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return b.col.n }

// Build finalizes and returns the column. The builder must not be reused.
func (b *Builder) Build() *Column { return &b.col }

// ColumnFromValues builds a column of the given kind from scalar values.
func ColumnFromValues(kind Kind, vals []Value) *Column {
	b := NewBuilder(kind, len(vals))
	for _, v := range vals {
		b.Append(v)
	}
	return b.Build()
}

// ConstColumn builds a column repeating v for n rows.
func ConstColumn(v Value, n int) *Column {
	b := NewBuilder(v.Kind, n)
	for i := 0; i < n; i++ {
		b.Append(v)
	}
	return b.Build()
}
