// Package types defines the data model shared by every layer of the system:
// scalar kinds, tagged-union values, schemas, and columnar record batches.
//
// The engine is columnar: data flows between operators as Batch values whose
// columns are typed vectors with validity (null) tracking. Scalar expression
// evaluation uses the Value tagged union to avoid per-cell interface
// allocations.
package types

import "fmt"

// Kind enumerates the scalar data types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the untyped NULL literal.
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt64 is a 64-bit signed integer.
	KindInt64
	// KindFloat64 is a 64-bit IEEE-754 float.
	KindFloat64
	// KindString is a UTF-8 string.
	KindString
	// KindBinary is an opaque byte sequence.
	KindBinary
	// KindDate is a calendar date stored as days since the Unix epoch.
	KindDate
	// KindTimestamp is an instant stored as microseconds since the Unix epoch.
	KindTimestamp
)

var kindNames = [...]string{
	KindNull:      "NULL",
	KindBool:      "BOOLEAN",
	KindInt64:     "BIGINT",
	KindFloat64:   "DOUBLE",
	KindString:    "STRING",
	KindBinary:    "BINARY",
	KindDate:      "DATE",
	KindTimestamp: "TIMESTAMP",
}

// String returns the SQL name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return int(k) < len(kindNames) }

// Numeric reports whether the kind participates in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt64 || k == KindFloat64 }

// Orderable reports whether values of this kind can be compared with </>.
func (k Kind) Orderable() bool {
	switch k {
	case KindBool, KindInt64, KindFloat64, KindString, KindBinary, KindDate, KindTimestamp:
		return true
	}
	return false
}

// KindFromName resolves a SQL type name (case-insensitive, with common
// aliases) to a Kind. The second result is false for unknown names.
func KindFromName(name string) (Kind, bool) {
	switch upper(name) {
	case "BOOLEAN", "BOOL":
		return KindBool, true
	case "BIGINT", "INT", "INTEGER", "LONG", "SMALLINT", "TINYINT":
		return KindInt64, true
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL":
		return KindFloat64, true
	case "STRING", "VARCHAR", "TEXT", "CHAR":
		return KindString, true
	case "BINARY", "BYTES", "BLOB":
		return KindBinary, true
	case "DATE":
		return KindDate, true
	case "TIMESTAMP", "DATETIME":
		return KindTimestamp, true
	}
	return KindNull, false
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
