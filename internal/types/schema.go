package types

import (
	"fmt"
	"strings"
)

// Field is a named, typed column in a schema.
type Field struct {
	Name     string
	Kind     Kind
	Nullable bool
	// Comment is an optional human-readable description carried through
	// catalog metadata.
	Comment string
}

// String renders the field as "name TYPE [NOT NULL]".
func (f Field) String() string {
	s := f.Name + " " + f.Kind.String()
	if !f.Nullable {
		s += " NOT NULL"
	}
	return s
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return &Schema{Fields: fields} }

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.Fields) }

// IndexOf returns the position of the named field (case-insensitive), or -1.
func (s *Schema) IndexOf(name string) int {
	for i, f := range s.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// Field returns the field at position i.
func (s *Schema) Field(i int) Field { return s.Fields[i] }

// Names returns the field names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Project returns a new schema keeping only the fields at the given indices.
func (s *Schema) Project(indices []int) *Schema {
	out := &Schema{Fields: make([]Field, len(indices))}
	for i, idx := range indices {
		out.Fields[i] = s.Fields[idx]
	}
	return out
}

// Concat returns a schema with o's fields appended to s's (used by joins).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Fields: make([]Field, 0, len(s.Fields)+len(o.Fields))}
	out.Fields = append(out.Fields, s.Fields...)
	out.Fields = append(out.Fields, o.Fields...)
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Fields: make([]Field, len(s.Fields))}
	copy(out.Fields, s.Fields)
	return out
}

// Equal reports whether two schemas have identical names and kinds.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Fields) != len(o.Fields) {
		return false
	}
	for i := range s.Fields {
		if !strings.EqualFold(s.Fields[i].Name, o.Fields[i].Name) || s.Fields[i].Kind != o.Fields[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "(a BIGINT, b STRING)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Validate checks the schema for duplicate names and invalid kinds.
func (s *Schema) Validate() error {
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("schema has field with empty name")
		}
		key := strings.ToLower(f.Name)
		if seen[key] {
			return fmt.Errorf("schema has duplicate field %q", f.Name)
		}
		seen[key] = true
		if !f.Kind.Valid() || f.Kind == KindNull {
			return fmt.Errorf("field %q has invalid kind %v", f.Name, f.Kind)
		}
	}
	return nil
}
