package types

import (
	"fmt"
	"strings"
)

// DefaultBatchSize is the row count operators target per batch.
const DefaultBatchSize = 1024

// Batch is a horizontal slice of a result set: a schema plus one column per
// field, all of equal length.
type Batch struct {
	Schema *Schema
	Cols   []*Column
}

// NewBatch pairs a schema with columns, validating the shape.
func NewBatch(schema *Schema, cols []*Column) (*Batch, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("batch has %d columns for schema of %d fields", len(cols), schema.Len())
	}
	n := -1
	for i, c := range cols {
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("batch column %d has %d rows, expected %d", i, c.Len(), n)
		}
	}
	return &Batch{Schema: schema, Cols: cols}, nil
}

// MustBatch is NewBatch that panics on shape errors (engine-internal bugs).
func MustBatch(schema *Schema, cols []*Column) *Batch {
	b, err := NewBatch(schema, cols)
	if err != nil {
		panic(err)
	}
	return b
}

// NumRows returns the row count.
func (b *Batch) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// NumCols returns the column count.
func (b *Batch) NumCols() int { return len(b.Cols) }

// Row materializes row i as a slice of scalar values.
func (b *Batch) Row(i int) []Value {
	row := make([]Value, len(b.Cols))
	for c, col := range b.Cols {
		row[c] = col.Value(i)
	}
	return row
}

// Rows materializes the whole batch as rows of scalars (test/display use).
func (b *Batch) Rows() [][]Value {
	rows := make([][]Value, b.NumRows())
	for i := range rows {
		rows[i] = b.Row(i)
	}
	return rows
}

// Gather returns a new batch with only the rows at the given indices.
func (b *Batch) Gather(indices []int) *Batch {
	cols := make([]*Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(indices)
	}
	return &Batch{Schema: b.Schema, Cols: cols}
}

// Slice returns rows [from, to) as a new batch.
func (b *Batch) Slice(from, to int) *Batch {
	cols := make([]*Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Slice(from, to)
	}
	return &Batch{Schema: b.Schema, Cols: cols}
}

// String renders the batch as an aligned text table (used by Show and the
// SQL shell).
func (b *Batch) String() string { return FormatTable(b.Schema, b.Rows()) }

// FormatTable renders rows under a schema as an aligned text table.
func FormatTable(schema *Schema, rows [][]Value) string {
	headers := schema.Names()
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeSep := func() {
		for _, w := range widths {
			sb.WriteByte('+')
			sb.WriteString(strings.Repeat("-", w+2))
		}
		sb.WriteString("+\n")
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			fmt.Fprintf(&sb, "| %-*s ", widths[i], v)
		}
		sb.WriteString("|\n")
	}
	writeSep()
	writeRow(headers)
	writeSep()
	for _, row := range cells {
		writeRow(row)
	}
	writeSep()
	return sb.String()
}

// BatchBuilder accumulates rows into a batch.
type BatchBuilder struct {
	schema   *Schema
	builders []*Builder
}

// NewBatchBuilder creates a builder for the given schema with capacity hint n.
func NewBatchBuilder(schema *Schema, n int) *BatchBuilder {
	bb := &BatchBuilder{schema: schema, builders: make([]*Builder, schema.Len())}
	for i, f := range schema.Fields {
		bb.builders[i] = NewBuilder(f.Kind, n)
	}
	return bb
}

// AppendRow appends one row of scalar values.
func (bb *BatchBuilder) AppendRow(row []Value) {
	for i, v := range row {
		bb.builders[i].Append(v)
	}
}

// AppendBatch appends every row of b column-wise via bulk payload copies —
// much cheaper than AppendRow per row, which boxes every cell into a Value.
func (bb *BatchBuilder) AppendBatch(b *Batch) {
	for i, c := range b.Cols {
		bb.builders[i].AppendColumn(c)
	}
}

// Column returns the builder for field i (fast-path appends).
func (bb *BatchBuilder) Column(i int) *Builder { return bb.builders[i] }

// Len returns the number of rows appended so far.
func (bb *BatchBuilder) Len() int {
	if len(bb.builders) == 0 {
		return 0
	}
	return bb.builders[0].Len()
}

// Build finalizes the batch. The builder must not be reused.
func (bb *BatchBuilder) Build() *Batch {
	cols := make([]*Column, len(bb.builders))
	for i, b := range bb.builders {
		cols[i] = b.Build()
	}
	return MustBatch(bb.schema, cols)
}
