package types

import (
	"fmt"
	"testing"
)

func intCol(t *testing.T, vals []int64, nullAt map[int]bool) *Column {
	t.Helper()
	b := NewBuilder(KindInt64, len(vals))
	for i, v := range vals {
		if nullAt[i] {
			b.AppendNull()
		} else {
			b.Append(Int64(v))
		}
	}
	return b.Build()
}

func TestAppendColumnBulk(t *testing.T) {
	a := intCol(t, []int64{1, 2, 3}, nil)
	b := intCol(t, []int64{4, 5, 6}, map[int]bool{1: true})

	dst := NewBuilder(KindInt64, 6)
	dst.AppendColumn(a)
	dst.AppendColumn(b)
	got := dst.Build()

	if got.Len() != 6 {
		t.Fatalf("len = %d, want 6", got.Len())
	}
	want := []Value{Int64(1), Int64(2), Int64(3), Int64(4), Null(KindInt64), Int64(6)}
	for i, w := range want {
		if v := got.Value(i); !v.Equal(w) || v.Null != w.Null {
			t.Errorf("row %d = %v, want %v", i, v, w)
		}
	}
}

func TestAppendColumnBackfillsNulls(t *testing.T) {
	// First source has no null mask; appending a nullable source must
	// backfill a correct mask for the earlier rows.
	noNulls := intCol(t, []int64{7, 8}, nil)
	withNulls := intCol(t, []int64{9, 10}, map[int]bool{0: true})
	dst := NewBuilder(KindInt64, 4)
	dst.AppendColumn(noNulls)
	dst.AppendColumn(withNulls)
	got := dst.Build()
	for i, wantNull := range []bool{false, false, true, false} {
		if got.IsNull(i) != wantNull {
			t.Errorf("row %d null = %v, want %v", i, got.IsNull(i), wantNull)
		}
	}
	// And the converse: nullable first, mask-less second.
	dst2 := NewBuilder(KindInt64, 4)
	dst2.AppendColumn(withNulls)
	dst2.AppendColumn(noNulls)
	got2 := dst2.Build()
	for i, wantNull := range []bool{true, false, false, false} {
		if got2.IsNull(i) != wantNull {
			t.Errorf("converse row %d null = %v, want %v", i, got2.IsNull(i), wantNull)
		}
	}
}

func TestAppendColumnKindMismatchCasts(t *testing.T) {
	ints := intCol(t, []int64{1, 2}, map[int]bool{1: true})
	dst := NewBuilder(KindFloat64, 2)
	dst.AppendColumn(ints)
	got := dst.Build()
	if got.Kind() != KindFloat64 || got.Float64(0) != 1.0 || !got.IsNull(1) {
		t.Errorf("cast append produced %v / null=%v", got.Value(0), got.IsNull(1))
	}
}

func TestAppendBatch(t *testing.T) {
	schema := NewSchema(
		Field{Name: "a", Kind: KindInt64, Nullable: true},
		Field{Name: "s", Kind: KindString},
	)
	src := NewBatchBuilder(schema, 2)
	src.AppendRow([]Value{Int64(1), String("x")})
	src.AppendRow([]Value{Null(KindInt64), String("y")})
	b := src.Build()

	dst := NewBatchBuilder(schema, 4)
	dst.AppendBatch(b)
	dst.AppendBatch(b)
	out := dst.Build()
	if out.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", out.NumRows())
	}
	if !out.Cols[0].IsNull(3) || out.Cols[1].StringAt(2) != "x" {
		t.Errorf("batch content wrong:\n%s", out.String())
	}
}

func TestGatherAndSlicePreserveNulls(t *testing.T) {
	c := intCol(t, []int64{10, 11, 12, 13, 14}, map[int]bool{1: true, 3: true})
	g := c.Gather([]int{4, 3, 0})
	if g.Len() != 3 || g.Int64(0) != 14 || !g.IsNull(1) || g.Int64(2) != 10 {
		t.Errorf("gather wrong: %v %v %v", g.Value(0), g.Value(1), g.Value(2))
	}
	s := c.Slice(1, 4)
	if s.Len() != 3 || !s.IsNull(0) || s.Int64(1) != 12 || !s.IsNull(2) {
		t.Errorf("slice wrong: %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}
}

func benchBatches(n, per int) (*Schema, []*Batch) {
	schema := NewSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "score", Kind: KindFloat64, Nullable: true},
		Field{Name: "tag", Kind: KindString},
	)
	batches := make([]*Batch, n)
	for bi := range batches {
		bb := NewBatchBuilder(schema, per)
		for i := 0; i < per; i++ {
			row := []Value{Int64(int64(bi*per + i)), Float64(float64(i) * 0.5), String(fmt.Sprintf("t%d", i%16))}
			if i%11 == 0 {
				row[1] = Null(KindFloat64)
			}
			bb.AppendRow(row)
		}
		batches[bi] = bb.Build()
	}
	return schema, batches
}

// BenchmarkConcatRowWise is the old ExecuteToBatch concat path: every cell
// boxed into a Value and appended one row at a time.
func BenchmarkConcatRowWise(b *testing.B) {
	schema, batches := benchBatches(16, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb := NewBatchBuilder(schema, 16*1024)
		for _, batch := range batches {
			for r := 0; r < batch.NumRows(); r++ {
				bb.AppendRow(batch.Row(r))
			}
		}
		_ = bb.Build()
	}
}

// BenchmarkConcatColumnWise is the bulk path: payload slices appended whole.
func BenchmarkConcatColumnWise(b *testing.B) {
	schema, batches := benchBatches(16, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb := NewBatchBuilder(schema, 16*1024)
		for _, batch := range batches {
			bb.AppendBatch(batch)
		}
		_ = bb.Build()
	}
}
