package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	cases := map[Kind]string{
		KindBool: "BOOLEAN", KindInt64: "BIGINT", KindFloat64: "DOUBLE",
		KindString: "STRING", KindBinary: "BINARY", KindDate: "DATE",
		KindTimestamp: "TIMESTAMP", KindNull: "NULL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	cases := []struct {
		name string
		want Kind
		ok   bool
	}{
		{"bigint", KindInt64, true},
		{"INT", KindInt64, true},
		{"string", KindString, true},
		{"varchar", KindString, true},
		{"double", KindFloat64, true},
		{"boolean", KindBool, true},
		{"date", KindDate, true},
		{"timestamp", KindTimestamp, true},
		{"binary", KindBinary, true},
		{"geometry", KindNull, false},
	}
	for _, c := range cases {
		got, ok := KindFromName(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("KindFromName(%q) = %v,%v want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if got := Int64(42).String(); got != "42" {
		t.Errorf("Int64(42).String() = %q", got)
	}
	if got := Float64(2.5).String(); got != "2.5" {
		t.Errorf("Float64(2.5).String() = %q", got)
	}
	if got := Bool(true).String(); got != "true" {
		t.Errorf("Bool(true).String() = %q", got)
	}
	if got := String("hi").String(); got != "hi" {
		t.Errorf("String(hi).String() = %q", got)
	}
	if got := Null(KindInt64).String(); got != "NULL" {
		t.Errorf("Null.String() = %q", got)
	}
	d, err := DateFromString("2024-12-01")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "2024-12-01" {
		t.Errorf("date round trip = %q", got)
	}
	ts, err := TimestampFromString("2024-12-01 10:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.String(); got != "2024-12-01 10:30:00" {
		t.Errorf("timestamp round trip = %q", got)
	}
}

func TestDateFromStringInvalid(t *testing.T) {
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
	if _, err := TimestampFromString("nope"); err == nil {
		t.Error("expected error for invalid timestamp")
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := String("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral quoting = %q", got)
	}
	if got := Int64(7).SQLLiteral(); got != "7" {
		t.Errorf("int literal = %q", got)
	}
	if got := Null(KindString).SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
	d, _ := DateFromString("2020-01-02")
	if got := d.SQLLiteral(); got != "DATE '2020-01-02'" {
		t.Errorf("date literal = %q", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Float64(1.5), Int64(2), -1},
		{Int64(2), Float64(1.5), 1},
		{String("a"), String("b"), -1},
		{Null(KindInt64), Int64(0), -1},
		{Int64(0), Null(KindInt64), 1},
		{Null(KindInt64), Null(KindString), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if !ok || got != c.want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := String("x").Compare(Int64(1)); ok {
		t.Error("string vs int should be incomparable")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	// Property: Equal values hash identically.
	f := func(i int64, s string, fl float64) bool {
		pairs := [][2]Value{
			{Int64(i), Int64(i)},
			{String(s), String(s)},
			{Float64(fl), Float64(fl)},
			{Null(KindInt64), Null(KindString)},
		}
		for _, p := range pairs {
			if p[0].Equal(p[1]) && p[0].Hash() != p[1].Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNumericCrossKind(t *testing.T) {
	// Integer-valued floats hash like the equal integer, so numeric GROUP BY
	// keys agree with Compare.
	if Int64(5).Hash() != Float64(5).Hash() {
		t.Error("Int64(5) and Float64(5) should hash equal")
	}
	if Float64(5.5).Hash() == Int64(5).Hash() {
		t.Error("5.5 should not collide with 5 by construction")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		v    Value
		to   Kind
		want string
	}{
		{Int64(42), KindString, "42"},
		{String("42"), KindInt64, "42"},
		{String("2.5"), KindFloat64, "2.5"},
		{Float64(2.9), KindInt64, "2"},
		{Bool(true), KindInt64, "1"},
		{Int64(1), KindBool, "true"},
		{String("true"), KindBool, "true"},
		{String("2024-12-01"), KindDate, "2024-12-01"},
	}
	for _, c := range cases {
		got, err := c.v.Cast(c.to)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.v, c.to, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Cast(%v, %v) = %q want %q", c.v, c.to, got.String(), c.want)
		}
	}
	if _, err := String("xyz").Cast(KindInt64); err == nil {
		t.Error("expected cast error for non-numeric string")
	}
	// NULL casts to NULL of target kind.
	n, err := Null(KindString).Cast(KindInt64)
	if err != nil || !n.Null || n.Kind != KindInt64 {
		t.Errorf("NULL cast = %v, %v", n, err)
	}
}

func TestCastPropertyRoundTrip(t *testing.T) {
	// Property: int -> string -> int is identity.
	f := func(i int64) bool {
		s, err := Int64(i).Cast(KindString)
		if err != nil {
			return false
		}
		back, err := s.Cast(KindInt64)
		return err == nil && back.I == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparePropertyAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Int64(a).Compare(Int64(b))
		c2, ok2 := Int64(b).Compare(Int64(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecials(t *testing.T) {
	inf := Float64(math.Inf(1))
	if inf.Hash() == Float64(math.Inf(-1)).Hash() {
		t.Error("+inf and -inf should hash differently")
	}
	c, ok := Float64(math.Inf(-1)).Compare(inf)
	if !ok || c != -1 {
		t.Errorf("-inf < +inf: got %d,%v", c, ok)
	}
}
