package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"time"
)

// Value is a tagged-union scalar. The zero Value is a typed NULL of KindNull.
//
// Storage by kind:
//   - KindBool: I holds 0 or 1
//   - KindInt64, KindDate (days), KindTimestamp (micros): I
//   - KindFloat64: F
//   - KindString, KindBinary: S
type Value struct {
	S    string
	I    int64
	F    float64
	Kind Kind
	Null bool
}

// Null returns a NULL value of the given kind.
func Null(k Kind) Value { return Value{Kind: k, Null: true} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Int64 returns a BIGINT value.
func Int64(i int64) Value { return Value{Kind: KindInt64, I: i} }

// Float64 returns a DOUBLE value.
func Float64(f float64) Value { return Value{Kind: KindFloat64, F: f} }

// String returns a STRING value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Binary returns a BINARY value.
func Binary(b []byte) Value { return Value{Kind: KindBinary, S: string(b)} }

// Date returns a DATE value from days since the Unix epoch.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// Timestamp returns a TIMESTAMP value from microseconds since the Unix epoch.
func Timestamp(micros int64) Value { return Value{Kind: KindTimestamp, I: micros} }

// DateFromString parses a YYYY-MM-DD date.
func DateFromString(s string) (Value, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return Value{}, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// TimestampFromString parses "YYYY-MM-DD HH:MM:SS" or RFC3339 timestamps.
func TimestampFromString(s string) (Value, error) {
	for _, layout := range []string{"2006-01-02 15:04:05", time.RFC3339, "2006-01-02"} {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return Timestamp(t.UnixMicro()), nil
		}
	}
	return Value{}, fmt.Errorf("invalid timestamp %q", s)
}

// AsBool returns the boolean payload. It panics on kind mismatch in tests but
// is lenient (false) for NULLs.
func (v Value) AsBool() bool { return !v.Null && v.I != 0 }

// AsInt64 returns the integer payload (also used for DATE and TIMESTAMP).
func (v Value) AsInt64() int64 { return v.I }

// AsFloat64 returns the float payload, widening integers.
func (v Value) AsFloat64() float64 {
	if v.Kind == KindInt64 {
		return float64(v.I)
	}
	return v.F
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.S }

// AsBytes returns the binary payload.
func (v Value) AsBytes() []byte { return []byte(v.S) }

// IsTrue reports whether the value is a non-NULL true boolean.
func (v Value) IsTrue() bool { return v.Kind == KindBool && !v.Null && v.I != 0 }

// String renders the value for display and plan output.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBinary:
		return fmt.Sprintf("X'%x'", v.S)
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	case KindTimestamp:
		return time.UnixMicro(v.I).UTC().Format("2006-01-02 15:04:05")
	}
	return "NULL"
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindString:
		return "'" + escapeSQL(v.S) + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	case KindTimestamp:
		return "TIMESTAMP '" + v.String() + "'"
	}
	return v.String()
}

func escapeSQL(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Equal reports SQL equality treating NULL = NULL as true (useful for
// grouping and set semantics; expression-level equality handles three-valued
// logic separately).
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return v.Null == o.Null
	}
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values. NULL sorts before any non-NULL. The second
// result is false when the kinds are incomparable.
func (v Value) Compare(o Value) (int, bool) {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0, true
		case v.Null:
			return -1, true
		default:
			return 1, true
		}
	}
	// Numeric cross-kind comparison widens to float.
	if v.Kind.Numeric() && o.Kind.Numeric() && v.Kind != o.Kind {
		return cmpFloat(v.AsFloat64(), o.AsFloat64()), true
	}
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		return cmpInt(v.I, o.I), true
	case KindFloat64:
		return cmpFloat(v.F, o.F), true
	case KindString, KindBinary:
		switch {
		case v.S < o.S:
			return -1, true
		case v.S > o.S:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

var hashSeed = maphash.MakeSeed()

// Hash returns a stable-within-process hash of the value, suitable for hash
// aggregation and hash joins. Integer-valued floats hash like integers so
// numeric cross-kind grouping is consistent with Compare.
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	if v.Null {
		h.WriteByte(0)
		return h.Sum64()
	}
	switch v.Kind {
	case KindBool, KindInt64, KindDate, KindTimestamp:
		h.WriteByte(1)
		writeUint64(&h, uint64(v.I))
	case KindFloat64:
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			h.WriteByte(1)
			writeUint64(&h, uint64(int64(v.F)))
		} else {
			h.WriteByte(2)
			writeUint64(&h, math.Float64bits(v.F))
		}
	case KindString, KindBinary:
		h.WriteByte(3)
		h.WriteString(v.S)
	default:
		h.WriteByte(4)
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}

// Cast converts the value to the target kind, following SQL cast semantics.
func (v Value) Cast(to Kind) (Value, error) {
	if v.Null {
		return Null(to), nil
	}
	if v.Kind == to {
		return v, nil
	}
	switch to {
	case KindBool:
		switch v.Kind {
		case KindInt64:
			return Bool(v.I != 0), nil
		case KindString:
			switch upper(v.S) {
			case "TRUE", "T", "1":
				return Bool(true), nil
			case "FALSE", "F", "0":
				return Bool(false), nil
			}
		}
	case KindInt64:
		switch v.Kind {
		case KindBool:
			return Int64(v.I), nil
		case KindFloat64:
			return Int64(int64(v.F)), nil
		case KindString:
			i, err := strconv.ParseInt(v.S, 10, 64)
			if err == nil {
				return Int64(i), nil
			}
		case KindDate, KindTimestamp:
			return Int64(v.I), nil
		}
	case KindFloat64:
		switch v.Kind {
		case KindInt64:
			return Float64(float64(v.I)), nil
		case KindString:
			f, err := strconv.ParseFloat(v.S, 64)
			if err == nil {
				return Float64(f), nil
			}
		}
	case KindString:
		return String(v.String()), nil
	case KindBinary:
		if v.Kind == KindString {
			return Binary([]byte(v.S)), nil
		}
	case KindDate:
		switch v.Kind {
		case KindString:
			return DateFromString(v.S)
		case KindTimestamp:
			return Date(v.I / (86400 * 1_000_000)), nil
		}
	case KindTimestamp:
		switch v.Kind {
		case KindString:
			return TimestampFromString(v.S)
		case KindDate:
			return Timestamp(v.I * 86400 * 1_000_000), nil
		}
	}
	return Value{}, fmt.Errorf("cannot cast %s %q to %s", v.Kind, v.String(), to)
}
