package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Kind: KindInt64},
		Field{Name: "name", Kind: KindString, Nullable: true},
		Field{Name: "score", Kind: KindFloat64, Nullable: true},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.IndexOf("NAME") != 1 {
		t.Errorf("IndexOf case-insensitive failed: %d", s.IndexOf("NAME"))
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf missing should be -1")
	}
	p := s.Project([]int{2, 0})
	if p.Fields[0].Name != "score" || p.Fields[1].Name != "id" {
		t.Errorf("Project = %v", p.Names())
	}
	c := s.Concat(NewSchema(Field{Name: "x", Kind: KindBool}))
	if c.Len() != 4 || c.Fields[3].Name != "x" {
		t.Errorf("Concat = %v", c.Names())
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone should equal original")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	dup := NewSchema(Field{Name: "a", Kind: KindInt64}, Field{Name: "A", Kind: KindString})
	if err := dup.Validate(); err == nil {
		t.Error("expected duplicate-name error")
	}
	empty := NewSchema(Field{Name: "", Kind: KindInt64})
	if err := empty.Validate(); err == nil {
		t.Error("expected empty-name error")
	}
	bad := NewSchema(Field{Name: "a", Kind: KindNull})
	if err := bad.Validate(); err == nil {
		t.Error("expected invalid-kind error")
	}
}

func TestColumnBuilderRoundTrip(t *testing.T) {
	vals := []Value{Int64(1), Null(KindInt64), Int64(3)}
	col := ColumnFromValues(KindInt64, vals)
	if col.Len() != 3 {
		t.Fatalf("len = %d", col.Len())
	}
	if !col.IsNull(1) || col.IsNull(0) || col.IsNull(2) {
		t.Error("null tracking wrong")
	}
	if col.Int64(2) != 3 {
		t.Errorf("col[2] = %d", col.Int64(2))
	}
	if !col.HasNulls() {
		t.Error("HasNulls should be true")
	}
	for i, want := range vals {
		if got := col.Value(i); !got.Equal(want) {
			t.Errorf("Value(%d) = %v want %v", i, got, want)
		}
	}
}

func TestColumnGatherSlice(t *testing.T) {
	col := ColumnFromValues(KindString, []Value{String("a"), String("b"), Null(KindString), String("d")})
	g := col.Gather([]int{3, 0})
	if g.Len() != 2 || g.StringAt(0) != "d" || g.StringAt(1) != "a" {
		t.Errorf("gather result wrong: %v %v", g.Value(0), g.Value(1))
	}
	s := col.Slice(1, 3)
	if s.Len() != 2 || s.StringAt(0) != "b" || !s.IsNull(1) {
		t.Errorf("slice result wrong")
	}
}

func TestConstColumn(t *testing.T) {
	c := ConstColumn(Float64(1.5), 5)
	if c.Len() != 5 || c.Float64(4) != 1.5 {
		t.Error("const column wrong")
	}
}

func TestBatchShapeValidation(t *testing.T) {
	s := NewSchema(Field{Name: "a", Kind: KindInt64}, Field{Name: "b", Kind: KindString})
	good := []*Column{ColumnFromValues(KindInt64, []Value{Int64(1)}), ColumnFromValues(KindString, []Value{String("x")})}
	if _, err := NewBatch(s, good); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if _, err := NewBatch(s, good[:1]); err == nil {
		t.Error("expected column-count error")
	}
	ragged := []*Column{good[0], ColumnFromValues(KindString, []Value{String("x"), String("y")})}
	if _, err := NewBatch(s, ragged); err == nil {
		t.Error("expected ragged-length error")
	}
}

func TestBatchBuilderAndRows(t *testing.T) {
	s := testSchema()
	bb := NewBatchBuilder(s, 4)
	bb.AppendRow([]Value{Int64(1), String("alice"), Float64(0.5)})
	bb.AppendRow([]Value{Int64(2), Null(KindString), Float64(0.7)})
	if bb.Len() != 2 {
		t.Fatalf("builder len = %d", bb.Len())
	}
	b := bb.Build()
	if b.NumRows() != 2 || b.NumCols() != 3 {
		t.Fatalf("batch shape %dx%d", b.NumRows(), b.NumCols())
	}
	row := b.Row(1)
	if row[0].I != 2 || !row[1].Null {
		t.Errorf("row 1 = %v", row)
	}
	out := b.String()
	if !strings.Contains(out, "alice") || !strings.Contains(out, "NULL") {
		t.Errorf("formatted table missing data:\n%s", out)
	}
}

func TestBatchGatherSlice(t *testing.T) {
	s := NewSchema(Field{Name: "n", Kind: KindInt64})
	bb := NewBatchBuilder(s, 5)
	for i := 0; i < 5; i++ {
		bb.AppendRow([]Value{Int64(int64(i * 10))})
	}
	b := bb.Build()
	g := b.Gather([]int{4, 2})
	if g.NumRows() != 2 || g.Cols[0].Int64(0) != 40 || g.Cols[0].Int64(1) != 20 {
		t.Error("batch gather wrong")
	}
	sl := b.Slice(1, 3)
	if sl.NumRows() != 2 || sl.Cols[0].Int64(0) != 10 {
		t.Error("batch slice wrong")
	}
}

func TestColumnPropertyBuildReadIdentity(t *testing.T) {
	// Property: appending arbitrary int64s and reading them back is identity.
	f := func(vals []int64) bool {
		b := NewBuilder(KindInt64, len(vals))
		for _, v := range vals {
			b.AppendInt64(v)
		}
		col := b.Build()
		if col.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if col.Int64(i) != v || col.IsNull(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColumnPropertyStringIdentity(t *testing.T) {
	f := func(vals []string) bool {
		b := NewBuilder(KindString, len(vals))
		for _, v := range vals {
			b.AppendString(v)
		}
		col := b.Build()
		for i, v := range vals {
			if col.StringAt(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderNullsInterleaved(t *testing.T) {
	b := NewBuilder(KindFloat64, 4)
	b.AppendFloat64(1)
	b.AppendNull()
	b.AppendFloat64(3)
	col := b.Build()
	if col.IsNull(0) || !col.IsNull(1) || col.IsNull(2) {
		t.Error("interleaved null tracking broken")
	}
	if col.Float64(2) != 3 {
		t.Error("value after null wrong")
	}
}
