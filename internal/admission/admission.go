// Package admission is the multi-tenant admission controller in front of
// query execution: per-tenant weighted fair queues, a global concurrency
// limit, bounded queue depth, and deadline-aware load shedding.
//
// The controller sits at the Connect layer, before any sandbox slot or
// analyzer work is spent on a request. A request that cannot be admitted
// immediately waits in its tenant's FIFO queue; tenants are dequeued by
// stride scheduling over configured weights, so one greedy tenant flooding
// the gateway only ever competes for its own weighted share. A request is
// shed — rejected with an *OverloadedError carrying a Retry-After hint —
// when its tenant queue is full or when the request's own deadline budget
// cannot survive the predicted queue wait (EWMA of recent service times ×
// queue positions ahead). Shedding is O(µs): no sandbox slot, no analyzer
// pass, no storage I/O is consumed by a rejected request.
//
// All entry points are nil-safe: a nil *Controller admits everything
// immediately, so wiring admission control is optional at every layer.
package admission

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lakeguard/internal/faults"
	"lakeguard/internal/telemetry"
)

// Shed reasons recorded on OverloadedError, audit records, and trace spans.
const (
	ReasonQueueFull = "queue-full"
	ReasonDeadline  = "deadline"
)

// OverloadedError is returned when a request is shed. The Connect layer maps
// it to HTTP 429 with a Retry-After header; connect.Client retries after the
// hinted delay with jitter.
type OverloadedError struct {
	Tenant     string
	Reason     string // ReasonQueueFull or ReasonDeadline
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("admission: tenant %q shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Config tunes one Controller.
type Config struct {
	// MaxConcurrent is the global concurrent-execution limit (default 4).
	MaxConcurrent int
	// MaxQueueDepth bounds each tenant's wait queue (default 16); requests
	// beyond it are shed with ReasonQueueFull.
	MaxQueueDepth int
	// Weights maps tenant → scheduling weight; unlisted tenants get
	// DefaultWeight. A tenant with weight 3 is dequeued 3x as often as a
	// tenant with weight 1 when both have waiters.
	Weights map[string]int
	// DefaultWeight is the weight for tenants not in Weights (default 1).
	DefaultWeight int
	// InitialServiceEstimate seeds the EWMA used to predict queue wait before
	// any request has completed (default 10ms).
	InitialServiceEstimate time.Duration
	// Metrics receives admission.* counters/gauges/histograms (optional).
	Metrics *telemetry.Registry
	// Faults carries the admission.enqueue injection site (optional).
	Faults *faults.Injector
	// OnShed is invoked once per shed decision, outside the controller lock
	// (optional; the Connect layer uses it for audit records).
	OnShed func(tenant, reason string, retryAfter time.Duration)
}

// strideScale is the stride-scheduling numerator: pass += strideScale/weight
// per dequeue, so higher-weight tenants accumulate pass more slowly and are
// picked more often.
const strideScale = 1 << 16

type waiter struct {
	ready chan struct{} // closed by the dispatcher when admitted
	enq   time.Time
}

type tenantState struct {
	name     string
	weight   int
	pass     float64
	queue    []*waiter
	inflight int64
}

// Controller admits requests subject to Config. Safe for concurrent use and
// nil-safe (a nil controller admits everything immediately).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenantState
	inflight int
	queued   int
	ewma     float64 // nanoseconds; EWMA of observed service times

	queuedTotal   *telemetry.Counter
	shedTotal     *telemetry.Counter
	timeoutsTotal *telemetry.Counter
	queueDepth    *telemetry.Gauge
	waitHist      *telemetry.Histogram
}

// NewController builds a controller, applying Config defaults.
func NewController(cfg Config) *Controller {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 16
	}
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	if cfg.InitialServiceEstimate <= 0 {
		cfg.InitialServiceEstimate = 10 * time.Millisecond
	}
	c := &Controller{
		cfg:     cfg,
		tenants: map[string]*tenantState{},
		ewma:    float64(cfg.InitialServiceEstimate),
	}
	c.queuedTotal = cfg.Metrics.Counter("admission.queued")
	c.shedTotal = cfg.Metrics.Counter("admission.shed")
	c.timeoutsTotal = cfg.Metrics.Counter("admission.timeouts")
	c.queueDepth = cfg.Metrics.Gauge("admission.queue_depth")
	c.waitHist = cfg.Metrics.Histogram("admission.wait_ms", nil)
	return c
}

// Ticket is one admitted request's slot. Release must be called exactly once
// when the request finishes; Wait is the time spent queued (0 on the fast
// path).
type Ticket struct {
	Wait time.Duration

	c       *Controller
	tenant  string
	started time.Time
	once    sync.Once
}

// QueueWait returns how long the request sat in the admission queue. Nil-safe
// (a nil ticket — admission disabled — waited zero).
func (t *Ticket) QueueWait() time.Duration {
	if t == nil {
		return 0
	}
	return t.Wait
}

// Release frees the slot, records the observed service time into the EWMA,
// and dispatches the next waiter (weighted). Safe on nil and idempotent.
func (t *Ticket) Release() {
	if t == nil || t.c == nil {
		return
	}
	t.once.Do(func() { t.c.release(t) })
}

// Acquire admits a request for tenant or sheds it. On success the returned
// Ticket must be Released when the request completes. A shed returns
// *OverloadedError; a context expiry while queued returns ctx.Err() and is
// counted in admission.timeouts, not admission.shed.
func (c *Controller) Acquire(ctx context.Context, tenant string) (*Ticket, error) {
	if c == nil {
		return nil, nil
	}
	if err := c.cfg.Faults.CheckContext(ctx, faults.SiteAdmissionEnqueue); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "admission.wait")
	span.SetAttr("tenant", tenant)

	c.mu.Lock()
	ts := c.tenant(tenant)

	// Fast path: a free slot and nobody waiting — admit with zero wait.
	if c.inflight < c.cfg.MaxConcurrent && c.queued == 0 {
		c.inflight++
		ts.inflight++
		c.setInflightGauge(ts)
		c.mu.Unlock()
		span.SetAttr("admitted", "fast")
		span.End()
		return &Ticket{c: c, tenant: tenant, started: time.Now()}, nil
	}

	// Shed before enqueue: bounded queue depth per tenant.
	if len(ts.queue) >= c.cfg.MaxQueueDepth {
		retry := c.predictWaitLocked(len(ts.queue))
		c.mu.Unlock()
		return nil, c.shed(span, tenant, ReasonQueueFull, retry)
	}

	// Shed before enqueue: the request's own deadline budget must survive the
	// predicted queue wait plus one expected service time.
	predicted := c.predictWaitLocked(c.queued)
	if deadline, ok := ctx.Deadline(); ok {
		budget := time.Until(deadline)
		if budget < predicted+time.Duration(c.ewma) {
			c.mu.Unlock()
			return nil, c.shed(span, tenant, ReasonDeadline, predicted)
		}
	}

	w := &waiter{ready: make(chan struct{}), enq: time.Now()}
	ts.queue = append(ts.queue, w)
	c.queued++
	c.queuedTotal.Inc()
	c.queueDepth.Set(int64(c.queued))
	c.mu.Unlock()

	select {
	case <-w.ready:
		wait := time.Since(w.enq)
		c.waitHist.Observe(float64(wait) / float64(time.Millisecond))
		span.SetAttr("admitted", "queued")
		span.SetInt("wait_us", wait.Microseconds())
		span.End()
		return &Ticket{Wait: wait, c: c, tenant: tenant, started: time.Now()}, nil
	case <-ctx.Done():
		// Raced against dispatch: if the slot was granted anyway, release it.
		if c.unqueue(ts, w) {
			c.timeoutsTotal.Inc()
			span.EndErr(ctx.Err())
			return nil, ctx.Err()
		}
		<-w.ready
		t := &Ticket{Wait: time.Since(w.enq), c: c, tenant: tenant, started: time.Now()}
		t.Release()
		c.timeoutsTotal.Inc()
		span.EndErr(ctx.Err())
		return nil, ctx.Err()
	}
}

// shed finalizes one shed decision (metrics, span, callback) and returns the
// error the caller should surface.
func (c *Controller) shed(span *telemetry.Span, tenant, reason string, retryAfter time.Duration) error {
	if retryAfter < time.Millisecond {
		retryAfter = time.Millisecond
	}
	c.shedTotal.Inc()
	err := &OverloadedError{Tenant: tenant, Reason: reason, RetryAfter: retryAfter}
	span.SetAttr("shed", reason)
	span.EndErr(err)
	if c.cfg.OnShed != nil {
		c.cfg.OnShed(tenant, reason, retryAfter)
	}
	return err
}

// predictWaitLocked estimates the queue wait for a request with ahead
// requests in front of it, from the service-time EWMA and the concurrency
// limit. Callers hold c.mu.
func (c *Controller) predictWaitLocked(ahead int) time.Duration {
	rounds := (ahead + c.cfg.MaxConcurrent) / c.cfg.MaxConcurrent
	return time.Duration(float64(rounds) * c.ewma)
}

// tenant returns (creating if needed) tenant state. Callers hold c.mu. A new
// tenant starts at the minimum pass of active tenants so it is not unfairly
// favored or starved.
func (c *Controller) tenant(name string) *tenantState {
	ts, ok := c.tenants[name]
	if !ok {
		w := c.cfg.DefaultWeight
		if cw, ok := c.cfg.Weights[name]; ok && cw > 0 {
			w = cw
		}
		minPass := 0.0
		first := true
		for _, other := range c.tenants {
			if len(other.queue) == 0 && other.inflight == 0 {
				continue
			}
			if first || other.pass < minPass {
				minPass, first = other.pass, false
			}
		}
		ts = &tenantState{name: name, weight: w, pass: minPass}
		c.tenants[name] = ts
	}
	return ts
}

// unqueue removes w from its tenant queue; false means w was already
// dispatched. Used on context expiry while waiting.
func (c *Controller) unqueue(ts *tenantState, w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			c.queued--
			c.queueDepth.Set(int64(c.queued))
			return true
		}
	}
	return false
}

func (c *Controller) release(t *Ticket) {
	service := time.Since(t.started)
	c.mu.Lock()
	c.ewma = 0.7*c.ewma + 0.3*float64(service)
	c.inflight--
	if ts, ok := c.tenants[t.tenant]; ok {
		ts.inflight--
		c.setInflightGauge(ts)
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// dispatchLocked grants free slots to waiters by stride scheduling: the
// waiting tenant with the lowest pass value wins and its pass advances by
// strideScale/weight. Ties break by tenant name for determinism.
func (c *Controller) dispatchLocked() {
	for c.inflight < c.cfg.MaxConcurrent && c.queued > 0 {
		var pick *tenantState
		for _, ts := range c.tenants {
			if len(ts.queue) == 0 {
				continue
			}
			if pick == nil || ts.pass < pick.pass || (ts.pass == pick.pass && ts.name < pick.name) {
				pick = ts
			}
		}
		if pick == nil {
			return
		}
		w := pick.queue[0]
		pick.queue = pick.queue[1:]
		pick.pass += strideScale / float64(pick.weight)
		c.queued--
		c.queueDepth.Set(int64(c.queued))
		c.inflight++
		pick.inflight++
		c.setInflightGauge(pick)
		close(w.ready)
	}
}

func (c *Controller) setInflightGauge(ts *tenantState) {
	c.cfg.Metrics.Gauge("admission.inflight." + ts.name).Set(ts.inflight)
}

// QueueDepth returns the number of requests currently waiting (autoscaler
// load signal).
func (c *Controller) QueueDepth() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// Inflight returns the number of admitted, unreleased requests.
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Sheds returns the total shed decisions so far (autoscaler load signal).
func (c *Controller) Sheds() int64 {
	if c == nil {
		return 0
	}
	return c.shedTotal.Value()
}

// Stats is a point-in-time controller snapshot for debug endpoints.
type Stats struct {
	Inflight   int           `json:"inflight"`
	Queued     int           `json:"queued"`
	Sheds      int64         `json:"sheds"`
	Timeouts   int64         `json:"timeouts"`
	ServiceEst time.Duration `json:"service_estimate"`
	Tenants    []TenantStats `json:"tenants"`
}

// TenantStats is one tenant's live admission state.
type TenantStats struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Inflight int64  `json:"inflight"`
	Queued   int    `json:"queued"`
}

// Snapshot returns current controller state (tenants sorted by name).
func (c *Controller) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Inflight:   c.inflight,
		Queued:     c.queued,
		Sheds:      c.shedTotal.Value(),
		Timeouts:   c.timeoutsTotal.Value(),
		ServiceEst: time.Duration(c.ewma),
	}
	for _, ts := range c.tenants {
		st.Tenants = append(st.Tenants, TenantStats{Name: ts.name, Weight: ts.weight, Inflight: ts.inflight, Queued: len(ts.queue)})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}
