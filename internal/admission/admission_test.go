package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lakeguard/internal/faults"
	"lakeguard/internal/telemetry"
)

func TestFastPathZeroWait(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2})
	tk, err := c.Acquire(context.Background(), "alice")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if tk.Wait != 0 {
		t.Fatalf("fast path waited %v", tk.Wait)
	}
	if got := c.Inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	tk.Release()
	tk.Release() // idempotent
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	tk, err := c.Acquire(context.Background(), "anyone")
	if err != nil {
		t.Fatalf("nil controller: %v", err)
	}
	tk.Release() // nil ticket is fine
	if c.QueueDepth() != 0 || c.Sheds() != 0 {
		t.Fatal("nil controller should report zeros")
	}
}

func TestQueueBoundShed(t *testing.T) {
	reg := telemetry.NewRegistry()
	var shedCB atomic.Int64
	c := NewController(Config{
		MaxConcurrent: 1,
		MaxQueueDepth: 2,
		Metrics:       reg,
		OnShed:        func(tenant, reason string, retryAfter time.Duration) { shedCB.Add(1) },
	})

	hold, err := c.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatalf("hold: %v", err)
	}
	// Fill the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Acquire(context.Background(), "greedy")
			if err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			tk.Release()
		}()
	}
	waitFor(t, func() bool { return c.QueueDepth() == 2 })

	// Third waiter overflows the bounded queue → shed with Retry-After.
	_, err = c.Acquire(context.Background(), "greedy")
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow acquire err = %v, want OverloadedError", err)
	}
	if oe.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q, want %q", oe.Reason, ReasonQueueFull)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after = %v, want > 0", oe.RetryAfter)
	}
	if got := reg.Counter("admission.shed").Value(); got != 1 {
		t.Fatalf("admission.shed = %d, want 1", got)
	}
	if got := shedCB.Load(); got != 1 {
		t.Fatalf("OnShed calls = %d, want 1", got)
	}

	hold.Release()
	wg.Wait()
}

func TestDeadlineAwareShed(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewController(Config{
		MaxConcurrent:          1,
		MaxQueueDepth:          64,
		InitialServiceEstimate: 50 * time.Millisecond,
		Metrics:                reg,
	})

	hold, err := c.Acquire(context.Background(), "busy")
	if err != nil {
		t.Fatalf("hold: %v", err)
	}
	defer hold.Release()

	// Budget (1ms) cannot survive predicted wait (~50ms) → shed immediately,
	// in O(µs), without ever enqueueing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(ctx, "impatient")
	elapsed := time.Since(start)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if oe.Reason != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", oe.Reason, ReasonDeadline)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v, want immediate", elapsed)
	}
	if got := reg.Counter("admission.queued").Value(); got != 0 {
		t.Fatalf("admission.queued = %d, want 0 (never enqueued)", got)
	}
}

func TestTimeoutWhileQueued(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewController(Config{
		MaxConcurrent:          1,
		MaxQueueDepth:          8,
		InitialServiceEstimate: time.Microsecond, // predicted wait ≈ 0 so the request queues
		Metrics:                reg,
	})

	hold, err := c.Acquire(context.Background(), "busy")
	if err != nil {
		t.Fatalf("hold: %v", err)
	}
	defer hold.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Acquire(ctx, "waiter")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := reg.Counter("admission.timeouts").Value(); got != 1 {
		t.Fatalf("admission.timeouts = %d, want 1", got)
	}
	if got := reg.Counter("admission.shed").Value(); got != 0 {
		t.Fatalf("admission.timeouts must not count as shed, got %d sheds", got)
	}
	if got := c.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after timeout = %d, want 0", got)
	}
}

// TestWeightedFairness drives two tenants through a single slot and checks
// the weighted dequeue ratio: weight-3 alice should be admitted ~3x as often
// as weight-1 bob while both have waiters.
func TestWeightedFairness(t *testing.T) {
	c := NewController(Config{
		MaxConcurrent:          1,
		MaxQueueDepth:          64,
		Weights:                map[string]int{"alice": 3, "bob": 1},
		InitialServiceEstimate: time.Microsecond,
	})

	hold, err := c.Acquire(context.Background(), "seed")
	if err != nil {
		t.Fatalf("hold: %v", err)
	}

	const perTenant = 12
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tenant := range []string{"alice", "bob"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				tk, err := c.Acquire(context.Background(), tenant)
				if err != nil {
					t.Errorf("%s acquire: %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				tk.Release()
			}(tenant)
		}
	}
	waitFor(t, func() bool { return c.QueueDepth() == 2*perTenant })
	hold.Release()
	wg.Wait()

	// In the first 8 admissions alice (weight 3) should hold a clear
	// majority; with strict stride scheduling the pattern is 3:1.
	aliceEarly := 0
	for _, tenant := range order[:8] {
		if tenant == "alice" {
			aliceEarly++
		}
	}
	if aliceEarly < 5 {
		t.Fatalf("alice got %d of first 8 slots, want >= 5 (weights 3:1); order=%v", aliceEarly, order)
	}
}

func TestEnqueueFaultSite(t *testing.T) {
	inj := faults.New(1).Add(faults.Rule{Site: faults.SiteAdmissionEnqueue, Kind: faults.KindError, Times: 1})
	c := NewController(Config{Faults: inj})
	_, err := c.Acquire(context.Background(), "alice")
	if !faults.IsTransient(err) {
		t.Fatalf("err = %v, want injected transient", err)
	}
	if faults.SiteOf(err) != faults.SiteAdmissionEnqueue {
		t.Fatalf("site = %q, want %q", faults.SiteOf(err), faults.SiteAdmissionEnqueue)
	}
	// Next request proceeds normally.
	tk, err := c.Acquire(context.Background(), "alice")
	if err != nil {
		t.Fatalf("post-fault acquire: %v", err)
	}
	tk.Release()
}

func TestSnapshot(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, Weights: map[string]int{"a": 2}})
	tk, _ := c.Acquire(context.Background(), "a")
	st := c.Snapshot()
	if st.Inflight != 1 || len(st.Tenants) != 1 || st.Tenants[0].Weight != 2 {
		t.Fatalf("snapshot = %+v", st)
	}
	tk.Release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
