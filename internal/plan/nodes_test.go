package plan

import (
	"strings"
	"testing"

	"lakeguard/internal/types"
)

// allNodes builds one instance of every relational operator.
func allNodes() []Node {
	scan := &Scan{
		Table:       "main.d.t",
		TableSchema: types.NewSchema(types.Field{Name: "a", Kind: types.KindInt64}),
		Version:     -1,
		RunAsUser:   "owner@x",
	}
	one := types.NewBatchBuilder(types.NewSchema(types.Field{Name: "x", Kind: types.KindInt64}), 0)
	local := &LocalRelation{Data: one.Build()}
	return []Node{
		NewUnresolvedRelation("a", "b"),
		scan,
		local,
		&SQLRelation{Query: "SELECT 1"},
		&Filter{Cond: Col("a"), Child: scan},
		&Project{Exprs: []Expr{Col("a")}, Child: scan, OutSchema: scan.TableSchema},
		&Aggregate{GroupBy: []Expr{Col("a")}, Aggs: []Expr{Col("a")}, Child: scan, OutSchema: scan.TableSchema},
		&Join{Type: JoinFull, Cond: Eq(Col("a"), Col("b")), L: scan, R: local},
		&Sort{Orders: []SortOrder{{Expr: Col("a"), Desc: true}}, Child: scan},
		&Limit{N: 5, Offset: 2, Child: scan},
		&Distinct{Child: scan},
		&Union{L: scan, R: scan},
		&SubqueryAlias{Name: "s", Child: scan},
		&SecureView{Name: "main.d.t", PolicyKinds: []string{"row_filter"}, Child: scan},
		&RemoteScan{Relation: "main.d.t", OutSchema: scan.TableSchema, PushedLimit: -1},
	}
}

// TestWithChildrenIdentity: for every node, WithChildren(Children()) must be
// structurally equivalent (same Explain) and must not alias the original
// when children change.
func TestWithChildrenIdentity(t *testing.T) {
	for _, n := range allNodes() {
		children := n.Children()
		rebuilt := n.WithChildren(children)
		if Explain(rebuilt) != Explain(n) {
			t.Errorf("%T: WithChildren(Children()) changed the plan:\n%s\nvs\n%s",
				n, Explain(n), Explain(rebuilt))
		}
		if n.String() == "" {
			t.Errorf("%T has empty String()", n)
		}
		// Schema must not panic on any node.
		_ = n.Schema()
	}
}

// TestWithChildrenReplacement verifies child replacement reaches the output.
func TestWithChildrenReplacement(t *testing.T) {
	replacement := &SQLRelation{Query: "SELECT 42"}
	for _, n := range allNodes() {
		children := n.Children()
		if len(children) == 0 {
			continue
		}
		newChildren := make([]Node, len(children))
		for i := range newChildren {
			newChildren[i] = replacement
		}
		rebuilt := n.WithChildren(newChildren)
		if !Contains(rebuilt, func(x Node) bool {
			sr, ok := x.(*SQLRelation)
			return ok && sr.Query == "SELECT 42"
		}) {
			t.Errorf("%T: replaced child missing from rebuilt node", n)
		}
		// The original is untouched.
		if Contains(n, func(x Node) bool {
			sr, ok := x.(*SQLRelation)
			return ok && sr.Query == "SELECT 42"
		}) {
			t.Errorf("%T: WithChildren mutated the receiver", n)
		}
	}
}

// TestWithChildExprsIdentity exercises expression tree reconstruction.
func TestWithChildExprsIdentity(t *testing.T) {
	exprs := []Expr{
		Lit(types.Int64(1)),
		Col("a"),
		&BoundRef{Index: 0, Name: "a", Kind: types.KindInt64},
		&Star{Qualifier: "t"},
		As(Col("a"), "x"),
		Eq(Col("a"), Col("b")),
		&Unary{Op: OpNeg, Child: Col("a"), ResultKind: types.KindInt64},
		&IsNull{Child: Col("a")},
		&InList{Child: Col("a"), List: []Expr{Lit(types.Int64(1)), Lit(types.Int64(2))}, Negated: true},
		&Like{Child: Col("s"), Pattern: Lit(types.String("%x"))},
		&Case{Whens: []WhenClause{{Cond: Col("p"), Then: Col("q")}}, Else: Col("r"), ResultKind: types.KindString},
		&Cast{Child: Col("a"), To: types.KindDate},
		&FuncCall{Name: "upper", Args: []Expr{Col("s")}},
		&ScalarFunc{Name: "upper", Args: []Expr{Col("s")}, ResultKind: types.KindString},
		&AggFunc{Name: "sum", Arg: Col("a"), ResultKind: types.KindInt64},
		&AggFunc{Name: "count", ResultKind: types.KindInt64},
		&UDFCall{Name: "f", Owner: "u", Body: "return 1", Args: []Expr{Col("a")}, ArgNames: []string{"x"}, ResultKind: types.KindInt64},
		&CurrentUser{},
		&GroupMember{Group: "g"},
	}
	for _, e := range exprs {
		rebuilt := e.WithChildExprs(e.ChildExprs())
		if rebuilt.String() != e.String() {
			t.Errorf("%T: WithChildExprs identity broke: %s vs %s", e, e.String(), rebuilt.String())
		}
		if e.Type() != rebuilt.Type() {
			t.Errorf("%T: type changed across rebuild", e)
		}
	}
}

func TestScanStringForms(t *testing.T) {
	s := &Scan{
		Table:       "main.d.t",
		TableSchema: types.NewSchema(types.Field{Name: "a", Kind: types.KindInt64}, types.Field{Name: "b", Kind: types.KindString}),
		Version:     3,
		PushedFilters: []Expr{
			Eq(&BoundRef{Index: 0, Name: "a", Kind: types.KindInt64}, Lit(types.Int64(5))),
		},
		ProjectedCols: []int{0},
	}
	out := s.String()
	for _, want := range []string{"@v3", "cols=a", "pushed=[(a#0 = 5)]"} {
		if !strings.Contains(out, want) {
			t.Errorf("scan string missing %q: %s", want, out)
		}
	}
	if s.Schema().Len() != 1 {
		t.Error("projected scan schema wrong")
	}
}

func TestJoinTypeNames(t *testing.T) {
	names := map[JoinType]string{
		JoinInner: "INNER", JoinLeft: "LEFT", JoinRight: "RIGHT",
		JoinFull: "FULL", JoinCross: "CROSS", JoinLeftSemi: "LEFT SEMI", JoinLeftAnti: "LEFT ANTI",
	}
	for jt, want := range names {
		if jt.String() != want {
			t.Errorf("JoinType(%d) = %q", jt, jt.String())
		}
	}
}

func TestBinOpProperties(t *testing.T) {
	for op := OpAdd; op <= OpConcat; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
	if !OpMod.IsArithmetic() || OpEq.IsArithmetic() {
		t.Error("IsArithmetic wrong")
	}
}

func TestWalkEarlyStopOnPlan(t *testing.T) {
	p := &Filter{Cond: Col("a"), Child: &Filter{Cond: Col("b"), Child: allNodes()[1]}}
	count := 0
	Walk(p, func(Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}
