package plan

import (
	"strings"
	"testing"

	"lakeguard/internal/types"
)

func scanNode() *Scan {
	return &Scan{
		Table: "main.default.t",
		TableSchema: types.NewSchema(
			types.Field{Name: "a", Kind: types.KindInt64},
			types.Field{Name: "b", Kind: types.KindString},
		),
		Version: -1,
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit(types.Int64(1)), "1"},
		{Col("t.amount"), "t.amount"},
		{Col("amount"), "amount"},
		{Eq(Col("a"), Lit(types.Int64(5))), "(a = 5)"},
		{And(Col("x"), Col("y")), "(x AND y)"},
		{&Unary{Op: OpNot, Child: Col("p")}, "(NOT p)"},
		{&IsNull{Child: Col("a")}, "(a IS NULL)"},
		{&IsNull{Child: Col("a"), Negated: true}, "(a IS NOT NULL)"},
		{&InList{Child: Col("a"), List: []Expr{Lit(types.Int64(1)), Lit(types.Int64(2))}}, "(a IN (1, 2))"},
		{&Like{Child: Col("s"), Pattern: Lit(types.String("a%"))}, "(s LIKE 'a%')"},
		{&Cast{Child: Col("a"), To: types.KindString}, "CAST(a AS STRING)"},
		{&FuncCall{Name: "upper", Args: []Expr{Col("s")}}, "UPPER(s)"},
		{&AggFunc{Name: "count"}, "COUNT(*)"},
		{&AggFunc{Name: "sum", Arg: Col("a")}, "SUM(a)"},
		{&CurrentUser{}, "CURRENT_USER()"},
		{&GroupMember{Group: "hr"}, "IS_ACCOUNT_GROUP_MEMBER('hr')"},
		{As(Col("a"), "x"), "a AS x"},
		{&Case{Whens: []WhenClause{{Cond: Col("p"), Then: Lit(types.Int64(1))}}, Else: Lit(types.Int64(0))}, "CASE WHEN p THEN 1 ELSE 0 END"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestExprTypes(t *testing.T) {
	if Eq(Col("a"), Col("b")).Type() != types.KindBool {
		t.Error("comparison should be boolean")
	}
	if (&CurrentUser{}).Type() != types.KindString {
		t.Error("CURRENT_USER is string")
	}
	if (&Cast{Child: Col("a"), To: types.KindDate}).Type() != types.KindDate {
		t.Error("cast type")
	}
	if (&BoundRef{Index: 0, Name: "a", Kind: types.KindInt64}).Type() != types.KindInt64 {
		t.Error("bound ref type")
	}
}

func TestTransformExpr(t *testing.T) {
	e := And(Eq(Col("a"), Lit(types.Int64(1))), Col("b"))
	// Replace every ColumnRef with a BoundRef.
	out := TransformExpr(e, func(x Expr) Expr {
		if c, ok := x.(*ColumnRef); ok {
			return &BoundRef{Index: 0, Name: c.Name, Kind: types.KindBool}
		}
		return x
	})
	if ExprContains(out, func(x Expr) bool { _, ok := x.(*ColumnRef); return ok }) {
		t.Error("transform left unresolved refs")
	}
	// Original untouched.
	if !ExprContains(e, func(x Expr) bool { _, ok := x.(*ColumnRef); return ok }) {
		t.Error("transform mutated original")
	}
}

func TestWalkExprEarlyStop(t *testing.T) {
	e := And(Col("a"), And(Col("b"), Col("c")))
	count := 0
	WalkExpr(e, func(Expr) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d nodes", count)
	}
}

func TestPlanSchemas(t *testing.T) {
	s := scanNode()
	if s.Schema().Len() != 2 {
		t.Fatal("scan schema")
	}
	proj := &Scan{Table: s.Table, TableSchema: s.TableSchema, ProjectedCols: []int{1}}
	if proj.Schema().Len() != 1 || proj.Schema().Fields[0].Name != "b" {
		t.Error("projected scan schema")
	}
	f := &Filter{Cond: Eq(Col("a"), Lit(types.Int64(1))), Child: s}
	if !f.Schema().Equal(s.Schema()) {
		t.Error("filter passes schema through")
	}
	j := &Join{Type: JoinInner, L: s, R: proj}
	if j.Schema().Len() != 3 {
		t.Error("join concat schema")
	}
	semi := &Join{Type: JoinLeftSemi, L: s, R: proj}
	if semi.Schema().Len() != 2 {
		t.Error("semi join keeps left schema")
	}
	left := &Join{Type: JoinLeft, L: s, R: proj}
	if !left.Schema().Fields[2].Nullable {
		t.Error("left join right side should be nullable")
	}
}

func TestTransformPlan(t *testing.T) {
	p := &Filter{Cond: Col("a"), Child: &SubqueryAlias{Name: "t", Child: scanNode()}}
	out := Transform(p, func(n Node) Node {
		if sa, ok := n.(*SubqueryAlias); ok {
			return sa.Child
		}
		return n
	})
	if Contains(out, func(n Node) bool { _, ok := n.(*SubqueryAlias); return ok }) {
		t.Error("alias not removed")
	}
	if !Contains(p, func(n Node) bool { _, ok := n.(*SubqueryAlias); return ok }) {
		t.Error("original plan mutated")
	}
}

func TestExplainTree(t *testing.T) {
	p := &Limit{N: 10, Child: &Filter{Cond: Eq(Col("a"), Lit(types.Int64(1))), Child: scanNode()}}
	out := Explain(p)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("explain lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Limit 10") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Filter") || !strings.Contains(lines[2], "Scan") {
		t.Errorf("explain structure wrong:\n%s", out)
	}
}

func TestExplainRedactedHidesSecureViewInterior(t *testing.T) {
	secret := &Filter{
		Cond:  Eq(Col("region"), Lit(types.String("US"))),
		Child: scanNode(),
	}
	p := &Project{
		Exprs: []Expr{Col("a")},
		Child: &SecureView{Name: "main.default.t", PolicyKinds: []string{"row_filter"}, Child: secret},
	}
	full := Explain(p)
	if !strings.Contains(full, "US") {
		t.Fatal("full explain should contain the policy literal")
	}
	red := ExplainRedacted(p)
	if strings.Contains(red, "US") {
		t.Errorf("redacted explain leaked policy internals:\n%s", red)
	}
	if !strings.Contains(red, "<redacted>") {
		t.Errorf("redacted explain missing marker:\n%s", red)
	}
}

func TestRemoteScanString(t *testing.T) {
	rs := &RemoteScan{
		Relation:         "main.sales.sales",
		OutSchema:        types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64}),
		PushedFilters:    []Expr{Eq(Col("date"), Lit(types.String("2024-12-01")))},
		PushedProjection: []string{"amount", "date", "seller"},
		PushedLimit:      -1,
	}
	s := rs.String()
	for _, want := range []string{"RemoteScan main.sales.sales", "project=[amount, date, seller]", "filters=[(date = '2024-12-01')]"} {
		if !strings.Contains(s, want) {
			t.Errorf("RemoteScan string missing %q: %s", want, s)
		}
	}
}

func TestCommandStrings(t *testing.T) {
	cmds := []struct {
		c    Command
		name string
	}{
		{&CreateTable{Name: []string{"a", "b", "c"}, TableSchema: types.NewSchema()}, "CREATE TABLE"},
		{&CreateView{Name: []string{"v"}, Query: "SELECT 1", Materialized: true}, "CREATE MATERIALIZED VIEW"},
		{&CreateFunction{Name: []string{"f"}}, "CREATE FUNCTION"},
		{&Grant{Privilege: "SELECT", Securable: []string{"t"}, Principal: "alice"}, "GRANT"},
		{&Revoke{Privilege: "SELECT", Securable: []string{"t"}, Principal: "alice"}, "REVOKE"},
		{&SetRowFilter{Table: []string{"t"}, FilterSQL: "region = 'US'"}, "ALTER TABLE SET ROW FILTER"},
		{&SetColumnMask{Table: []string{"t"}, Column: "ssn", MaskSQL: "'***'"}, "ALTER TABLE SET COLUMN MASK"},
		{&InsertInto{Table: []string{"t"}}, "INSERT"},
		{&DropTable{Name: []string{"t"}}, "DROP TABLE"},
		{&DropTable{Name: []string{"v"}, View: true}, "DROP VIEW"},
		{&CreateSchema{Name: []string{"c", "s"}}, "CREATE SCHEMA"},
		{&RefreshMaterializedView{Name: []string{"mv"}}, "REFRESH MATERIALIZED VIEW"},
	}
	for _, c := range cmds {
		if c.c.CommandName() != c.name {
			t.Errorf("CommandName = %q want %q", c.c.CommandName(), c.name)
		}
		if c.c.String() == "" {
			t.Errorf("%s has empty String()", c.name)
		}
	}
}

func TestOutputName(t *testing.T) {
	if OutputName(As(Col("a"), "x")) != "x" {
		t.Error("alias name")
	}
	if OutputName(Col("t.a")) != "a" {
		t.Error("column name")
	}
	if OutputName(&AggFunc{Name: "sum", Arg: Col("a")}) != "SUM(a)" {
		t.Error("fallback name")
	}
}
