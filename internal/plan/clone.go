package plan

// Clone returns a deep copy of a plan tree. WithChildren is not enough for
// this: leaf nodes return themselves, and expression slices are shared
// between the copy and the original. The sentinel seals verified plans by
// cloning them, so a later mutation of the original (or of any shared
// sub-structure) cannot change what executes. LocalRelation batch data is
// shared — sealing protects plan structure, not row storage, and batches are
// immutable once built.
func Clone(n Node) Node {
	if n == nil {
		return nil
	}
	switch t := n.(type) {
	case *UnresolvedRelation:
		cp := *t
		cp.Parts = append([]string(nil), t.Parts...)
		return &cp
	case *Scan:
		cp := *t
		cp.PushedFilters = cloneExprs(t.PushedFilters)
		cp.ProjectedCols = append([]int(nil), t.ProjectedCols...)
		return &cp
	case *LocalRelation:
		cp := *t
		return &cp
	case *Filter:
		return &Filter{Cond: CloneExpr(t.Cond), Child: Clone(t.Child)}
	case *Project:
		return &Project{Exprs: cloneExprs(t.Exprs), Child: Clone(t.Child), OutSchema: t.OutSchema}
	case *Aggregate:
		return &Aggregate{
			GroupBy:   cloneExprs(t.GroupBy),
			Aggs:      cloneExprs(t.Aggs),
			Child:     Clone(t.Child),
			OutSchema: t.OutSchema,
		}
	case *Join:
		return &Join{Type: t.Type, Cond: CloneExpr(t.Cond), L: Clone(t.L), R: Clone(t.R)}
	case *Sort:
		orders := make([]SortOrder, len(t.Orders))
		for i, o := range t.Orders {
			orders[i] = SortOrder{Expr: CloneExpr(o.Expr), Desc: o.Desc}
		}
		return &Sort{Orders: orders, Child: Clone(t.Child)}
	case *Limit:
		return &Limit{N: t.N, Offset: t.Offset, Child: Clone(t.Child)}
	case *Distinct:
		return &Distinct{Child: Clone(t.Child)}
	case *Union:
		return &Union{L: Clone(t.L), R: Clone(t.R)}
	case *SubqueryAlias:
		return &SubqueryAlias{Name: t.Name, Child: Clone(t.Child)}
	case *SecureView:
		return &SecureView{
			Name:        t.Name,
			PolicyKinds: append([]string(nil), t.PolicyKinds...),
			Labels:      append([]Label(nil), t.Labels...),
			Child:       Clone(t.Child),
		}
	case *RemoteScan:
		cp := *t
		cp.PushedFilters = cloneExprs(t.PushedFilters)
		cp.PushedProjection = append([]string(nil), t.PushedProjection...)
		if t.PushedAggregate != nil {
			cp.PushedAggregate = &RemoteAggregate{
				GroupBy: append([]string(nil), t.PushedAggregate.GroupBy...),
				Aggs:    append([]string(nil), t.PushedAggregate.Aggs...),
			}
		}
		return &cp
	case *SQLRelation:
		cp := *t
		return &cp
	default:
		// Unknown node (injected by a hostile rule): fall back to a
		// child-wise copy so the clone is at least structurally detached.
		children := n.Children()
		if len(children) == 0 {
			return n
		}
		cloned := make([]Node, len(children))
		for i, c := range children {
			cloned[i] = Clone(c)
		}
		return n.WithChildren(cloned)
	}
}

// CloneExpr returns a deep copy of an expression tree (nil-safe).
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *Literal:
		cp := *t
		return &cp
	case *ColumnRef:
		cp := *t
		return &cp
	case *BoundRef:
		cp := *t
		return &cp
	case *Star:
		cp := *t
		return &cp
	case *Alias:
		return &Alias{Child: CloneExpr(t.Child), Name: t.Name}
	case *Binary:
		return &Binary{Op: t.Op, L: CloneExpr(t.L), R: CloneExpr(t.R), ResultKind: t.ResultKind}
	case *Unary:
		return &Unary{Op: t.Op, Child: CloneExpr(t.Child), ResultKind: t.ResultKind}
	case *IsNull:
		return &IsNull{Child: CloneExpr(t.Child), Negated: t.Negated}
	case *InList:
		return &InList{Child: CloneExpr(t.Child), List: cloneExprs(t.List), Negated: t.Negated}
	case *Like:
		return &Like{Child: CloneExpr(t.Child), Pattern: CloneExpr(t.Pattern), Negated: t.Negated}
	case *Case:
		whens := make([]WhenClause, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = WhenClause{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)}
		}
		return &Case{Whens: whens, Else: CloneExpr(t.Else), ResultKind: t.ResultKind}
	case *Cast:
		return &Cast{Child: CloneExpr(t.Child), To: t.To}
	case *FuncCall:
		return &FuncCall{Name: t.Name, Args: cloneExprs(t.Args), Distinct: t.Distinct}
	case *ScalarFunc:
		return &ScalarFunc{Name: t.Name, Args: cloneExprs(t.Args), ResultKind: t.ResultKind}
	case *AggFunc:
		return &AggFunc{Name: t.Name, Arg: CloneExpr(t.Arg), Distinct: t.Distinct, ResultKind: t.ResultKind}
	case *UDFCall:
		cp := *t
		cp.ArgNames = append([]string(nil), t.ArgNames...)
		cp.Args = cloneExprs(t.Args)
		return &cp
	case *CurrentUser:
		cp := *t
		return &cp
	case *GroupMember:
		cp := *t
		return &cp
	default:
		children := e.ChildExprs()
		if len(children) == 0 {
			return e
		}
		cloned := make([]Expr, len(children))
		for i, c := range children {
			cloned[i] = CloneExpr(c)
		}
		return e.WithChildExprs(cloned)
	}
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}
