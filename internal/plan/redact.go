package plan

// RedactedString renders an expression for error messages and audit payloads
// with every literal value (and account-group name) replaced by "?". Policy
// predicates embed tenant constants — `region = 'US'`,
// `IS_ACCOUNT_GROUP_MEMBER('finance')` — and echoing them back to a denied
// caller is a side channel: the caller learns the policy's contents from the
// refusal. Column names and expression shape are kept so the message stays
// actionable. All code under internal/sentinel and internal/analyzer that
// puts an expression into a returned error must use this (enforced by the
// expr-in-error lint rule).
func RedactedString(e Expr) string {
	if e == nil {
		return "?"
	}
	return TransformExpr(e, func(x Expr) Expr {
		switch x.(type) {
		case *Literal:
			return &ColumnRef{Name: "?"}
		case *GroupMember:
			return &GroupMember{Group: "?"}
		}
		return x
	}).String()
}

// RedactedExprList renders a list of expressions with RedactedString, for
// messages that report several conjuncts at once.
func RedactedExprList(es []Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = RedactedString(e)
	}
	return out
}
