package plan

import (
	"strconv"
	"strings"

	"lakeguard/internal/types"
)

// Command is a side-effecting statement (DDL, DML, grants). Commands are not
// composable: in the Connect protocol, the root of an execution is either a
// relation (pure) or a command (side effects), mirroring Spark Connect's
// Relation/Command split.
type Command interface {
	// CommandName identifies the command for auditing and dispatch.
	CommandName() string
	// String renders the command for EXPLAIN/audit output.
	String() string
}

// CreateTable creates a managed table.
type CreateTable struct {
	Name        []string
	TableSchema *types.Schema
	IfNotExists bool
	Comment     string
}

// CommandName implements Command.
func (c *CreateTable) CommandName() string { return "CREATE TABLE" }

// String implements Command.
func (c *CreateTable) String() string {
	return "CreateTable " + strings.Join(c.Name, ".") + " " + c.TableSchema.String()
}

// CreateView creates a (possibly materialized) view over a SQL text body.
type CreateView struct {
	Name         []string
	Query        string // original SQL text, re-analyzed per querying user
	Materialized bool
	OrReplace    bool
	Comment      string
}

// CommandName implements Command.
func (c *CreateView) CommandName() string {
	if c.Materialized {
		return "CREATE MATERIALIZED VIEW"
	}
	return "CREATE VIEW"
}

// String implements Command.
func (c *CreateView) String() string {
	return c.CommandName() + " " + strings.Join(c.Name, ".") + " AS " + c.Query
}

// CreateFunction catalogs a PyLite UDF as a governed securable.
type CreateFunction struct {
	Name      []string
	Params    []types.Field
	Returns   types.Kind
	Body      string // PyLite source
	OrReplace bool
	Comment   string
	// Resources names a specialized execution environment ("gpu", ...).
	Resources string
}

// CommandName implements Command.
func (c *CreateFunction) CommandName() string { return "CREATE FUNCTION" }

// String implements Command.
func (c *CreateFunction) String() string {
	return "CreateFunction " + strings.Join(c.Name, ".")
}

// InsertInto appends the result of Query (or literal Rows) into a table.
type InsertInto struct {
	Table []string
	// Query is the source relation; nil when Rows are given inline.
	Query Node
	// Rows holds literal VALUES tuples when Query is nil.
	Rows [][]types.Value
}

// CommandName implements Command.
func (c *InsertInto) CommandName() string { return "INSERT" }

// String implements Command.
func (c *InsertInto) String() string { return "InsertInto " + strings.Join(c.Table, ".") }

// Grant grants a privilege on a securable to a principal (user or group).
type Grant struct {
	Privilege string // SELECT, MODIFY, EXECUTE, USE, ALL
	Securable []string
	Principal string
}

// CommandName implements Command.
func (c *Grant) CommandName() string { return "GRANT" }

// String implements Command.
func (c *Grant) String() string {
	return "Grant " + c.Privilege + " ON " + strings.Join(c.Securable, ".") + " TO " + c.Principal
}

// Revoke removes a privilege.
type Revoke struct {
	Privilege string
	Securable []string
	Principal string
}

// CommandName implements Command.
func (c *Revoke) CommandName() string { return "REVOKE" }

// String implements Command.
func (c *Revoke) String() string {
	return "Revoke " + c.Privilege + " ON " + strings.Join(c.Securable, ".") + " FROM " + c.Principal
}

// SetRowFilter attaches a row-filter policy to a table. FilterSQL is a
// boolean SQL expression over the table's columns; it may reference
// CURRENT_USER() and IS_ACCOUNT_GROUP_MEMBER(...).
type SetRowFilter struct {
	Table     []string
	FilterSQL string
	Drop      bool
}

// CommandName implements Command.
func (c *SetRowFilter) CommandName() string { return "ALTER TABLE SET ROW FILTER" }

// String implements Command.
func (c *SetRowFilter) String() string {
	if c.Drop {
		return "DropRowFilter " + strings.Join(c.Table, ".")
	}
	return "SetRowFilter " + strings.Join(c.Table, ".") + " WHERE " + c.FilterSQL
}

// SetColumnMask attaches a column mask to one column of a table. MaskSQL is
// an expression over the table's columns producing the masked value; it may
// reference the protected column itself and session functions.
type SetColumnMask struct {
	Table   []string
	Column  string
	MaskSQL string
	Drop    bool
}

// CommandName implements Command.
func (c *SetColumnMask) CommandName() string { return "ALTER TABLE SET COLUMN MASK" }

// String implements Command.
func (c *SetColumnMask) String() string {
	if c.Drop {
		return "DropColumnMask " + strings.Join(c.Table, ".") + "." + c.Column
	}
	return "SetColumnMask " + strings.Join(c.Table, ".") + "." + c.Column + " USING " + c.MaskSQL
}

// CreateSchema creates a schema (namespace) in a catalog.
type CreateSchema struct {
	Name        []string
	IfNotExists bool
}

// CommandName implements Command.
func (c *CreateSchema) CommandName() string { return "CREATE SCHEMA" }

// String implements Command.
func (c *CreateSchema) String() string { return "CreateSchema " + strings.Join(c.Name, ".") }

// DropTable removes a table or view.
type DropTable struct {
	Name     []string
	IfExists bool
	View     bool
}

// CommandName implements Command.
func (c *DropTable) CommandName() string {
	if c.View {
		return "DROP VIEW"
	}
	return "DROP TABLE"
}

// String implements Command.
func (c *DropTable) String() string { return c.CommandName() + " " + strings.Join(c.Name, ".") }

// SetColumnTags replaces the ABAC attribute tags on one column.
type SetColumnTags struct {
	Table  []string
	Column string
	Tags   []string // empty = clear
}

// CommandName implements Command.
func (c *SetColumnTags) CommandName() string { return "ALTER TABLE SET TAGS" }

// String implements Command.
func (c *SetColumnTags) String() string {
	return "SetColumnTags " + strings.Join(c.Table, ".") + "." + c.Column + " = [" + strings.Join(c.Tags, ", ") + "]"
}

// CreateTableAs creates a table from a query's result (CTAS).
type CreateTableAs struct {
	Name        []string
	Query       Node
	IfNotExists bool
}

// CommandName implements Command.
func (c *CreateTableAs) CommandName() string { return "CREATE TABLE AS SELECT" }

// String implements Command.
func (c *CreateTableAs) String() string {
	return "CreateTableAs " + strings.Join(c.Name, ".")
}

// DeleteFrom removes rows matching a predicate (all rows when Where is nil).
type DeleteFrom struct {
	Table []string
	Where Expr
}

// CommandName implements Command.
func (c *DeleteFrom) CommandName() string { return "DELETE" }

// String implements Command.
func (c *DeleteFrom) String() string {
	s := "DeleteFrom " + strings.Join(c.Table, ".")
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

// Assignment is one `column = expr` clause of an UPDATE or MERGE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// String renders the assignment for EXPLAIN/audit output.
func (a Assignment) String() string { return a.Column + " = " + a.Value.String() }

func assignmentsString(set []Assignment) string {
	parts := make([]string, len(set))
	for i, a := range set {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Update rewrites matching rows in place: deletion vectors mask the old row
// versions and an appended batch carries the updated copies, so no existing
// data file is rewritten.
type Update struct {
	Table []string
	Set   []Assignment
	Where Expr
}

// CommandName implements Command.
func (c *Update) CommandName() string { return "UPDATE" }

// String implements Command.
func (c *Update) String() string {
	s := "Update " + strings.Join(c.Table, ".") + " SET " + assignmentsString(c.Set)
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

// MergeInto upserts the rows of Source into Table keyed by the On condition.
// Matched target rows are updated (MatchedSet) or deleted (MatchedDelete) on
// the deletion-vector machinery; unmatched source rows are inserted through
// InsertValues when present.
type MergeInto struct {
	Table       []string
	TableAlias  string // optional alias for the target in On/Set expressions
	Source      Node
	SourceAlias string // optional alias for the source
	On          Expr
	// Exactly one of MatchedSet / MatchedDelete is set when a WHEN MATCHED
	// clause was given.
	MatchedSet    []Assignment
	MatchedDelete bool
	// InsertValues holds the WHEN NOT MATCHED THEN INSERT VALUES exprs over
	// the source columns; nil when the clause is absent.
	InsertValues []Expr
}

// CommandName implements Command.
func (c *MergeInto) CommandName() string { return "MERGE" }

// String implements Command.
func (c *MergeInto) String() string {
	s := "MergeInto " + strings.Join(c.Table, ".") + " ON " + c.On.String()
	switch {
	case c.MatchedDelete:
		s += " WHEN MATCHED DELETE"
	case len(c.MatchedSet) > 0:
		s += " WHEN MATCHED UPDATE SET " + assignmentsString(c.MatchedSet)
	}
	if c.InsertValues != nil {
		s += " WHEN NOT MATCHED INSERT"
	}
	return s
}

// OptimizeTable bin-packs small data files and rewrites deletion-vector-dense
// files through an atomic swap commit.
type OptimizeTable struct {
	Table       []string
	TargetBytes int64 // 0 = engine default target file size
}

// CommandName implements Command.
func (c *OptimizeTable) CommandName() string { return "OPTIMIZE" }

// String implements Command.
func (c *OptimizeTable) String() string {
	s := "Optimize " + strings.Join(c.Table, ".")
	if c.TargetBytes > 0 {
		s += fmtInt(" TARGET SIZE ", c.TargetBytes)
	}
	return s
}

func fmtInt(prefix string, n int64) string {
	return prefix + strconv.FormatInt(n, 10)
}

// VacuumTable deletes storage objects no live snapshot references:
// tombstoned data files and orphans from failed commit attempts.
type VacuumTable struct {
	Table []string
}

// CommandName implements Command.
func (c *VacuumTable) CommandName() string { return "VACUUM" }

// String implements Command.
func (c *VacuumTable) String() string { return "Vacuum " + strings.Join(c.Table, ".") }

// ShowTables lists the tables and views the caller can read.
type ShowTables struct{}

// CommandName implements Command.
func (c *ShowTables) CommandName() string { return "SHOW TABLES" }

// String implements Command.
func (c *ShowTables) String() string { return "ShowTables" }

// DescribeTable reports a relation's schema and governance annotations.
type DescribeTable struct {
	Name []string
}

// CommandName implements Command.
func (c *DescribeTable) CommandName() string { return "DESCRIBE" }

// String implements Command.
func (c *DescribeTable) String() string { return "Describe " + strings.Join(c.Name, ".") }

// DescribeHistory lists a table's commit history (time travel versions).
type DescribeHistory struct {
	Name []string
}

// CommandName implements Command.
func (c *DescribeHistory) CommandName() string { return "DESCRIBE HISTORY" }

// String implements Command.
func (c *DescribeHistory) String() string { return "DescribeHistory " + strings.Join(c.Name, ".") }

// RefreshMaterializedView recomputes a materialized view's stored data.
type RefreshMaterializedView struct {
	Name []string
}

// CommandName implements Command.
func (c *RefreshMaterializedView) CommandName() string { return "REFRESH MATERIALIZED VIEW" }

// String implements Command.
func (c *RefreshMaterializedView) String() string {
	return "RefreshMaterializedView " + strings.Join(c.Name, ".")
}
