// Package plan defines the logical query plan: relational operator nodes and
// the expression tree. Both the SQL frontend and the Connect DataFrame path
// lower into this representation; the analyzer resolves it against the
// catalog; the optimizer rewrites it; the executor compiles it to physical
// operators.
package plan

import (
	"fmt"
	"strings"

	"lakeguard/internal/types"
)

// Expr is a node in the expression tree.
type Expr interface {
	// Type returns the result kind. Unresolved expressions return KindNull.
	Type() types.Kind
	// String renders the expression for EXPLAIN output and error messages.
	String() string
	// ChildExprs returns the direct sub-expressions.
	ChildExprs() []Expr
	// WithChildExprs returns a copy with the sub-expressions replaced.
	WithChildExprs(children []Expr) Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAnd
	OpOr
	OpConcat
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNeq: "<>", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAnd: "AND", OpOr: "OR", OpConcat: "||",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGte }

// IsArithmetic reports whether the operator is numeric arithmetic.
func (op BinOp) IsArithmetic() bool { return op <= OpMod }

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// Lit builds a literal expression.
func Lit(v types.Value) *Literal { return &Literal{Value: v} }

// Type implements Expr.
func (l *Literal) Type() types.Kind { return l.Value.Kind }

// String implements Expr.
func (l *Literal) String() string { return l.Value.SQLLiteral() }

// ChildExprs implements Expr.
func (l *Literal) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (l *Literal) WithChildExprs([]Expr) Expr { return l }

// ColumnRef is an unresolved column reference, optionally qualified
// ("t.amount" has Qualifier "t").
type ColumnRef struct {
	Qualifier string
	Name      string
}

// Col builds an unresolved column reference.
func Col(name string) *ColumnRef {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return &ColumnRef{Qualifier: name[:i], Name: name[i+1:]}
	}
	return &ColumnRef{Name: name}
}

// Type implements Expr.
func (c *ColumnRef) Type() types.Kind { return types.KindNull }

// String implements Expr.
func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// ChildExprs implements Expr.
func (c *ColumnRef) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (c *ColumnRef) WithChildExprs([]Expr) Expr { return c }

// BoundRef is a column reference resolved to an ordinal in the child's
// output schema.
type BoundRef struct {
	Index int
	Name  string
	Kind  types.Kind
}

// Type implements Expr.
func (b *BoundRef) Type() types.Kind { return b.Kind }

// String implements Expr.
func (b *BoundRef) String() string { return fmt.Sprintf("%s#%d", b.Name, b.Index) }

// ChildExprs implements Expr.
func (b *BoundRef) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (b *BoundRef) WithChildExprs([]Expr) Expr { return b }

// Star is the `*` or `t.*` projection item, expanded by the analyzer.
type Star struct {
	Qualifier string
}

// Type implements Expr.
func (s *Star) Type() types.Kind { return types.KindNull }

// String implements Expr.
func (s *Star) String() string {
	if s.Qualifier != "" {
		return s.Qualifier + ".*"
	}
	return "*"
}

// ChildExprs implements Expr.
func (s *Star) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (s *Star) WithChildExprs([]Expr) Expr { return s }

// Alias names an expression in a projection.
type Alias struct {
	Child Expr
	Name  string
}

// As wraps an expression with an output name.
func As(e Expr, name string) *Alias { return &Alias{Child: e, Name: name} }

// Type implements Expr.
func (a *Alias) Type() types.Kind { return a.Child.Type() }

// String implements Expr.
func (a *Alias) String() string { return a.Child.String() + " AS " + a.Name }

// ChildExprs implements Expr.
func (a *Alias) ChildExprs() []Expr { return []Expr{a.Child} }

// WithChildExprs implements Expr.
func (a *Alias) WithChildExprs(ch []Expr) Expr { return &Alias{Child: ch[0], Name: a.Name} }

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
	// ResultKind is set by the analyzer.
	ResultKind types.Kind
}

// NewBinary builds a binary expression.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *Binary { return NewBinary(OpEq, l, r) }

// And builds l AND r.
func And(l, r Expr) *Binary { return NewBinary(OpAnd, l, r) }

// Type implements Expr.
func (b *Binary) Type() types.Kind {
	if b.Op.IsComparison() || b.Op == OpAnd || b.Op == OpOr {
		return types.KindBool
	}
	return b.ResultKind
}

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// ChildExprs implements Expr.
func (b *Binary) ChildExprs() []Expr { return []Expr{b.L, b.R} }

// WithChildExprs implements Expr.
func (b *Binary) WithChildExprs(ch []Expr) Expr {
	return &Binary{Op: b.Op, L: ch[0], R: ch[1], ResultKind: b.ResultKind}
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op    UnaryOp
	Child Expr
	// ResultKind is set by the analyzer for negation.
	ResultKind types.Kind
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
)

// Type implements Expr.
func (u *Unary) Type() types.Kind {
	if u.Op == OpNot {
		return types.KindBool
	}
	return u.ResultKind
}

// String implements Expr.
func (u *Unary) String() string {
	if u.Op == OpNot {
		return "(NOT " + u.Child.String() + ")"
	}
	return "(-" + u.Child.String() + ")"
}

// ChildExprs implements Expr.
func (u *Unary) ChildExprs() []Expr { return []Expr{u.Child} }

// WithChildExprs implements Expr.
func (u *Unary) WithChildExprs(ch []Expr) Expr {
	return &Unary{Op: u.Op, Child: ch[0], ResultKind: u.ResultKind}
}

// IsNull tests nullness.
type IsNull struct {
	Child   Expr
	Negated bool
}

// Type implements Expr.
func (e *IsNull) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (e *IsNull) String() string {
	if e.Negated {
		return "(" + e.Child.String() + " IS NOT NULL)"
	}
	return "(" + e.Child.String() + " IS NULL)"
}

// ChildExprs implements Expr.
func (e *IsNull) ChildExprs() []Expr { return []Expr{e.Child} }

// WithChildExprs implements Expr.
func (e *IsNull) WithChildExprs(ch []Expr) Expr {
	return &IsNull{Child: ch[0], Negated: e.Negated}
}

// InList is `expr [NOT] IN (v1, v2, ...)`.
type InList struct {
	Child   Expr
	List    []Expr
	Negated bool
}

// Type implements Expr.
func (e *InList) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	op := " IN ("
	if e.Negated {
		op = " NOT IN ("
	}
	return "(" + e.Child.String() + op + strings.Join(items, ", ") + "))"
}

// ChildExprs implements Expr.
func (e *InList) ChildExprs() []Expr {
	return append([]Expr{e.Child}, e.List...)
}

// WithChildExprs implements Expr.
func (e *InList) WithChildExprs(ch []Expr) Expr {
	return &InList{Child: ch[0], List: ch[1:], Negated: e.Negated}
}

// Like is `expr [NOT] LIKE pattern` with % and _ wildcards.
type Like struct {
	Child   Expr
	Pattern Expr
	Negated bool
}

// Type implements Expr.
func (e *Like) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (e *Like) String() string {
	op := " LIKE "
	if e.Negated {
		op = " NOT LIKE "
	}
	return "(" + e.Child.String() + op + e.Pattern.String() + ")"
}

// ChildExprs implements Expr.
func (e *Like) ChildExprs() []Expr { return []Expr{e.Child, e.Pattern} }

// WithChildExprs implements Expr.
func (e *Like) WithChildExprs(ch []Expr) Expr {
	return &Like{Child: ch[0], Pattern: ch[1], Negated: e.Negated}
}

// WhenClause is one WHEN...THEN arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression (the analyzer rewrites the simple form
// into the searched form).
type Case struct {
	Whens []WhenClause
	Else  Expr // may be nil (NULL)
	// ResultKind is set by the analyzer.
	ResultKind types.Kind
}

// Type implements Expr.
func (e *Case) Type() types.Kind { return e.ResultKind }

// String implements Expr.
func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// ChildExprs implements Expr.
func (e *Case) ChildExprs() []Expr {
	out := make([]Expr, 0, len(e.Whens)*2+1)
	for _, w := range e.Whens {
		out = append(out, w.Cond, w.Then)
	}
	if e.Else != nil {
		out = append(out, e.Else)
	}
	return out
}

// WithChildExprs implements Expr.
func (e *Case) WithChildExprs(ch []Expr) Expr {
	out := &Case{Whens: make([]WhenClause, len(e.Whens)), ResultKind: e.ResultKind}
	for i := range e.Whens {
		out.Whens[i] = WhenClause{Cond: ch[2*i], Then: ch[2*i+1]}
	}
	if e.Else != nil {
		out.Else = ch[len(e.Whens)*2]
	}
	return out
}

// Cast converts an expression to a target kind.
type Cast struct {
	Child Expr
	To    types.Kind
}

// Type implements Expr.
func (e *Cast) Type() types.Kind { return e.To }

// String implements Expr.
func (e *Cast) String() string {
	return "CAST(" + e.Child.String() + " AS " + e.To.String() + ")"
}

// ChildExprs implements Expr.
func (e *Cast) ChildExprs() []Expr { return []Expr{e.Child} }

// WithChildExprs implements Expr.
func (e *Cast) WithChildExprs(ch []Expr) Expr { return &Cast{Child: ch[0], To: e.To} }

// FuncCall is an unresolved function invocation: a scalar builtin, an
// aggregate, or a cataloged UDF — the analyzer decides which.
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
}

// Type implements Expr.
func (e *FuncCall) Type() types.Kind { return types.KindNull }

// String implements Expr.
func (e *FuncCall) String() string {
	if len(e.Args) == 0 && strings.EqualFold(e.Name, "count") {
		return "COUNT(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return strings.ToUpper(e.Name) + "(" + d + strings.Join(args, ", ") + ")"
}

// ChildExprs implements Expr.
func (e *FuncCall) ChildExprs() []Expr { return e.Args }

// WithChildExprs implements Expr.
func (e *FuncCall) WithChildExprs(ch []Expr) Expr {
	return &FuncCall{Name: e.Name, Args: ch, Distinct: e.Distinct}
}

// ScalarFunc is a resolved builtin scalar function.
type ScalarFunc struct {
	Name       string
	Args       []Expr
	ResultKind types.Kind
}

// Type implements Expr.
func (e *ScalarFunc) Type() types.Kind { return e.ResultKind }

// String implements Expr.
func (e *ScalarFunc) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return strings.ToUpper(e.Name) + "(" + strings.Join(args, ", ") + ")"
}

// ChildExprs implements Expr.
func (e *ScalarFunc) ChildExprs() []Expr { return e.Args }

// WithChildExprs implements Expr.
func (e *ScalarFunc) WithChildExprs(ch []Expr) Expr {
	return &ScalarFunc{Name: e.Name, Args: ch, ResultKind: e.ResultKind}
}

// AggFunc is a resolved aggregate function.
type AggFunc struct {
	Name       string // sum, count, min, max, avg
	Arg        Expr   // nil for COUNT(*)
	Distinct   bool
	ResultKind types.Kind
}

// Type implements Expr.
func (e *AggFunc) Type() types.Kind { return e.ResultKind }

// String implements Expr.
func (e *AggFunc) String() string {
	arg := "*"
	if e.Arg != nil {
		arg = e.Arg.String()
	}
	if e.Distinct {
		arg = "DISTINCT " + arg
	}
	return strings.ToUpper(e.Name) + "(" + arg + ")"
}

// ChildExprs implements Expr.
func (e *AggFunc) ChildExprs() []Expr {
	if e.Arg == nil {
		return nil
	}
	return []Expr{e.Arg}
}

// WithChildExprs implements Expr.
func (e *AggFunc) WithChildExprs(ch []Expr) Expr {
	out := &AggFunc{Name: e.Name, Distinct: e.Distinct, ResultKind: e.ResultKind}
	if len(ch) > 0 {
		out.Arg = ch[0]
	}
	return out
}

// UDFCall is a resolved call of user code. Body is PyLite source text; Owner
// identifies the trust domain the code executes in. Ephemeral session UDFs
// have Cataloged=false.
type UDFCall struct {
	Name       string
	Owner      string
	Body       string
	ArgNames   []string
	Args       []Expr
	ResultKind types.Kind
	Cataloged  bool
	// Resources names the specialized execution environment this code
	// requires ("gpu", ...); empty runs on standard executors.
	Resources string
}

// Type implements Expr.
func (e *UDFCall) Type() types.Kind { return e.ResultKind }

// String implements Expr.
func (e *UDFCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return "UDF:" + e.Name + "(" + strings.Join(args, ", ") + ")"
}

// ChildExprs implements Expr.
func (e *UDFCall) ChildExprs() []Expr { return e.Args }

// WithChildExprs implements Expr.
func (e *UDFCall) WithChildExprs(ch []Expr) Expr {
	cp := *e
	cp.Args = ch
	return &cp
}

// CurrentUser evaluates to the session user at execution time. It is the
// backbone of dynamic views and row filters.
type CurrentUser struct{}

// Type implements Expr.
func (e *CurrentUser) Type() types.Kind { return types.KindString }

// String implements Expr.
func (e *CurrentUser) String() string { return "CURRENT_USER()" }

// ChildExprs implements Expr.
func (e *CurrentUser) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (e *CurrentUser) WithChildExprs([]Expr) Expr { return e }

// GroupMember evaluates to true when the session user belongs to the named
// account group (IS_ACCOUNT_GROUP_MEMBER in Unity Catalog).
type GroupMember struct {
	Group string
}

// Type implements Expr.
func (e *GroupMember) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (e *GroupMember) String() string {
	return "IS_ACCOUNT_GROUP_MEMBER('" + e.Group + "')"
}

// ChildExprs implements Expr.
func (e *GroupMember) ChildExprs() []Expr { return nil }

// WithChildExprs implements Expr.
func (e *GroupMember) WithChildExprs([]Expr) Expr { return e }

// TransformExpr rewrites an expression bottom-up, replacing each node with
// f(node) after its children have been transformed.
func TransformExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	children := e.ChildExprs()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = TransformExpr(c, f)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildExprs(newChildren)
		}
	}
	return f(e)
}

// WalkExpr visits every node of an expression tree, stopping early if the
// visitor returns false.
func WalkExpr(e Expr, visit func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !visit(e) {
		return false
	}
	for _, c := range e.ChildExprs() {
		if !WalkExpr(c, visit) {
			return false
		}
	}
	return true
}

// ExprContains reports whether any node in e satisfies pred.
func ExprContains(e Expr, pred func(Expr) bool) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if pred(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// OutputName derives the display name for a projection item.
func OutputName(e Expr) string {
	switch t := e.(type) {
	case *Alias:
		return t.Name
	case *ColumnRef:
		return t.Name
	case *BoundRef:
		return t.Name
	}
	return e.String()
}
