package plan

import (
	"fmt"
	"strings"

	"lakeguard/internal/types"
)

// Node is a logical plan operator.
type Node interface {
	// Schema returns the output schema. It is only meaningful after
	// analysis; unresolved nodes return an empty schema.
	Schema() *types.Schema
	// Children returns the input operators.
	Children() []Node
	// WithChildren returns a copy with the inputs replaced.
	WithChildren(children []Node) Node
	// String is a one-line description used by EXPLAIN.
	String() string
}

// UnresolvedRelation names a table, view, or function-backed relation before
// catalog resolution. Parts holds the identifier components, e.g.
// ["main", "clinical", "sales"] or just ["sales"].
type UnresolvedRelation struct {
	Parts []string
	// AsOfVersion requests time travel when >= 0.
	AsOfVersion int64
}

// NewUnresolvedRelation builds a relation reference from identifier parts.
func NewUnresolvedRelation(parts ...string) *UnresolvedRelation {
	return &UnresolvedRelation{Parts: parts, AsOfVersion: -1}
}

// Schema implements Node.
func (r *UnresolvedRelation) Schema() *types.Schema { return &types.Schema{} }

// Children implements Node.
func (r *UnresolvedRelation) Children() []Node { return nil }

// WithChildren implements Node.
func (r *UnresolvedRelation) WithChildren([]Node) Node { return r }

// String implements Node.
func (r *UnresolvedRelation) String() string {
	s := "UnresolvedRelation " + strings.Join(r.Parts, ".")
	if r.AsOfVersion >= 0 {
		s += fmt.Sprintf(" VERSION AS OF %d", r.AsOfVersion)
	}
	return s
}

// Name returns the dotted identifier.
func (r *UnresolvedRelation) Name() string { return strings.Join(r.Parts, ".") }

// Scan is a resolved read of a stored table. PushedFilters and
// ProjectedCols are filled by the optimizer for scan pushdown.
type Scan struct {
	// Table is the fully qualified name (catalog.schema.table).
	Table string
	// TableSchema is the full stored schema.
	TableSchema *types.Schema
	// Version is the table version to read (-1 = latest).
	Version int64
	// PushedFilters are conjuncts evaluated during the scan.
	PushedFilters []Expr
	// ProjectedCols are indices into TableSchema kept by the scan
	// (nil = all).
	ProjectedCols []int
	// RunAsUser is the identity storage credentials are vended under. The
	// analyzer sets it to the resolving identity, which inside a view body
	// is the view owner (definer rights); empty means the session user.
	RunAsUser string
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema {
	if s.ProjectedCols == nil {
		return s.TableSchema
	}
	return s.TableSchema.Project(s.ProjectedCols)
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren([]Node) Node { return s }

// String implements Node.
func (s *Scan) String() string {
	out := "Scan " + s.Table
	if s.Version >= 0 {
		out += fmt.Sprintf("@v%d", s.Version)
	}
	if s.ProjectedCols != nil {
		out += " cols=" + strings.Join(s.Schema().Names(), ",")
	}
	if len(s.PushedFilters) > 0 {
		fs := make([]string, len(s.PushedFilters))
		for i, f := range s.PushedFilters {
			fs[i] = f.String()
		}
		out += " pushed=[" + strings.Join(fs, " AND ") + "]"
	}
	return out
}

// LocalRelation is literal in-memory data (DataFrame.CreateDataFrame, remote
// result stitching, VALUES lists).
type LocalRelation struct {
	Data *types.Batch
}

// Schema implements Node.
func (l *LocalRelation) Schema() *types.Schema { return l.Data.Schema }

// Children implements Node.
func (l *LocalRelation) Children() []Node { return nil }

// WithChildren implements Node.
func (l *LocalRelation) WithChildren([]Node) Node { return l }

// String implements Node.
func (l *LocalRelation) String() string {
	return fmt.Sprintf("LocalRelation %s rows=%d", l.Data.Schema.String(), l.Data.NumRows())
}

// Filter keeps rows satisfying Cond.
type Filter struct {
	Cond  Expr
	Child Node
}

// Schema implements Node.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// WithChildren implements Node.
func (f *Filter) WithChildren(ch []Node) Node { return &Filter{Cond: f.Cond, Child: ch[0]} }

// String implements Node.
func (f *Filter) String() string { return "Filter " + f.Cond.String() }

// Project computes a new row from each input row.
type Project struct {
	Exprs []Expr
	Child Node
	// schema is computed by the analyzer.
	OutSchema *types.Schema
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema {
	if p.OutSchema != nil {
		return p.OutSchema
	}
	return &types.Schema{}
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Exprs: p.Exprs, Child: ch[0], OutSchema: p.OutSchema}
}

// String implements Node.
func (p *Project) String() string {
	items := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		items[i] = e.String()
	}
	return "Project [" + strings.Join(items, ", ") + "]"
}

// Aggregate groups rows and computes aggregates. After analysis, Aggs
// contains only *Alias-wrapped expressions whose leaves over the child are
// BoundRefs and whose aggregate calls are AggFunc nodes.
type Aggregate struct {
	GroupBy []Expr
	Aggs    []Expr
	Child   Node
	// OutSchema is computed by the analyzer.
	OutSchema *types.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() *types.Schema {
	if a.OutSchema != nil {
		return a.OutSchema
	}
	return &types.Schema{}
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(ch []Node) Node {
	return &Aggregate{GroupBy: a.GroupBy, Aggs: a.Aggs, Child: ch[0], OutSchema: a.OutSchema}
}

// String implements Node.
func (a *Aggregate) String() string {
	gs := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		gs[i] = g.String()
	}
	as := make([]string, len(a.Aggs))
	for i, e := range a.Aggs {
		as[i] = e.String()
	}
	return "Aggregate group=[" + strings.Join(gs, ", ") + "] aggs=[" + strings.Join(as, ", ") + "]"
}

// JoinType enumerates supported join types.
type JoinType uint8

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
	JoinLeftSemi
	JoinLeftAnti
)

var joinNames = [...]string{
	JoinInner: "INNER", JoinLeft: "LEFT", JoinRight: "RIGHT",
	JoinFull: "FULL", JoinCross: "CROSS", JoinLeftSemi: "LEFT SEMI", JoinLeftAnti: "LEFT ANTI",
}

// String returns the SQL name of the join type.
func (t JoinType) String() string { return joinNames[t] }

// Join combines two inputs.
type Join struct {
	Type JoinType
	Cond Expr // nil for CROSS
	L, R Node
}

// Schema implements Node.
func (j *Join) Schema() *types.Schema {
	switch j.Type {
	case JoinLeftSemi, JoinLeftAnti:
		return j.L.Schema()
	}
	s := j.L.Schema().Concat(j.R.Schema())
	// Outer joins make the non-preserved side nullable.
	if j.Type == JoinLeft || j.Type == JoinFull {
		for i := j.L.Schema().Len(); i < s.Len(); i++ {
			s.Fields[i].Nullable = true
		}
	}
	if j.Type == JoinRight || j.Type == JoinFull {
		for i := 0; i < j.L.Schema().Len(); i++ {
			s.Fields[i].Nullable = true
		}
	}
	return s
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	return &Join{Type: j.Type, Cond: j.Cond, L: ch[0], R: ch[1]}
}

// String implements Node.
func (j *Join) String() string {
	s := j.Type.String() + " Join"
	if j.Cond != nil {
		s += " ON " + j.Cond.String()
	}
	return s
}

// SortOrder is one ORDER BY term.
type SortOrder struct {
	Expr Expr
	Desc bool
}

// Sort orders the input.
type Sort struct {
	Orders []SortOrder
	Child  Node
}

// Schema implements Node.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node { return &Sort{Orders: s.Orders, Child: ch[0]} }

// String implements Node.
func (s *Sort) String() string {
	items := make([]string, len(s.Orders))
	for i, o := range s.Orders {
		items[i] = o.Expr.String()
		if o.Desc {
			items[i] += " DESC"
		}
	}
	return "Sort [" + strings.Join(items, ", ") + "]"
}

// Limit truncates the input to N rows after skipping Offset.
type Limit struct {
	N      int64
	Offset int64
	Child  Node
}

// Schema implements Node.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node {
	return &Limit{N: l.N, Offset: l.Offset, Child: ch[0]}
}

// String implements Node.
func (l *Limit) String() string {
	if l.Offset > 0 {
		return fmt.Sprintf("Limit %d OFFSET %d", l.N, l.Offset)
	}
	return fmt.Sprintf("Limit %d", l.N)
}

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// WithChildren implements Node.
func (d *Distinct) WithChildren(ch []Node) Node { return &Distinct{Child: ch[0]} }

// String implements Node.
func (d *Distinct) String() string { return "Distinct" }

// Union concatenates two inputs with compatible schemas (UNION ALL; wrap in
// Distinct for UNION).
type Union struct {
	L, R Node
}

// Schema implements Node.
func (u *Union) Schema() *types.Schema { return u.L.Schema() }

// Children implements Node.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

// WithChildren implements Node.
func (u *Union) WithChildren(ch []Node) Node { return &Union{L: ch[0], R: ch[1]} }

// String implements Node.
func (u *Union) String() string { return "Union" }

// SubqueryAlias names a subtree so columns can be qualified ("FROM (...) t").
type SubqueryAlias struct {
	Name  string
	Child Node
}

// Schema implements Node.
func (s *SubqueryAlias) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *SubqueryAlias) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *SubqueryAlias) WithChildren(ch []Node) Node {
	return &SubqueryAlias{Name: s.Name, Child: ch[0]}
}

// String implements Node.
func (s *SubqueryAlias) String() string { return "SubqueryAlias " + s.Name }

// SecureView is the policy barrier the analyzer injects when expanding a
// governed view, row filter, or column mask. Expressions inside the barrier
// (the policy predicates and mask expressions) must never propagate outside
// it: the optimizer will not pull filters or projections up through a
// SecureView, EXPLAIN redacts its interior for non-owners, and eFGAC rewrites
// replace the entire subtree with a RemoteScan.
type SecureView struct {
	// Name is the securable the barrier protects, e.g. "main.sales.sales".
	Name string
	// PolicyKinds documents which policies were injected ("row_filter",
	// "column_mask", "view").
	PolicyKinds []string
	// Labels are the governance obligations the analyzer seeded for this
	// barrier, one per policy instance (a column_mask label per masked
	// column, a row_filter and/or tenant_scope label for the row policy).
	// The sentinel's dataflow pass reads them from the analyzed plan — the
	// optimized plan cannot launder an obligation away by dropping them.
	Labels []Label
	Child  Node
}

// Schema implements Node.
func (s *SecureView) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *SecureView) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *SecureView) WithChildren(ch []Node) Node {
	return &SecureView{Name: s.Name, PolicyKinds: s.PolicyKinds, Labels: s.Labels, Child: ch[0]}
}

// String implements Node.
func (s *SecureView) String() string {
	return "SecureView " + s.Name + " [" + strings.Join(s.PolicyKinds, ",") + "]"
}

// RemoteScan is the eFGAC leaf: the named relation (and any pushed-down
// refinements) is executed remotely on serverless compute, which re-resolves
// it against the catalog and re-applies governance policies there. The local
// (dedicated) cluster never sees policy internals.
type RemoteScan struct {
	// Relation is the fully qualified governed relation.
	Relation string
	// OutSchema is the (masked) schema visible to the caller.
	OutSchema *types.Schema
	// PushedFilters, PushedProjection and PushedAggregate are refinements
	// the optimizer pushed into the remote subquery. They reference the
	// relation's visible schema by name.
	PushedFilters    []Expr
	PushedProjection []string
	// PushedAggregate, when non-nil, ships a partial aggregation remote-side.
	PushedAggregate *RemoteAggregate
	// PushedLimit truncates remotely when >= 0.
	PushedLimit int64
}

// RemoteAggregate describes a partial aggregation pushed into a RemoteScan.
type RemoteAggregate struct {
	GroupBy []string
	Aggs    []string // rendered agg expressions, e.g. "SUM(amount)"
}

// Schema implements Node.
func (r *RemoteScan) Schema() *types.Schema { return r.OutSchema }

// Children implements Node.
func (r *RemoteScan) Children() []Node { return nil }

// WithChildren implements Node.
func (r *RemoteScan) WithChildren([]Node) Node { return r }

// String implements Node.
func (r *RemoteScan) String() string {
	out := "RemoteScan " + r.Relation
	if len(r.PushedProjection) > 0 {
		out += " project=[" + strings.Join(r.PushedProjection, ", ") + "]"
	}
	if len(r.PushedFilters) > 0 {
		fs := make([]string, len(r.PushedFilters))
		for i, f := range r.PushedFilters {
			fs[i] = f.String()
		}
		out += " filters=[" + strings.Join(fs, " AND ") + "]"
	}
	if r.PushedAggregate != nil {
		out += " partialAgg=[group: " + strings.Join(r.PushedAggregate.GroupBy, ", ") +
			"; aggs: " + strings.Join(r.PushedAggregate.Aggs, ", ") + "]"
	}
	if r.PushedLimit >= 0 {
		out += fmt.Sprintf(" limit=%d", r.PushedLimit)
	}
	return out
}

// SQLRelation embeds a SQL query text as a composable relation (the Connect
// client's sql() entry point). The server substitutes it with the parsed
// query before analysis.
type SQLRelation struct {
	Query string
}

// Schema implements Node.
func (s *SQLRelation) Schema() *types.Schema { return &types.Schema{} }

// Children implements Node.
func (s *SQLRelation) Children() []Node { return nil }

// WithChildren implements Node.
func (s *SQLRelation) WithChildren([]Node) Node { return s }

// String implements Node.
func (s *SQLRelation) String() string { return "SQL " + s.Query }

// Transform rewrites a plan bottom-up.
func Transform(n Node, f func(Node) Node) Node {
	if n == nil {
		return nil
	}
	children := n.Children()
	if len(children) > 0 {
		newChildren := make([]Node, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Transform(c, f)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newChildren)
		}
	}
	return f(n)
}

// Walk visits every plan node pre-order, stopping early if the visitor
// returns false.
func Walk(n Node, visit func(Node) bool) bool {
	if n == nil {
		return true
	}
	if !visit(n) {
		return false
	}
	for _, c := range n.Children() {
		if !Walk(c, visit) {
			return false
		}
	}
	return true
}

// Contains reports whether any node in the plan satisfies pred.
func Contains(n Node, pred func(Node) bool) bool {
	found := false
	Walk(n, func(x Node) bool {
		if pred(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Explain renders the plan as an indented tree.
func Explain(n Node) string {
	var b strings.Builder
	explainInto(&b, n, 0)
	return b.String()
}

func explainInto(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if depth > 0 {
		b.WriteString("+- ")
	}
	b.WriteString(n.String())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explainInto(b, c, depth+1)
	}
}

// ExplainRedacted renders the plan hiding the interior of SecureView
// barriers — the form shown to users who do not own the underlying policies.
func ExplainRedacted(n Node) string {
	var b strings.Builder
	explainRedactedInto(&b, n, 0)
	return b.String()
}

func explainRedactedInto(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if depth > 0 {
		b.WriteString("+- ")
	}
	if sv, ok := n.(*SecureView); ok {
		b.WriteString(sv.String())
		b.WriteString(" <redacted>\n")
		return
	}
	b.WriteString(n.String())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explainRedactedInto(b, c, depth+1)
	}
}
