package plan

import (
	"strings"
	"testing"

	"lakeguard/internal/types"
)

func TestLabelString(t *testing.T) {
	cases := []struct {
		l    Label
		want string
	}{
		{Label{Kind: LabelColumnMask, Securable: "main.default.sales", Column: "seller"}, "column_mask:main.default.sales.seller"},
		{Label{Kind: LabelRowFilter, Securable: "main.default.sales"}, "row_filter:main.default.sales"},
		{Label{Kind: LabelRowFilter, Securable: "main.default.sales", Instance: 2}, "row_filter:main.default.sales#2"},
		{Label{Kind: LabelTenantScope, Securable: "main.hr.people"}, "tenant_scope:main.hr.people"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("Label.String() = %q, want %q", got, c.want)
		}
	}
}

func TestLabelSetOps(t *testing.T) {
	a := Label{Kind: LabelColumnMask, Securable: "t", Column: "a"}
	b := Label{Kind: LabelRowFilter, Securable: "t"}
	c := Label{Kind: LabelTenantScope, Securable: "u"}

	var zero LabelSet
	if !zero.Empty() || zero.Len() != 0 || zero.String() != "∅" {
		t.Fatalf("zero LabelSet not empty: %v", zero)
	}
	s := NewLabelSet(a, b)
	if s.Len() != 2 || !s.Has(a) || !s.Has(b) || s.Has(c) {
		t.Fatalf("NewLabelSet membership wrong: %v", s)
	}
	u := s.Union(NewLabelSet(b, c))
	if u.Len() != 3 {
		t.Fatalf("Union = %v, want 3 members", u)
	}
	if s.Len() != 2 {
		t.Fatalf("Union mutated receiver: %v", s)
	}
	w := u.Without(b)
	if w.Len() != 2 || w.Has(b) || !u.Has(b) {
		t.Fatalf("Without wrong or mutated receiver: %v / %v", w, u)
	}
	add := zero.Add(c)
	if !add.Has(c) || add.Len() != 1 {
		t.Fatalf("Add on zero set: %v", add)
	}
	masks := u.Filter(func(l Label) bool { return l.Kind == LabelColumnMask })
	if masks.Len() != 1 || !masks.Has(a) {
		t.Fatalf("Filter: %v", masks)
	}
	// Deterministic sorted rendering.
	want := "column_mask:t.a, row_filter:t, tenant_scope:u"
	if got := u.String(); got != want {
		t.Errorf("Set.String() = %q, want %q", got, want)
	}
}

func TestCloneDetachesPlan(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "region", Kind: types.KindString},
	)
	scan := &Scan{
		Table:         "main.default.sales",
		TableSchema:   schema,
		Version:       -1,
		PushedFilters: []Expr{Eq(&BoundRef{Index: 1, Name: "region", Kind: types.KindString}, Lit(types.String("US")))},
	}
	orig := &SecureView{
		Name:        "main.default.sales",
		PolicyKinds: []string{"row_filter"},
		Labels:      []Label{{Kind: LabelRowFilter, Securable: "main.default.sales"}},
		Child:       &Filter{Cond: Eq(&BoundRef{Index: 0, Name: "amount", Kind: types.KindFloat64}, Lit(types.Float64(1))), Child: scan},
	}
	before := Explain(orig)

	cp := Clone(orig).(*SecureView)
	// Tamper with every mutable part of the original.
	scan.PushedFilters = nil
	scan.Table = "tampered"
	orig.Labels[0] = Label{Kind: LabelColumnMask, Securable: "x"}
	orig.Child.(*Filter).Cond = Lit(types.Bool(true))

	if got := Explain(cp); got != before {
		t.Fatalf("clone changed when original was mutated:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if cp.Labels[0].Kind != LabelRowFilter {
		t.Fatalf("clone shares Labels slice with original")
	}
}

func TestCloneExprDeep(t *testing.T) {
	udf := &UDFCall{
		Name:     "f",
		Owner:    "alice@corp.com",
		Body:     "return x",
		ArgNames: []string{"x"},
		Args:     []Expr{&BoundRef{Index: 0, Name: "seller", Kind: types.KindString}},
	}
	e := &Case{
		Whens: []WhenClause{{Cond: &IsNull{Child: udf}, Then: Lit(types.String("a"))}},
		Else:  &InList{Child: Col("region"), List: []Expr{Lit(types.String("US"))}},
	}
	before := e.String()
	cp := CloneExpr(e)
	udf.Args[0] = Lit(types.String("swapped"))
	e.Whens[0].Then = Lit(types.String("tampered"))
	if cp.String() != before {
		t.Fatalf("expr clone shares structure:\nbefore: %s\nafter:  %s", cp.String(), before)
	}
}

func TestRedactedString(t *testing.T) {
	e := And(
		Eq(Col("region"), Lit(types.String("US"))),
		&GroupMember{Group: "finance"},
	)
	got := RedactedString(e)
	if strings.Contains(got, "US") || strings.Contains(got, "finance") {
		t.Fatalf("RedactedString leaked literals: %q", got)
	}
	if !strings.Contains(got, "region") {
		t.Fatalf("RedactedString dropped column name: %q", got)
	}
	if !strings.Contains(got, "?") {
		t.Fatalf("RedactedString missing placeholder: %q", got)
	}
	// Original expression is untouched.
	if !strings.Contains(e.String(), "US") {
		t.Fatalf("RedactedString mutated its input: %q", e.String())
	}
	if RedactedString(nil) != "?" {
		t.Fatalf("RedactedString(nil) = %q", RedactedString(nil))
	}
}
