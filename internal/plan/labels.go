package plan

import (
	"sort"
	"strings"
)

// LabelKind classifies a governance obligation attached to data flowing
// through a plan. Labels are the currency of the sentinel's information-flow
// pass: the analyzer seeds them from catalog policies, the verifier
// propagates them through the optimized plan's dataflow, and a plan is only
// executable when every label has been discharged by a surviving policy
// operator before it reaches a sink (client rows, sandboxed UDF arguments,
// remote pushdowns).
type LabelKind string

// Label kinds.
const (
	// LabelRowFilter marks rows of a governed table that must pass the
	// table's row-filter predicate before anything may observe them.
	LabelRowFilter LabelKind = "row_filter"
	// LabelColumnMask marks the raw value of a masked column; it is
	// discharged by the policy's mask expression and by nothing else.
	LabelColumnMask LabelKind = "column_mask"
	// LabelTenantScope marks rows governed by an identity-dependent row
	// filter (one referencing CURRENT_USER or IS_ACCOUNT_GROUP_MEMBER):
	// leaking them crosses a tenant boundary, not just a predicate.
	LabelTenantScope LabelKind = "tenant_scope"
)

// Label is one governance obligation. Labels are comparable values: two
// labels are the same obligation iff all fields match. Instance
// distinguishes multiple occurrences of the same securable in one plan
// (self-joins), so each occurrence tracks its own discharge state.
type Label struct {
	Kind      LabelKind
	Securable string // governed object, e.g. "main.default.sales"
	Column    string // masked column (lower-cased); "" for row obligations
	Instance  int    // occurrence index within one plan; 0 outside a plan
}

// String renders the label for violation messages and audit events, e.g.
// "column_mask:main.default.sales.ssn" or "row_filter:main.default.sales#1".
// It never includes policy predicate text (labels are side-channel safe).
func (l Label) String() string {
	var b strings.Builder
	b.WriteString(string(l.Kind))
	b.WriteByte(':')
	b.WriteString(l.Securable)
	if l.Column != "" {
		b.WriteByte('.')
		b.WriteString(l.Column)
	}
	if l.Instance > 0 {
		b.WriteByte('#')
		b.WriteString(itoa(l.Instance))
	}
	return b.String()
}

// itoa is a minimal positive-int formatter (avoids strconv for one call
// site's sake — kept trivial on purpose).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// LabelSet is a set of obligations. The dataflow lattice is the powerset of
// labels ordered by inclusion: join is union, bottom is the empty set. All
// operations treat the zero value as the empty set and never mutate their
// receivers — sets are shared freely across plan nodes during propagation.
type LabelSet struct {
	m map[Label]struct{}
}

// NewLabelSet builds a set from labels.
func NewLabelSet(labels ...Label) LabelSet {
	if len(labels) == 0 {
		return LabelSet{}
	}
	m := make(map[Label]struct{}, len(labels))
	for _, l := range labels {
		m[l] = struct{}{}
	}
	return LabelSet{m: m}
}

// Empty reports whether the set carries no obligations.
func (s LabelSet) Empty() bool { return len(s.m) == 0 }

// Len returns the number of obligations.
func (s LabelSet) Len() int { return len(s.m) }

// Has reports membership.
func (s LabelSet) Has(l Label) bool {
	_, ok := s.m[l]
	return ok
}

// Union returns the lattice join of s and t (either operand may be reused).
func (s LabelSet) Union(t LabelSet) LabelSet {
	if t.Empty() {
		return s
	}
	if s.Empty() {
		return t
	}
	m := make(map[Label]struct{}, len(s.m)+len(t.m))
	for l := range s.m {
		m[l] = struct{}{}
	}
	for l := range t.m {
		m[l] = struct{}{}
	}
	return LabelSet{m: m}
}

// Add returns s ∪ {l}.
func (s LabelSet) Add(l Label) LabelSet {
	if s.Has(l) {
		return s
	}
	m := make(map[Label]struct{}, len(s.m)+1)
	for x := range s.m {
		m[x] = struct{}{}
	}
	m[l] = struct{}{}
	return LabelSet{m: m}
}

// Without returns s \ {l}.
func (s LabelSet) Without(l Label) LabelSet {
	if !s.Has(l) {
		return s
	}
	m := make(map[Label]struct{}, len(s.m)-1)
	for x := range s.m {
		if x != l {
			m[x] = struct{}{}
		}
	}
	return LabelSet{m: m}
}

// Filter returns the subset satisfying keep.
func (s LabelSet) Filter(keep func(Label) bool) LabelSet {
	if s.Empty() {
		return s
	}
	var out []Label
	for l := range s.m {
		if keep(l) {
			out = append(out, l)
		}
	}
	return NewLabelSet(out...)
}

// Labels returns the members sorted by their string form (deterministic for
// messages and tests).
func (s LabelSet) Labels() []Label {
	out := make([]Label, 0, len(s.m))
	for l := range s.m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// String renders the set as a sorted, comma-separated list ("∅" when empty).
func (s LabelSet) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, 0, len(s.m))
	for _, l := range s.Labels() {
		parts = append(parts, l.String())
	}
	return strings.Join(parts, ", ")
}
