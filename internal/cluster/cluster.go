// Package cluster models the Databricks host architecture (paper Fig. 7): a
// cluster of hosts, each provisioned into a runtime environment reachable by
// the engine and a decoupled, protected cluster-management plane that
// provisions sandboxes on request. The manager is the sandbox.Factory the
// dispatcher calls into; Spark processes never create sandboxes themselves.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lakeguard/internal/catalog"
	"lakeguard/internal/faults"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/telemetry"
)

// Host is one machine in the cluster.
type Host struct {
	ID string

	mu        sync.Mutex
	sandboxes map[string]*sandbox.Sandbox
	// reserved counts placement slots claimed by in-flight provisioning, so
	// concurrent CreateSandbox calls cannot both pass the density check and
	// overshoot MaxSandboxesPerHost (TOCTOU fix).
	reserved int
}

// SandboxCount reports how many sandboxes run on the host.
func (h *Host) SandboxCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sandboxes)
}

// load is the placement load: resident sandboxes plus reserved slots.
func (h *Host) load() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sandboxes) + h.reserved
}

func (h *Host) reserve() {
	h.mu.Lock()
	h.reserved++
	h.mu.Unlock()
}

func (h *Host) unreserve() {
	h.mu.Lock()
	h.reserved--
	h.mu.Unlock()
}

// commit converts a reservation into a resident sandbox.
func (h *Host) commit(sb *sandbox.Sandbox) {
	h.mu.Lock()
	h.reserved--
	h.sandboxes[sb.ID] = sb
	h.mu.Unlock()
}

// Config parametrizes a cluster.
type Config struct {
	// Name labels the cluster (audit attribution).
	Name string
	// Compute is the cluster's compute type, which drives the catalog's
	// privilege scoping.
	Compute catalog.ComputeType
	// Hosts is the number of machines (minimum 1).
	Hosts int
	// MaxSandboxesPerHost caps density (0 = unlimited).
	MaxSandboxesPerHost int
	// Sandbox is the per-sandbox configuration (cold start, fuel, egress).
	Sandbox sandbox.Config
	// ResourcePools defines specialized execution environments outside the
	// standard executor hosts (paper §3.3), e.g. "gpu" or "highmem". UDFs
	// declaring a resource requirement are routed here.
	ResourcePools map[string]PoolConfig
	// Faults is the chaos-test fault injector (site cluster.provision); it
	// is also handed to sandboxes that don't configure their own.
	Faults *faults.Injector
}

// PoolConfig describes one specialized resource pool.
type PoolConfig struct {
	// Hosts is the pool size (minimum 1).
	Hosts int
	// Sandbox overrides the sandbox configuration for this pool; nil
	// inherits the cluster default.
	Sandbox *sandbox.Config
}

// ErrCapacity is returned when every host is at its sandbox cap.
var ErrCapacity = errors.New("cluster: no host has sandbox capacity")

// Manager is the protected cluster-management plane.
type Manager struct {
	cfg       Config
	hosts     []*Host
	poolHosts map[string][]*Host

	// placeMu serializes host selection + slot reservation so concurrent
	// provisioning never double-books the last slot of a host.
	placeMu sync.Mutex

	mu              sync.Mutex
	provisioned     int64
	evicted         int64
	poolProvisioned map[string]int64
	// byID maps live sandboxes to their host for eviction.
	byID map[string]*Host
}

// NewManager provisions a cluster.
func NewManager(cfg Config) *Manager {
	if cfg.Hosts < 1 {
		cfg.Hosts = 1
	}
	if cfg.Sandbox.Faults == nil {
		cfg.Sandbox.Faults = cfg.Faults
	}
	m := &Manager{
		cfg:             cfg,
		poolHosts:       map[string][]*Host{},
		poolProvisioned: map[string]int64{},
		byID:            map[string]*Host{},
	}
	for i := 0; i < cfg.Hosts; i++ {
		m.hosts = append(m.hosts, &Host{
			ID:        fmt.Sprintf("%s-host-%d", cfg.Name, i),
			sandboxes: map[string]*sandbox.Sandbox{},
		})
	}
	for pool, pc := range cfg.ResourcePools {
		n := pc.Hosts
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			m.poolHosts[pool] = append(m.poolHosts[pool], &Host{
				ID:        fmt.Sprintf("%s-%s-host-%d", cfg.Name, pool, i),
				sandboxes: map[string]*sandbox.Sandbox{},
			})
		}
	}
	return m
}

// Name returns the cluster name.
func (m *Manager) Name() string { return m.cfg.Name }

// Compute returns the cluster's compute type.
func (m *Manager) Compute() catalog.ComputeType { return m.cfg.Compute }

// Hosts returns the cluster's hosts.
func (m *Manager) Hosts() []*Host { return m.hosts }

// Provisioned reports how many sandboxes the manager has created in total.
func (m *Manager) Provisioned() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.provisioned
}

// Evicted reports how many sandboxes were evicted from their hosts.
func (m *Manager) Evicted() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// CreateSandbox implements sandbox.Factory: it picks the least-loaded host
// and provisions a sandbox there. MultiUser isolation holds regardless of
// placement: the sandbox boundary, not the host boundary, is the security
// boundary, which is why standard clusters can share hosts between users
// (unlike the Membrane-style static split).
func (m *Manager) CreateSandbox(ctx context.Context, trustDomain string) (*sandbox.Sandbox, error) {
	return m.CreateSandboxResources(ctx, trustDomain, "")
}

// CreateSandboxResources implements sandbox.ResourceFactory: a non-empty
// resource class routes to that specialized pool's hosts with the pool's
// sandbox configuration.
func (m *Manager) CreateSandboxResources(ctx context.Context, trustDomain, resources string) (*sandbox.Sandbox, error) {
	ctx, sp := telemetry.StartSpan(ctx, "cluster.provision")
	sp.SetAttr("cluster", m.cfg.Name)
	sp.SetAttr("domain", trustDomain)
	if resources != "" {
		sp.SetAttr("pool", resources)
	}
	sb, err := m.createSandboxResources(ctx, trustDomain, resources)
	if err != nil {
		if site := faults.SiteOf(err); site != "" {
			sp.SetAttr("fault.site", site)
		}
	} else {
		sp.SetAttr("sandbox", sb.ID)
	}
	sp.EndErr(err)
	return sb, err
}

func (m *Manager) createSandboxResources(ctx context.Context, trustDomain, resources string) (*sandbox.Sandbox, error) {
	hosts := m.hosts
	cfg := m.cfg.Sandbox
	if resources != "" {
		pc, ok := m.cfg.ResourcePools[resources]
		if !ok {
			return nil, fmt.Errorf("cluster: no resource pool %q on cluster %s", resources, m.cfg.Name)
		}
		hosts = m.poolHosts[resources]
		if pc.Sandbox != nil {
			cfg = *pc.Sandbox
			if cfg.Faults == nil {
				cfg.Faults = m.cfg.Faults
			}
		}
	}
	if err := m.cfg.Faults.CheckContext(ctx, faults.SiteClusterProvision); err != nil {
		return nil, fmt.Errorf("cluster: provisioning on %s: %w", m.cfg.Name, err)
	}
	// Pick and reserve atomically; the slow sandbox creation happens with
	// the slot already held, never exceeding the density cap.
	m.placeMu.Lock()
	host := pickLeastLoaded(hosts, m.cfg.MaxSandboxesPerHost)
	if host != nil {
		host.reserve()
	}
	m.placeMu.Unlock()
	if host == nil {
		return nil, ErrCapacity
	}
	sb, err := sandbox.NewContext(ctx, trustDomain, cfg)
	if err != nil {
		host.unreserve()
		return nil, err
	}
	sb.Resources = resources
	host.commit(sb)
	m.mu.Lock()
	m.provisioned++
	m.byID[sb.ID] = host
	if resources != "" {
		m.poolProvisioned[resources]++
	}
	m.mu.Unlock()
	return sb, nil
}

// EvictSandbox implements sandbox.Evictor: it removes a (closed) sandbox
// from its host so the slot can be reused. Unknown sandboxes are ignored.
func (m *Manager) EvictSandbox(sb *sandbox.Sandbox) {
	m.mu.Lock()
	host := m.byID[sb.ID]
	if host != nil {
		delete(m.byID, sb.ID)
		m.evicted++
	}
	m.mu.Unlock()
	if host == nil {
		return
	}
	host.mu.Lock()
	delete(host.sandboxes, sb.ID)
	host.mu.Unlock()
}

// PoolProvisioned reports how many sandboxes a resource pool has created.
func (m *Manager) PoolProvisioned(resources string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.poolProvisioned[resources]
}

// PoolHosts returns a resource pool's hosts.
func (m *Manager) PoolHosts(resources string) []*Host { return m.poolHosts[resources] }

func pickLeastLoaded(hosts []*Host, maxPerHost int) *Host {
	var best *Host
	bestCount := -1
	for _, h := range hosts {
		c := h.load()
		if maxPerHost > 0 && c >= maxPerHost {
			continue
		}
		if best == nil || c < bestCount {
			best, bestCount = h, c
		}
	}
	return best
}

// ColdStartDelay returns the configured sandbox provisioning latency.
func (m *Manager) ColdStartDelay() time.Duration { return m.cfg.Sandbox.ColdStart }
