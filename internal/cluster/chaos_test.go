package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/faults"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// TestConcurrentPlacementRespectsDensityCap is the TOCTOU regression test:
// many goroutines provisioning at once must never overshoot
// MaxSandboxesPerHost, even though sandbox creation itself is slow.
func TestConcurrentPlacementRespectsDensityCap(t *testing.T) {
	const hosts, cap, attempts = 2, 3, 24
	m := NewManager(Config{
		Name: "c", Hosts: hosts, MaxSandboxesPerHost: cap,
		Sandbox: sandbox.Config{ColdStart: 5 * time.Millisecond},
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var created int
	var capacityErrs int
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sb, err := m.CreateSandbox(context.Background(), "alice")
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if errors.Is(err, ErrCapacity) {
					capacityErrs++
				} else {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			created++
			_ = sb
		}()
	}
	wg.Wait()
	if created != hosts*cap {
		t.Errorf("created = %d, want exactly %d", created, hosts*cap)
	}
	if capacityErrs != attempts-hosts*cap {
		t.Errorf("capacity errors = %d", capacityErrs)
	}
	for _, h := range m.Hosts() {
		if n := h.SandboxCount(); n > cap {
			t.Errorf("host %s holds %d sandboxes, cap %d", h.ID, n, cap)
		}
	}
}

func TestEvictSandboxReclaimsHostSlot(t *testing.T) {
	m := NewManager(Config{Name: "c", Hosts: 1, MaxSandboxesPerHost: 1})
	sb, err := m.CreateSandbox(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSandbox(context.Background(), "bob"); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	sb.Close()
	m.EvictSandbox(sb)
	if m.Evicted() != 1 {
		t.Errorf("evicted = %d", m.Evicted())
	}
	if m.Hosts()[0].SandboxCount() != 0 {
		t.Error("host slot not reclaimed")
	}
	if _, err := m.CreateSandbox(context.Background(), "bob"); err != nil {
		t.Fatalf("slot not reusable after eviction: %v", err)
	}
	// Evicting twice (or an unknown sandbox) is a no-op.
	m.EvictSandbox(sb)
	if m.Evicted() != 1 {
		t.Errorf("double eviction counted: %d", m.Evicted())
	}
}

func TestCancelledColdStartAbandonsProvisioning(t *testing.T) {
	m := NewManager(Config{
		Name: "c", Hosts: 1, MaxSandboxesPerHost: 1,
		Sandbox: sandbox.Config{ColdStart: time.Minute},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.CreateSandbox(ctx, "alice")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled cold start blocked")
	}
	// The abandoned provisioning released its reservation: the single slot
	// is still free.
	if _, err := NewManager(Config{Name: "c2", Hosts: 1}).CreateSandbox(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
	if got := m.Hosts()[0].load(); got != 0 {
		t.Errorf("leaked reservation: load = %d", got)
	}
}

func TestChaosProvisionFaultIsTransient(t *testing.T) {
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteClusterProvision, Kind: faults.KindError, Times: 1},
	)
	m := NewManager(Config{Name: "c", Hosts: 1, Faults: inj})
	_, err := m.CreateSandbox(context.Background(), "alice")
	if err == nil || !faults.IsTransient(err) {
		t.Fatalf("err = %v, want transient injected fault", err)
	}
	// Rule exhausted: the next attempt succeeds (what the dispatcher's retry
	// loop relies on).
	if _, err := m.CreateSandbox(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
}

func TestChaosFaultInjectorInheritedBySandboxes(t *testing.T) {
	// A cluster-level injector reaches the interpreter inside sandboxes that
	// don't configure their own.
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash, Times: 1},
	)
	m := NewManager(Config{Name: "c", Hosts: 1, Faults: inj})
	sb, err := m.CreateSandbox(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	spec := sandbox.UDFSpec{Name: "one", Body: "return 1", ResultKind: types.KindInt64}
	_, err = sb.Execute(context.Background(), &sandbox.Request{Specs: []sandbox.UDFSpec{spec}, Args: types.NewBatchBuilder(types.NewSchema(), 1).Build()})
	var crash *sandbox.SandboxCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want SandboxCrashError from inherited injector", err)
	}
}
