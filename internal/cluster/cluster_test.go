package cluster

import (
	"context"
	"errors"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/sandbox"
)

func TestLeastLoadedPlacement(t *testing.T) {
	m := NewManager(Config{Name: "std", Compute: catalog.ComputeStandard, Hosts: 3})
	for i := 0; i < 6; i++ {
		if _, err := m.CreateSandbox(context.Background(), "alice"); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range m.Hosts() {
		if h.SandboxCount() != 2 {
			t.Errorf("host %s has %d sandboxes, want 2", h.ID, h.SandboxCount())
		}
	}
	if m.Provisioned() != 6 {
		t.Errorf("provisioned = %d", m.Provisioned())
	}
}

func TestCapacityLimit(t *testing.T) {
	m := NewManager(Config{Name: "small", Compute: catalog.ComputeStandard, Hosts: 2, MaxSandboxesPerHost: 1})
	for i := 0; i < 2; i++ {
		if _, err := m.CreateSandbox(context.Background(), "u"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.CreateSandbox(context.Background(), "u"); !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestManagerImplementsFactory(t *testing.T) {
	var _ sandbox.Factory = NewManager(Config{Name: "x", Hosts: 1})
}

func TestDefaultsToOneHost(t *testing.T) {
	m := NewManager(Config{Name: "d"})
	if len(m.Hosts()) != 1 {
		t.Errorf("hosts = %d", len(m.Hosts()))
	}
	if m.Compute() != "" && m.Compute() != catalog.ComputeStandard {
		t.Logf("compute defaults to %q", m.Compute())
	}
	if m.Name() != "d" {
		t.Error("name")
	}
}
