package catalog

import (
	"errors"
	"testing"
	"time"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

func sysEventSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "event_time", Kind: types.KindTimestamp, Nullable: true},
		types.Field{Name: "tenant", Kind: types.KindString, Nullable: true},
	)
}

func sysSpec() SystemTableSpec {
	return SystemTableSpec{
		Parts:     []string{SystemCatalog, "audit", "events"},
		Schema:    sysEventSchema(),
		RowFilter: "tenant = CURRENT_USER()",
		Comment:   "test system table",
	}
}

func sysRow(micros int64, tenant string) []types.Value {
	return []types.Value{types.Timestamp(micros), types.String(tenant)}
}

func sysBatch(rows ...[]types.Value) *types.Batch {
	bb := types.NewBatchBuilder(sysEventSchema(), len(rows))
	for _, r := range rows {
		bb.AppendRow(r)
	}
	return bb.Build()
}

func TestEnsureSystemTableIdempotentAndGoverned(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatal(err)
	}
	// Idempotent across "restarts" of the same catalog.
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatalf("re-ensure: %v", err)
	}
	// Any user can resolve it (public SELECT grant) and sees the row filter.
	meta, err := c.ResolveTable(userCtx(alice, ComputeServerless), []string{"system", "audit", "events"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Owner != SystemUser || !meta.HasPolicies || meta.RowFilterSQL == "" {
		t.Fatalf("meta = %+v: system table must be policy-protected", meta)
	}
	// Policies are re-applied from the spec even if tampered in memory.
	spec := sysSpec()
	spec.RowFilter = "tenant = CURRENT_USER() OR FALSE"
	if err := c.EnsureSystemTable(spec); err != nil {
		t.Fatal(err)
	}
	meta, err = c.ResolveTable(userCtx(alice, ComputeServerless), []string{"system", "audit", "events"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.RowFilterSQL != spec.RowFilter {
		t.Fatalf("row filter not re-applied: %q", meta.RowFilterSQL)
	}
}

func TestEnsureSystemTableRejectsOtherCatalogs(t *testing.T) {
	c := newTestCatalog(t)
	spec := sysSpec()
	spec.Parts = []string{"main", "default", "events"}
	if err := c.EnsureSystemTable(spec); err == nil {
		t.Fatal("EnsureSystemTable outside the system catalog must fail")
	}
}

func TestReservedCatalogBlocksDDL(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatal(err)
	}
	parts := []string{"system", "audit", "events"}
	// Even an admin cannot mutate system objects through user-facing DDL:
	// dropping the table, stripping the row filter, or planting a mask.
	if err := c.Drop(adminCtx(), parts, false); !errors.Is(err, ErrPermission) {
		t.Fatalf("drop: err = %v, want ErrPermission", err)
	}
	if err := c.SetRowFilter(adminCtx(), parts, "", true); !errors.Is(err, ErrPermission) {
		t.Fatalf("drop row filter: err = %v, want ErrPermission", err)
	}
	if err := c.SetColumnMask(adminCtx(), parts, "tenant", "'x'", false); !errors.Is(err, ErrPermission) {
		t.Fatalf("set mask: err = %v, want ErrPermission", err)
	}
	if err := c.CreateTable(adminCtx(), []string{"system", "audit", "fake"}, sysEventSchema(), false, ""); !errors.Is(err, ErrPermission) {
		t.Fatalf("create in system: err = %v, want ErrPermission", err)
	}
	if err := c.CreateSchema(adminCtx(), []string{"system", "mine"}, false); !errors.Is(err, ErrPermission) {
		t.Fatalf("create schema in system: err = %v, want ErrPermission", err)
	}
	if err := c.Grant(adminCtx(), PrivModify, parts, alice); !errors.Is(err, ErrPermission) {
		t.Fatalf("grant on system: err = %v, want ErrPermission", err)
	}
}

func TestSystemTableWriteCredentialDenied(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatal(err)
	}
	parts := []string{"system", "audit", "events"}
	// Reads vend fine (public SELECT + row filter enforced above storage)…
	if _, err := c.VendCredential(userCtx(alice, ComputeServerless), parts, storage.ModeRead); err != nil {
		t.Fatalf("read vend: %v", err)
	}
	// …but nobody, not even an admin, gets a write credential: the spooler
	// (acting as SystemUser through AppendSystemTable) is the only writer.
	if _, err := c.VendCredential(adminCtx(), parts, storage.ModeReadWrite); !errors.Is(err, ErrPermission) {
		t.Fatalf("admin write vend: err = %v, want ErrPermission", err)
	}
	if _, err := c.VendCredential(userCtx(alice, ComputeServerless), parts, storage.ModeReadWrite); !errors.Is(err, ErrPermission) {
		t.Fatalf("user write vend: err = %v, want ErrPermission", err)
	}
}

func TestAppendSystemTableAndCount(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatal(err)
	}
	parts := []string{"system", "audit", "events"}
	if _, err := c.AppendSystemTable(parts, []*types.Batch{sysBatch(sysRow(1, "a"), sysRow(2, "b"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendSystemTable(parts, []*types.Batch{sysBatch(sysRow(3, "a"))}); err != nil {
		t.Fatal(err)
	}
	n, err := c.SystemTableCount(parts)
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// AppendSystemTable refuses non-system tables even when they exist.
	createSales(t, c)
	bb := types.NewBatchBuilder(salesSchema(), 0)
	if _, err := c.AppendSystemTable([]string{"sales"}, []*types.Batch{bb.Build()}); !errors.Is(err, ErrPermission) {
		t.Fatalf("append to user table: err = %v, want ErrPermission", err)
	}
}

func TestTruncateSystemTableBefore(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.EnsureSystemTable(sysSpec()); err != nil {
		t.Fatal(err)
	}
	parts := []string{"system", "audit", "events"}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// One file per append: old, old, recent.
	for _, age := range []time.Duration{-48 * time.Hour, -36 * time.Hour, -1 * time.Hour} {
		micros := base.Add(age).UnixMicro()
		if _, err := c.AppendSystemTable(parts, []*types.Batch{sysBatch(sysRow(micros, "t"))}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := c.TruncateSystemTableBefore(parts, "event_time", base.Add(-24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d files, want 2", removed)
	}
	n, err := c.SystemTableCount(parts)
	if err != nil || n != 1 {
		t.Fatalf("count after retention = %d, %v", n, err)
	}
	// A second sweep with the same cutoff is a no-op.
	removed, err = c.TruncateSystemTableBefore(parts, "event_time", base.Add(-24*time.Hour))
	if err != nil || removed != 0 {
		t.Fatalf("idempotent sweep removed %d, %v", removed, err)
	}
	// Unknown time column: nothing removed (retention never guesses).
	removed, err = c.TruncateSystemTableBefore(parts, "no_such_col", base)
	if err != nil || removed != 0 {
		t.Fatalf("unknown column sweep removed %d, %v", removed, err)
	}
}

func TestAddAdminJoinsAdminsGroup(t *testing.T) {
	c := newTestCatalog(t)
	if !c.IsGroupMember(admin, AdminsGroup) {
		t.Fatalf("AddAdmin must enroll %s in %s for system-table row filters", admin, AdminsGroup)
	}
	if c.IsGroupMember(alice, AdminsGroup) {
		t.Fatal("non-admin must not be in the admins group")
	}
}
