package catalog

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/audit"
	"lakeguard/internal/delta"
	"lakeguard/internal/security"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// defaultCompactTarget is the file size OPTIMIZE bin-packs toward when the
// statement gives no TARGET SIZE.
const defaultCompactTarget = 1 << 20

// dvRewriteDensity is the deleted-row fraction above which OPTIMIZE rewrites
// a file even when it is not small: past this point the scan-time masking
// cost and the dead bytes on storage outweigh one rewrite.
const dvRewriteDensity = 0.3

// CompactionStats summarizes one OPTIMIZE pass.
type CompactionStats struct {
	FilesIn       int   // data files folded into rewrites
	FilesOut      int   // replacement files written
	BytesIn       int64 // stored bytes of the input files
	BytesOut      int64 // stored bytes of the replacement files
	DVRowsDropped int64 // deletion-vector rows physically removed
	Version       int64 // table version holding the result
}

// metric returns a registry counter, or nil (a nil-safe no-op) before
// SetMetrics ran.
func (c *Catalog) metric(name string) *telemetry.Counter {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	if c.metrics == nil {
		return nil
	}
	return c.metrics.Counter(name)
}

// AuthorizeTableDML checks whether ctx may run a row-mutating DML operation
// (DELETE, UPDATE, MERGE) on a table, without vending a credential. The DML
// planner calls it before reading any data so denials happen early; the
// commit path (MutateTable) enforces the same rules again.
//
// Rules beyond MODIFY: system tables are engine-written only, and tables
// carrying FGAC policies accept DML only from their owner or an admin —
// deletion-vector DML evaluates predicates over the raw (unfiltered) rows,
// which is exactly what a row filter exists to prevent for other users.
func (c *Catalog) AuthorizeTableDML(ctx RequestContext, parts []string, operation string) error {
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		c.mu.RUnlock()
		return err
	}
	if t.objType != TypeTable {
		c.mu.RUnlock()
		return fmt.Errorf("%w: cannot run %s on %s of type %s", ErrPermission, operation, full, t.objType)
	}
	hasFGAC := t.rowFilter != "" || len(c.effectiveMasks(t)) > 0
	owner := t.owner
	hasModify := c.hasPrivilege(ctx, PrivModify, full, owner)
	c.mu.RUnlock()
	if strings.HasPrefix(full, SystemCatalog+".") && ctx.User != SystemUser {
		c.record(ctx, operation, full, audit.DecisionDeny, "system tables are engine-written")
		return fmt.Errorf("%w: %s is an engine-written system table", ErrPermission, full)
	}
	if !hasModify {
		c.record(ctx, operation, full, audit.DecisionDeny, "missing MODIFY")
		return fmt.Errorf("%w: user %q lacks MODIFY on %s", ErrPermission, ctx.User, full)
	}
	if hasFGAC && ctx.User != owner && !c.isAdmin(ctx.User) {
		c.record(ctx, operation, full, audit.DecisionDeny, "DML on policy-protected table requires ownership")
		return fmt.Errorf("%w: only the owner may run DML on the policy-protected table %s", ErrPermission, full)
	}
	return nil
}

// MutateTable commits a deletion-vector/compaction mutation against a
// managed table. Content-changing operations pass AuthorizeTableDML;
// OPTIMIZE is content-preserving and needs only MODIFY (enforced by the
// credential vend). Returns the committed version.
func (c *Catalog) MutateTable(ctx RequestContext, parts []string, m delta.Mutation) (int64, error) {
	if m.Operation != "OPTIMIZE" {
		if err := c.AuthorizeTableDML(ctx, parts, m.Operation); err != nil {
			return 0, err
		}
	}
	cred, err := c.VendCredential(ctx, parts, storage.ModeReadWrite)
	if err != nil {
		return 0, err
	}
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	c.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	if t.objType != TypeTable {
		return 0, fmt.Errorf("%w: cannot modify %s of type %s", ErrPermission, full, t.objType)
	}
	v, err := c.logFor(t.prefix).Mutate(cred, m)
	if err != nil {
		return 0, err
	}
	c.record(ctx, m.Operation, full, audit.DecisionAllow, fmt.Sprintf("version %d", v))
	return v, nil
}

// CompactTable runs OPTIMIZE: consecutive runs of small or deletion-vector-
// dense files are read, masked, and swapped for merged replacements in one
// atomic commit. targetBytes <= 0 uses the engine default.
func (c *Catalog) CompactTable(ctx RequestContext, parts []string, targetBytes int64) (CompactionStats, error) {
	cred, err := c.VendCredential(ctx, parts, storage.ModeReadWrite)
	if err != nil {
		return CompactionStats{}, err
	}
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	c.mu.RUnlock()
	if err != nil {
		return CompactionStats{}, err
	}
	if t.objType != TypeTable {
		return CompactionStats{}, fmt.Errorf("%w: cannot optimize %s of type %s", ErrPermission, full, t.objType)
	}
	stats, err := c.compactLog(c.logFor(t.prefix), cred, targetBytes)
	if err != nil {
		return stats, err
	}
	c.record(ctx, "OPTIMIZE", full, audit.DecisionAllow,
		fmt.Sprintf("%d files -> %d (version %d)", stats.FilesIn, stats.FilesOut, stats.Version))
	return stats, nil
}

// compactLog plans and commits one compaction pass over a table log,
// retrying the whole plan when a concurrent commit invalidates it.
func (c *Catalog) compactLog(log *delta.Log, cred *storage.Credential, targetBytes int64) (CompactionStats, error) {
	if targetBytes <= 0 {
		targetBytes = defaultCompactTarget
	}
	const maxRecompute = 4
	for attempt := 0; attempt < maxRecompute; attempt++ {
		snap, err := log.Snapshot(cred, -1)
		if err != nil {
			return CompactionStats{}, err
		}
		groups := planCompaction(snap.Files, targetBytes)
		var stats CompactionStats
		if len(groups) == 0 {
			stats.Version = snap.Version
			return stats, nil
		}
		m := delta.Mutation{Operation: "OPTIMIZE"}
		for _, g := range groups {
			parts := make([]*types.Batch, 0, len(g))
			for _, f := range g {
				b, err := c.batches.get(cred, f.Path)
				if err != nil {
					return stats, err
				}
				if card := f.DV.Cardinality(); card > 0 {
					b = b.Gather(f.DV.KeepIndexes(b.NumRows()))
					stats.DVRowsDropped += card
				}
				if b.NumRows() > 0 {
					parts = append(parts, b)
				}
				m.RemovePaths = append(m.RemovePaths, f.Path)
				m.Expect = append(m.Expect, delta.FileExpectation{Path: f.Path, DVCardinality: f.DV.Cardinality()})
				stats.FilesIn++
				stats.BytesIn += f.SizeBytes
			}
			if len(parts) == 0 {
				continue // every row deleted: the swap drops the files outright
			}
			merged, err := arrowipc.ConcatBatches(snap.Schema, parts)
			if err != nil {
				return stats, err
			}
			enc, err := arrowipc.EncodeBatch(merged)
			if err != nil {
				return stats, err
			}
			stats.BytesOut += int64(len(enc))
			m.AddBatches = append(m.AddBatches, merged)
			stats.FilesOut++
		}
		v, err := log.Mutate(cred, m)
		if errors.Is(err, delta.ErrConcurrentCommit) {
			continue // replan against the newer snapshot
		}
		if err != nil {
			return stats, err
		}
		stats.Version = v
		c.metric("compaction.files_in").Add(int64(stats.FilesIn))
		c.metric("compaction.files_out").Add(int64(stats.FilesOut))
		c.metric("compaction.bytes").Add(stats.BytesIn)
		return stats, nil
	}
	return CompactionStats{}, fmt.Errorf("catalog: OPTIMIZE: %w after %d attempts", delta.ErrConcurrentCommit, 4)
}

// planCompaction groups consecutive candidate files (small, or past the DV
// density threshold) into rewrite groups. Consecutive-only grouping keeps
// any natural clustering of the data; a group must merge at least two files
// or physically drop deleted rows to justify the rewrite.
func planCompaction(files []delta.AddFile, targetBytes int64) [][]delta.AddFile {
	var groups [][]delta.AddFile
	var cur []delta.AddFile
	var curBytes int64
	flush := func() {
		if len(cur) >= 2 || (len(cur) == 1 && cur[0].DV.Cardinality() > 0) {
			groups = append(groups, cur)
		}
		cur, curBytes = nil, 0
	}
	for _, f := range files {
		small := f.SizeBytes < targetBytes
		dense := f.NumRecords > 0 &&
			float64(f.DV.Cardinality())/float64(f.NumRecords) >= dvRewriteDensity
		if !small && !dense {
			flush()
			continue
		}
		cur = append(cur, f)
		curBytes += f.SizeBytes
		if curBytes >= targetBytes {
			flush()
		}
	}
	flush()
	return groups
}

// VacuumTable deletes storage objects no live snapshot references —
// tombstoned data files and orphans from failed commit attempts — and
// commits a VACUUM entry clearing the reclaimed tombstones from the log.
func (c *Catalog) VacuumTable(ctx RequestContext, parts []string) (delta.VacuumResult, error) {
	cred, err := c.VendCredential(ctx, parts, storage.ModeReadWrite)
	if err != nil {
		return delta.VacuumResult{}, err
	}
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	c.mu.RUnlock()
	if err != nil {
		return delta.VacuumResult{}, err
	}
	if t.objType != TypeTable {
		return delta.VacuumResult{}, fmt.Errorf("%w: cannot vacuum %s of type %s", ErrPermission, full, t.objType)
	}
	res, err := c.logFor(t.prefix).Vacuum(cred)
	if err != nil {
		return res, err
	}
	deleted := res.TombstonesDeleted + res.OrphansDeleted
	if deleted > 0 {
		c.batches.invalidatePrefix(t.prefix)
	}
	c.metric("vacuum.files_deleted").Add(int64(deleted))
	c.record(ctx, "VACUUM", full, audit.DecisionAllow,
		fmt.Sprintf("%d tombstoned + %d orphaned objects", res.TombstonesDeleted, res.OrphansDeleted))
	return res, nil
}

// MaintainSystemTable compacts and vacuums an engine-owned system table
// using the signer directly (the system user vends no credentials). The
// retention sweeper calls it so high-churn audit/billing tables keep a
// bounded file count. One audited MAINTENANCE event records the pass.
func (c *Catalog) MaintainSystemTable(parts []string) (CompactionStats, delta.VacuumResult, error) {
	t, full, err := c.systemTable(parts)
	if err != nil {
		return CompactionStats{}, delta.VacuumResult{}, err
	}
	cred := c.signer.Issue(t.prefix, storage.ModeReadWrite, time.Minute)
	log := c.logFor(t.prefix)
	stats, err := c.compactLog(log, &cred, 0)
	if err != nil {
		return stats, delta.VacuumResult{}, fmt.Errorf("catalog: maintain %s: %w", full, err)
	}
	res, err := log.Vacuum(&cred)
	if err != nil {
		return stats, res, fmt.Errorf("catalog: maintain %s: %w", full, err)
	}
	if n := res.TombstonesDeleted + res.OrphansDeleted; n > 0 {
		c.batches.invalidatePrefix(t.prefix)
		c.metric("vacuum.files_deleted").Add(int64(n))
	}
	if stats.FilesIn > 0 || res.TombstonesDeleted+res.OrphansDeleted > 0 {
		c.record(RequestContext{User: SystemUser, Compute: security.ComputeServerless}, "MAINTENANCE", full,
			audit.DecisionAllow, fmt.Sprintf("compacted %d->%d files, deleted %d objects",
				stats.FilesIn, stats.FilesOut, res.TombstonesDeleted+res.OrphansDeleted))
	}
	return stats, res, nil
}

// SetCheckpointInterval sets the log-checkpoint cadence for every table
// handle the catalog creates (and retrofits existing handles). n <= 0
// disables checkpoint writing.
func (c *Catalog) SetCheckpointInterval(n int) {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.ckptInterval = n
	c.ckptSet = true
	for _, l := range c.logs {
		l.SetCheckpointInterval(n)
	}
}
