package catalog

import (
	"fmt"
	"strings"

	"lakeguard/internal/audit"
)

// Attribute-based access control (ABAC, paper §2.3): instead of attaching a
// mask to each column individually, administrators tag columns with
// attributes ("pii", "financial") and attach one policy per tag at the
// metastore level. Every column carrying the tag inherits the policy — on
// every table, present and future. An explicit per-column mask overrides a
// tag-derived one.

// TagMaskColumnPlaceholder is substituted with the protected column's name
// when a tag mask template is instantiated.
const TagMaskColumnPlaceholder = "__col__"

// SetColumnTags replaces the attribute tags on one column (owner or admin).
// Empty tags clears them.
func (c *Catalog) SetColumnTags(ctx RequestContext, parts []string, column string, tags []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		return err
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, "SET TAGS", full, audit.DecisionDeny, "not owner")
		return fmt.Errorf("%w: only the owner may tag columns of %s", ErrPermission, full)
	}
	col := strings.ToLower(column)
	if t.schema.IndexOf(col) < 0 {
		return fmt.Errorf("%w: column %q of %s", ErrNotFound, column, full)
	}
	if t.colTags == nil {
		t.colTags = map[string][]string{}
	}
	if len(tags) == 0 {
		delete(t.colTags, col)
	} else {
		normalized := make([]string, len(tags))
		for i, tag := range tags {
			normalized[i] = strings.ToLower(tag)
		}
		t.colTags[col] = normalized
	}
	c.record(ctx, "SET TAGS", full+"."+col, audit.DecisionAllow, strings.Join(tags, ","))
	return nil
}

// ColumnTags returns the tags on one column.
func (c *Catalog) ColumnTags(ctx RequestContext, parts []string, column string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, _, err := c.lookupTable(parts)
	if err != nil {
		return nil, err
	}
	return append([]string{}, t.colTags[strings.ToLower(column)]...), nil
}

// SetTagMask attaches a metastore-level mask policy to a tag (admin only).
// The template may use __col__ to reference the protected column; an empty
// template removes the policy.
func (c *Catalog) SetTagMask(ctx RequestContext, tag, maskTemplate string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.admins[ctx.User] {
		c.record(ctx, "SET TAG MASK", tag, audit.DecisionDeny, "not admin")
		return fmt.Errorf("%w: only metastore admins may set tag policies", ErrPermission)
	}
	if c.tagMasks == nil {
		c.tagMasks = map[string]string{}
	}
	key := strings.ToLower(tag)
	if maskTemplate == "" {
		delete(c.tagMasks, key)
	} else {
		c.tagMasks[key] = maskTemplate
	}
	c.record(ctx, "SET TAG MASK", tag, audit.DecisionAllow, "")
	return nil
}

// effectiveMasks merges explicit column masks with tag-derived ABAC masks
// (explicit wins). Caller must hold at least a read lock.
func (c *Catalog) effectiveMasks(t *table) map[string]string {
	if len(t.colMasks) == 0 && (len(t.colTags) == 0 || len(c.tagMasks) == 0) {
		return copyMasks(t.colMasks)
	}
	out := map[string]string{}
	for col, tags := range t.colTags {
		for _, tag := range tags {
			if tpl, ok := c.tagMasks[tag]; ok {
				out[col] = strings.ReplaceAll(tpl, TagMaskColumnPlaceholder, col)
				break // first tagged policy wins
			}
		}
	}
	for col, mask := range t.colMasks {
		out[col] = mask // explicit masks override tag policies
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
