package catalog

import (
	"errors"
	"strings"
	"testing"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

func abacCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New(storage.NewStore(), nil)
	c.AddAdmin(admin)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "ssn", Kind: types.KindString},
		types.Field{Name: "email", Kind: types.KindString},
	)
	if err := c.CreateTable(adminCtx(), []string{"people"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetColumnTagsAuthorization(t *testing.T) {
	c := abacCatalog(t)
	if err := c.SetColumnTags(userCtx(alice, ComputeStandard), []string{"people"}, "ssn", []string{"pii"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner tagging: %v", err)
	}
	if err := c.SetColumnTags(adminCtx(), []string{"people"}, "nope", []string{"pii"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing column: %v", err)
	}
	if err := c.SetColumnTags(adminCtx(), []string{"people"}, "ssn", []string{"PII", "Sensitive"}); err != nil {
		t.Fatal(err)
	}
	tags, err := c.ColumnTags(adminCtx(), []string{"people"}, "SSN")
	if err != nil || len(tags) != 2 || tags[0] != "pii" {
		t.Fatalf("tags = %v, %v (should be normalized lower-case)", tags, err)
	}
	// Clearing.
	if err := c.SetColumnTags(adminCtx(), []string{"people"}, "ssn", nil); err != nil {
		t.Fatal(err)
	}
	tags, _ = c.ColumnTags(adminCtx(), []string{"people"}, "ssn")
	if len(tags) != 0 {
		t.Errorf("tags not cleared: %v", tags)
	}
}

func TestTagMaskResolution(t *testing.T) {
	c := abacCatalog(t)
	c.Grant(adminCtx(), PrivSelect, []string{"people"}, alice)
	if err := c.SetColumnTags(adminCtx(), []string{"people"}, "ssn", []string{"pii"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetColumnTags(adminCtx(), []string{"people"}, "email", []string{"pii"}); err != nil {
		t.Fatal(err)
	}
	// Before any tag policy: no masks, no FGAC.
	meta, _ := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"people"})
	if meta.HasPolicies || len(meta.ColumnMasks) != 0 {
		t.Fatal("tags without a policy must not create masks")
	}
	// One policy covers both tagged columns, with the placeholder expanded.
	if err := c.SetTagMask(adminCtx(), "pii", "sha256("+TagMaskColumnPlaceholder+")"); err != nil {
		t.Fatal(err)
	}
	meta, _ = c.ResolveTable(userCtx(alice, ComputeStandard), []string{"people"})
	if !meta.HasPolicies || len(meta.ColumnMasks) != 2 {
		t.Fatalf("masks = %v", meta.ColumnMasks)
	}
	if meta.ColumnMasks["ssn"] != "sha256(ssn)" || meta.ColumnMasks["email"] != "sha256(email)" {
		t.Fatalf("placeholder expansion wrong: %v", meta.ColumnMasks)
	}
	// Untagged column unaffected.
	if _, ok := meta.ColumnMasks["id"]; ok {
		t.Error("untagged column masked")
	}
	// Removing the policy removes the masks.
	if err := c.SetTagMask(adminCtx(), "pii", ""); err != nil {
		t.Fatal(err)
	}
	meta, _ = c.ResolveTable(userCtx(alice, ComputeStandard), []string{"people"})
	if meta.HasPolicies {
		t.Error("policy removal did not propagate")
	}
}

func TestTagMaskAdminOnly(t *testing.T) {
	c := abacCatalog(t)
	err := c.SetTagMask(userCtx(alice, ComputeStandard), "pii", "'x'")
	if !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteTableGuards(t *testing.T) {
	c := abacCatalog(t)
	c.Grant(adminCtx(), PrivAll, []string{"people"}, alice)
	// Plain table: MODIFY holder can overwrite.
	if _, err := c.OverwriteTable(userCtx(alice, ComputeStandard), []string{"people"}, nil); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	// Policy-protected: non-owner refused even with MODIFY.
	if err := c.SetRowFilter(adminCtx(), []string{"people"}, "id > 0", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OverwriteTable(userCtx(alice, ComputeStandard), []string{"people"}, nil); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	// Views cannot be overwritten.
	vs := types.NewSchema(types.Field{Name: "id", Kind: types.KindInt64})
	c.CreateView(adminCtx(), []string{"v"}, "SELECT id FROM people", false, false, vs, "")
	if _, err := c.OverwriteTable(adminCtx(), []string{"v"}, nil); !errors.Is(err, ErrPermission) {
		t.Fatalf("view overwrite err = %v", err)
	}
}

func TestVendResultCredentialScoping(t *testing.T) {
	c := abacCatalog(t)
	ctx := userCtx(alice, ComputeStandard)
	good := ResultPrefix(alice, ctx.SessionID)
	cred, err := c.VendResultCredential(ctx, good, storage.ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store().Put(cred, good+"x", []byte("1")); err != nil {
		t.Fatalf("own-prefix write: %v", err)
	}
	// Another user's spill area is out of reach.
	if _, err := c.VendResultCredential(ctx, ResultPrefix(bob, "s"), storage.ModeRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("cross-user spill err = %v", err)
	}
	// Arbitrary prefixes are out of reach.
	if _, err := c.VendResultCredential(ctx, "tables/", storage.ModeRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("table-prefix err = %v", err)
	}
}

func TestTableHistory(t *testing.T) {
	c := abacCatalog(t)
	bb := types.NewBatchBuilder(types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "ssn", Kind: types.KindString},
		types.Field{Name: "email", Kind: types.KindString},
	), 1)
	bb.AppendRow([]types.Value{types.Int64(1), types.String("s"), types.String("e")})
	if _, err := c.AppendToTable(adminCtx(), []string{"people"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	history, err := c.TableHistory(adminCtx(), []string{"people"})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d entries", len(history))
	}
	if history[0].Version != 1 || history[0].Operation != "WRITE" || history[0].NumFiles != 1 {
		t.Errorf("newest = %+v", history[0])
	}
	if history[1].Operation != "CREATE TABLE" || history[1].Timestamp.IsZero() {
		t.Errorf("oldest = %+v", history[1])
	}
	// SELECT required.
	if _, err := c.TableHistory(userCtx(bob, ComputeStandard), []string{"people"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(history[1].Timestamp.String(), "20") {
		t.Error("timestamp not stamped")
	}
}
