package catalog

import (
	"errors"
	"strings"
	"testing"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

const (
	admin = "admin@corp.com"
	alice = "alice@corp.com"
	bob   = "bob@corp.com"
)

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New(storage.NewStore(), nil)
	c.AddAdmin(admin)
	return c
}

func adminCtx() RequestContext {
	return RequestContext{User: admin, Compute: ComputeStandard, SessionID: "s0"}
}

func userCtx(user string, compute ComputeType) RequestContext {
	return RequestContext{User: user, Compute: compute, SessionID: "s-" + user}
}

func salesSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindString},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	)
}

func createSales(t *testing.T, c *Catalog) {
	t.Helper()
	if err := c.CreateTable(adminCtx(), []string{"sales"}, salesSchema(), false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndResolveTable(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	meta, err := c.ResolveTable(adminCtx(), []string{"sales"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.FullName != "main.default.sales" || meta.Type != TypeTable {
		t.Fatalf("meta = %+v", meta)
	}
	if !meta.LocalProcessingAllowed || meta.HasPolicies {
		t.Error("plain table should be locally processable without policies")
	}
	// Same table via qualified names.
	for _, parts := range [][]string{{"default", "sales"}, {"main", "default", "sales"}} {
		if _, err := c.ResolveTable(adminCtx(), parts); err != nil {
			t.Errorf("resolve %v: %v", parts, err)
		}
	}
}

func TestCreateDuplicate(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	err := c.CreateTable(adminCtx(), []string{"sales"}, salesSchema(), false, "")
	if !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("err = %v", err)
	}
	if err := c.CreateTable(adminCtx(), []string{"sales"}, salesSchema(), true, ""); err != nil {
		t.Errorf("if-not-exists: %v", err)
	}
}

func TestSelectRequiresGrant(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("expected permission error, got %v", err)
	}
	if err := c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); err != nil {
		t.Fatalf("after grant: %v", err)
	}
	if err := c.Revoke(adminCtx(), PrivSelect, []string{"sales"}, alice); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("after revoke: %v", err)
	}
}

func TestGroupGrants(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.CreateGroup("data_scientists", alice)
	if err := c.Grant(adminCtx(), PrivSelect, []string{"sales"}, "data_scientists"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); err != nil {
		t.Fatalf("group member: %v", err)
	}
	if _, err := c.ResolveTable(userCtx(bob, ComputeStandard), []string{"sales"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-member: %v", err)
	}
	c.RemoveFromGroup("data_scientists", alice)
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("after removal: %v", err)
	}
}

func TestAllPrivilegeImpliesSelect(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	if err := c.Grant(adminCtx(), PrivAll, []string{"sales"}, alice); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VendCredential(userCtx(alice, ComputeStandard), []string{"sales"}, storage.ModeReadWrite); err != nil {
		t.Fatalf("ALL should imply MODIFY: %v", err)
	}
}

func TestOnlyOwnerGrants(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)
	// Alice (not owner) cannot grant to Bob.
	if err := c.Grant(userCtx(alice, ComputeStandard), PrivSelect, []string{"sales"}, bob); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
}

func TestPolicyWithholdingByComputeType(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	if err := c.SetRowFilter(adminCtx(), []string{"sales"}, "region = 'US'", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetColumnMask(adminCtx(), []string{"sales"}, "seller", "'***'", false); err != nil {
		t.Fatal(err)
	}
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)

	std, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"})
	if err != nil {
		t.Fatal(err)
	}
	if !std.LocalProcessingAllowed || std.RowFilterSQL != "region = 'US'" || std.ColumnMasks["seller"] != "'***'" {
		t.Errorf("standard compute should see policies: %+v", std)
	}

	ded, err := c.ResolveTable(userCtx(alice, ComputeDedicated), []string{"sales"})
	if err != nil {
		t.Fatal(err)
	}
	if ded.LocalProcessingAllowed {
		t.Error("dedicated compute must not process FGAC tables locally")
	}
	if ded.RowFilterSQL != "" || len(ded.ColumnMasks) != 0 || ded.StoragePrefix != "" {
		t.Errorf("policy internals leaked to dedicated compute: %+v", ded)
	}
	if !ded.HasPolicies {
		t.Error("HasPolicies must still be annotated")
	}

	ext, err := c.ResolveTable(userCtx(alice, ComputeExternal), []string{"sales"})
	if err != nil {
		t.Fatal(err)
	}
	if ext.LocalProcessingAllowed {
		t.Error("external engines must use eFGAC too")
	}
}

func TestCredentialVendingScopes(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)

	// No policies: any compute may get a read credential.
	if _, err := c.VendCredential(userCtx(alice, ComputeDedicated), []string{"sales"}, storage.ModeRead); err != nil {
		t.Fatalf("plain table on dedicated: %v", err)
	}

	// With a row filter, dedicated compute is refused.
	c.SetRowFilter(adminCtx(), []string{"sales"}, "region = 'US'", false)
	if _, err := c.VendCredential(userCtx(alice, ComputeDedicated), []string{"sales"}, storage.ModeRead); !errors.Is(err, ErrRequiresEFGAC) {
		t.Fatalf("err = %v", err)
	}
	// Standard compute still allowed (engine enforces the filter).
	if _, err := c.VendCredential(userCtx(alice, ComputeStandard), []string{"sales"}, storage.ModeRead); err != nil {
		t.Fatalf("standard: %v", err)
	}
	// Serverless allowed.
	if _, err := c.VendCredential(userCtx(alice, ComputeServerless), []string{"sales"}, storage.ModeRead); err != nil {
		t.Fatalf("serverless: %v", err)
	}
	// Write requires MODIFY.
	if _, err := c.VendCredential(userCtx(alice, ComputeStandard), []string{"sales"}, storage.ModeReadWrite); !errors.Is(err, ErrPermission) {
		t.Fatalf("modify err = %v", err)
	}
}

func TestVendedCredentialWorksOnStore(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	cred, err := c.VendCredential(adminCtx(), []string{"sales"}, storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store().List(cred, cred.Prefix); err != nil {
		t.Fatalf("vended credential rejected by store: %v", err)
	}
	// And it is scoped: cannot read another table's prefix.
	if err := c.CreateTable(adminCtx(), []string{"other"}, salesSchema(), false, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store().List(cred, "tables/main/default/other/"); err == nil {
		t.Error("credential escaped its prefix")
	}
}

func TestViewsHaveNoDirectStorage(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	if err := c.CreateView(adminCtx(), []string{"v"}, "SELECT amount FROM sales", false, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VendCredential(adminCtx(), []string{"v"}, storage.ModeRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	meta, err := c.ResolveTable(adminCtx(), []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.ViewText != "SELECT amount FROM sales" {
		t.Errorf("view text = %q", meta.ViewText)
	}
}

func TestViewTextWithheldFromUntrustedCompute(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	c.CreateView(adminCtx(), []string{"v"}, "SELECT amount FROM sales WHERE region='US'", false, false, vs, "")
	c.Grant(adminCtx(), PrivSelect, []string{"v"}, alice)
	meta, err := c.ResolveTable(userCtx(alice, ComputeDedicated), []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.LocalProcessingAllowed || meta.ViewText != "" {
		t.Errorf("view internals leaked to dedicated compute: %+v", meta)
	}
}

func TestFunctionLifecycle(t *testing.T) {
	c := newTestCatalog(t)
	params := []types.Field{{Name: "a", Kind: types.KindInt64}, {Name: "b", Kind: types.KindInt64}}
	if err := c.CreateFunction(adminCtx(), []string{"fns", "add2"}, params, types.KindInt64, "return a + b", false, ""); err != nil {
		// fns schema doesn't exist yet
		if !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	if err := c.CreateSchema(adminCtx(), []string{"fns"}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFunction(adminCtx(), []string{"fns", "add2"}, params, types.KindInt64, "return a + b", false, ""); err != nil {
		t.Fatal(err)
	}
	// EXECUTE required.
	if _, err := c.ResolveFunction(userCtx(alice, ComputeStandard), []string{"fns", "add2"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Grant(adminCtx(), PrivExecute, []string{"fns", "add2"}, alice); err != nil {
		t.Fatal(err)
	}
	fn, err := c.ResolveFunction(userCtx(alice, ComputeStandard), []string{"fns", "add2"})
	if err != nil {
		t.Fatal(err)
	}
	if fn.Owner != admin || fn.Body != "return a + b" || fn.Returns != types.KindInt64 {
		t.Errorf("fn = %+v", fn)
	}
}

func TestOnlyOwnerSetsPolicies(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)
	if err := c.SetRowFilter(userCtx(alice, ComputeStandard), []string{"sales"}, "1=1", false); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	if err := c.SetColumnMask(userCtx(alice, ComputeStandard), []string{"sales"}, "seller", "'x'", false); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	// Mask on missing column rejected.
	if err := c.SetColumnMask(adminCtx(), []string{"sales"}, "nope", "'x'", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Dropping policies restores local processing on any compute.
	c.SetRowFilter(adminCtx(), []string{"sales"}, "region='US'", false)
	c.SetRowFilter(adminCtx(), []string{"sales"}, "", true)
	meta, _ := c.ResolveTable(userCtx(alice, ComputeDedicated), []string{"sales"})
	if !meta.LocalProcessingAllowed {
		t.Error("dropping the filter should restore local processing")
	}
}

func TestDropSemantics(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)
	if err := c.Drop(userCtx(alice, ComputeStandard), []string{"sales"}, false); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner drop: %v", err)
	}
	if err := c.Drop(adminCtx(), []string{"sales"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable(adminCtx(), []string{"sales"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after drop: %v", err)
	}
	if err := c.Drop(adminCtx(), []string{"sales"}, true); err != nil {
		t.Errorf("if-exists drop: %v", err)
	}
	// Grants on a dropped table do not survive re-creation.
	createSales(t, c)
	if _, err := c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"}); !errors.Is(err, ErrPermission) {
		t.Fatalf("stale grant survived drop: %v", err)
	}
}

func TestInsertAndReadBack(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	bb := types.NewBatchBuilder(salesSchema(), 2)
	bb.AppendRow([]types.Value{types.Float64(10), types.String("2024-12-01"), types.String("ann"), types.String("US")})
	bb.AppendRow([]types.Value{types.Float64(20), types.String("2024-12-01"), types.String("ben"), types.String("EU")})
	if _, err := c.AppendToTable(adminCtx(), []string{"sales"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	log, cred, err := c.OpenTableLog(adminCtx(), []string{"sales"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumRecords() != 2 {
		t.Fatalf("rows = %d", snap.NumRecords())
	}
	// Insert into a view fails.
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	c.CreateView(adminCtx(), []string{"v"}, "SELECT amount FROM sales", false, false, vs, "")
	if _, err := c.AppendToTable(adminCtx(), []string{"v"}, nil); err == nil {
		t.Error("insert into view should fail")
	}
}

func TestMaterializedViewRefresh(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	vs := types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64})
	if err := c.CreateView(adminCtx(), []string{"mv"}, "SELECT amount FROM sales", true, false, vs, ""); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.ResolveTable(adminCtx(), []string{"mv"})
	if meta.Type != TypeMaterializedView || meta.MVFresh {
		t.Fatalf("meta = %+v", meta)
	}
	bb := types.NewBatchBuilder(vs, 1)
	bb.AppendRow([]types.Value{types.Float64(42)})
	if err := c.RefreshMaterializedView(adminCtx(), []string{"mv"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	meta, _ = c.ResolveTable(adminCtx(), []string{"mv"})
	if !meta.MVFresh || meta.StoragePrefix == "" {
		t.Errorf("after refresh: %+v", meta)
	}
	// Non-owner cannot refresh.
	if err := c.RefreshMaterializedView(userCtx(alice, ComputeStandard), []string{"mv"}, nil); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	// Refreshing a non-MV fails.
	if err := c.RefreshMaterializedView(adminCtx(), []string{"sales"}, nil); !errors.Is(err, ErrNotMateralized) {
		t.Fatalf("err = %v", err)
	}
}

func TestAuditTrail(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)
	_, _ = c.ResolveTable(userCtx(alice, ComputeStandard), []string{"sales"})
	_, _ = c.ResolveTable(userCtx(bob, ComputeStandard), []string{"sales"})

	aliceEvents := c.Audit().ByUser(alice)
	if len(aliceEvents) == 0 {
		t.Fatal("no audit events for alice")
	}
	denials := c.Audit().Denials()
	foundBob := false
	for _, e := range denials {
		if e.User == bob && e.Securable == "main.default.sales" {
			foundBob = true
		}
	}
	if !foundBob {
		t.Error("bob's denial not audited")
	}
	// Every event carries a session attribution.
	for _, e := range c.Audit().Events(nil) {
		if e.User != "" && e.SessionID == "" {
			t.Errorf("event missing session: %+v", e)
		}
	}
}

func TestListTables(t *testing.T) {
	c := newTestCatalog(t)
	createSales(t, c)
	c.CreateTable(adminCtx(), []string{"secret"}, salesSchema(), false, "")
	c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice)
	got := c.ListTables(userCtx(alice, ComputeStandard))
	if len(got) != 1 || got[0] != "main.default.sales" {
		t.Errorf("alice sees %v", got)
	}
	if n := len(c.ListTables(adminCtx())); n != 2 {
		t.Errorf("admin sees %d", n)
	}
}

func TestParsePrivilege(t *testing.T) {
	if p, err := ParsePrivilege("select"); err != nil || p != PrivSelect {
		t.Error("parse select")
	}
	if _, err := ParsePrivilege("FLY"); err == nil {
		t.Error("expected error")
	}
}

func TestInvalidNames(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.CreateTable(adminCtx(), []string{"a", "b", "c", "d"}, salesSchema(), false, ""); !errors.Is(err, ErrInvalidName) {
		t.Errorf("err = %v", err)
	}
	if FullName([]string{"X"}) != "main.default.x" {
		t.Errorf("FullName = %q", FullName([]string{"X"}))
	}
	if !strings.Contains(FullName([]string{"a", "b", "c", "d"}), "a.b.c.d") {
		t.Error("overlong name should join as-is")
	}
}
