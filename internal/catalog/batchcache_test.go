package catalog

import (
	"errors"
	"testing"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

func seedSales(t *testing.T, c *Catalog, rows int) {
	t.Helper()
	createSales(t, c)
	bb := types.NewBatchBuilder(salesSchema(), rows)
	for i := 0; i < rows; i++ {
		bb.AppendRow([]types.Value{
			types.Float64(float64(i)), types.String("2024-12-01"),
			types.String("ann"), types.String("US"),
		})
	}
	if _, err := c.AppendToTable(adminCtx(), []string{"sales"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCacheHitsOnRepeatRead(t *testing.T) {
	c := newTestCatalog(t)
	m := telemetry.NewRegistry()
	c.SetMetrics(m)
	seedSales(t, c, 8)

	readAll := func() {
		snap, read, err := c.OpenSnapshot(adminCtx(), "main.default.sales", -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range snap.Files {
			if _, err := read(f.Path); err != nil {
				t.Fatal(err)
			}
		}
	}
	readAll()
	misses, hits := m.Counter("batch.cache.misses").Value(), m.Counter("batch.cache.hits").Value()
	if misses == 0 || hits != 0 {
		t.Fatalf("cold read: misses=%d hits=%d", misses, hits)
	}
	getsBefore, _ := c.store.Stats()
	readAll()
	getsAfter, _ := c.store.Stats()
	if got := m.Counter("batch.cache.hits").Value(); got == 0 {
		t.Fatal("warm read must hit the batch cache")
	}
	if getsAfter != getsBefore {
		t.Fatalf("warm read issued %d data GETs, want 0", getsAfter-getsBefore)
	}
}

// TestBatchCacheDoesNotBypassAccessControl is the negative security test for
// the tentpole: a cache warmed under user A's credential must not satisfy a
// read that would be denied under user B, and the denial must be audited.
func TestBatchCacheDoesNotBypassAccessControl(t *testing.T) {
	c := newTestCatalog(t)
	m := telemetry.NewRegistry()
	c.SetMetrics(m)
	seedSales(t, c, 8)
	if err := c.Grant(adminCtx(), PrivSelect, []string{"sales"}, alice); err != nil {
		t.Fatal(err)
	}

	// Alice warms the cache.
	snap, readA, err := c.OpenSnapshot(userCtx(alice, ComputeStandard), "main.default.sales", -1)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, f := range snap.Files {
		if _, err := readA(f.Path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, f.Path)
	}

	// Bob has no SELECT: the catalog path denies before any cache is
	// reachable, and the denial is audited.
	if _, _, err := c.OpenSnapshot(userCtx(bob, ComputeStandard), "main.default.sales", -1); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob must be denied at credential vending, got %v", err)
	}
	if n := c.Audit().Count(func(e audit.Event) bool {
		return e.User == bob && e.Decision == audit.DecisionDeny
	}); n == 0 {
		t.Fatal("bob's denial must be audited")
	}

	// Even with a real credential for a DIFFERENT prefix, a direct cache
	// lookup of alice's warmed path is denied by the per-lookup credential
	// check — warm entries never leak across prefixes.
	if err := c.CreateTable(userCtx(bob, ComputeStandard), []string{"bobs"}, salesSchema(), false, ""); err != nil {
		t.Fatal(err)
	}
	_, bobCred, err := c.OpenTableLog(userCtx(bob, ComputeStandard), []string{"bobs"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.batches.get(bobCred, paths[0]); !storage.IsAccessDenied(err) {
		t.Fatalf("cross-prefix credential must be denied on warm cache, got %v", err)
	}

	// An expired credential is denied on the warm path too, and the read
	// closure audits it as a READ_DATA denial.
	c.store.SetClock(func() time.Time { return time.Now().Add(time.Hour) })
	defer c.store.SetClock(time.Now)
	denialsBefore := m.Counter("catalog.denials").Value()
	if _, err := readA(paths[0]); !storage.IsAccessDenied(err) {
		t.Fatalf("expired credential must be denied on warm cache, got %v", err)
	}
	if n := c.Audit().Count(func(e audit.Event) bool {
		return e.User == alice && e.Action == "READ_DATA" && e.Decision == audit.DecisionDeny
	}); n == 0 {
		t.Fatal("expired-credential read of a cached batch must be audited as READ_DATA deny")
	}
	if m.Counter("catalog.denials").Value() == denialsBefore {
		t.Fatal("denial counter must advance")
	}
}

func TestBatchCacheInvalidatedOnDrop(t *testing.T) {
	c := newTestCatalog(t)
	seedSales(t, c, 8)
	snap, read, err := c.OpenSnapshot(adminCtx(), "main.default.sales", -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap.Files {
		if _, err := read(f.Path); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drop(adminCtx(), []string{"sales"}, false); err != nil {
		t.Fatal(err)
	}
	// Re-create at the same prefix with different contents; the old cached
	// state (log handle and batches) must not leak into the new table.
	seedSales(t, c, 3)
	snap2, read2, err := c.OpenSnapshot(adminCtx(), "main.default.sales", -1)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, f := range snap2.Files {
		b, err := read2(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		total += b.NumRows()
	}
	if snap2.Version != 1 || total != 3 {
		t.Fatalf("stale cache after drop+recreate: version=%d rows=%d", snap2.Version, total)
	}
}
