package catalog

import (
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/delta"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// checkReserved rejects user-facing DDL inside the reserved "system"
// catalog: its schemas, tables, and policies are engine-managed (see
// system.go), and letting anyone — admins included — redefine them would let
// a tenant rewrite the row filter guarding everyone else's audit rows.
func checkReserved(ctx RequestContext, cat string) error {
	if cat == SystemCatalog && ctx.User != SystemUser {
		return fmt.Errorf("%w: catalog %q is reserved for engine-managed system tables", ErrPermission, SystemCatalog)
	}
	return nil
}

// CreateSchema creates a namespace. Any authenticated user may create
// schemas in this simplified model; the creator becomes owner of objects
// they create inside it.
func (c *Catalog) CreateSchema(ctx RequestContext, parts []string, ifNotExists bool) error {
	var cat, sch string
	switch len(parts) {
	case 1:
		cat, sch = "main", strings.ToLower(parts[0])
	case 2:
		cat, sch = strings.ToLower(parts[0]), strings.ToLower(parts[1])
	default:
		return fmt.Errorf("%w: schema name %v", ErrInvalidName, parts)
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	co := c.catalogs[cat]
	if co == nil {
		co = &catalogObj{schemas: map[string]*schemaObj{}}
		c.catalogs[cat] = co
	}
	if _, ok := co.schemas[sch]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: schema %s.%s", ErrAlreadyExists, cat, sch)
	}
	co.schemas[sch] = &schemaObj{tables: map[string]*table{}, functions: map[string]*function{}}
	c.record(ctx, "CREATE SCHEMA", cat+"."+sch, audit.DecisionAllow, "")
	return nil
}

// CreateTable creates a managed Delta table and returns its version-0 log.
func (c *Catalog) CreateTable(ctx RequestContext, parts []string, schema *types.Schema, ifNotExists bool, comment string) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return err
	}
	if _, ok := so.tables[name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrAlreadyExists, full)
	}
	prefix := fmt.Sprintf("tables/%s/%s/%s/", cat, sch, name)
	cred := c.signer.Issue(prefix, storage.ModeReadWrite, time.Minute)
	if _, err := delta.Create(c.store, &cred, prefix, schema); err != nil {
		return err
	}
	so.tables[name] = &table{
		fullName: full, objType: TypeTable, schema: schema.Clone(),
		owner: ctx.User, comment: comment, prefix: prefix,
		colMasks: map[string]string{},
	}
	c.record(ctx, "CREATE TABLE", full, audit.DecisionAllow, "")
	return nil
}

// CreateView creates a view or materialized view. The body is stored as SQL
// text; for materialized views a backing table prefix is allocated and the
// caller must refresh it before first read.
func (c *Catalog) CreateView(ctx RequestContext, parts []string, query string, materialized, orReplace bool, viewSchema *types.Schema, comment string) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return err
	}
	if existing, ok := so.tables[name]; ok {
		if !orReplace {
			return fmt.Errorf("%w: %s", ErrAlreadyExists, full)
		}
		if existing.owner != ctx.User && !c.admins[ctx.User] {
			c.record(ctx, "CREATE OR REPLACE VIEW", full, audit.DecisionDeny, "not owner")
			return fmt.Errorf("%w: only the owner may replace %s", ErrPermission, full)
		}
	}
	t := &table{
		fullName: full, objType: TypeView, schema: viewSchema,
		owner: ctx.User, comment: comment, viewText: query,
		colMasks: map[string]string{},
	}
	if materialized {
		t.objType = TypeMaterializedView
		t.prefix = fmt.Sprintf("tables/%s/%s/%s_mv/", cat, sch, name)
		cred := c.signer.Issue(t.prefix, storage.ModeReadWrite, time.Minute)
		if _, err := delta.Create(c.store, &cred, t.prefix, viewSchema); err != nil {
			return err
		}
	}
	so.tables[name] = t
	c.record(ctx, t.objType.createAction(), full, audit.DecisionAllow, "")
	return nil
}

func (ot ObjectType) createAction() string {
	switch ot {
	case TypeMaterializedView:
		return "CREATE MATERIALIZED VIEW"
	case TypeView:
		return "CREATE VIEW"
	}
	return "CREATE TABLE"
}

// CreateFunction catalogs a UDF owned by the creating user.
func (c *Catalog) CreateFunction(ctx RequestContext, parts []string, params []types.Field, returns types.Kind, body string, orReplace bool, comment string) error {
	return c.CreateFunctionResources(ctx, parts, params, returns, body, orReplace, comment, "")
}

// CreateFunctionResources is CreateFunction with a specialized execution
// environment requirement (paper §3.3: requests with specific resource
// requirements route to specialized environments).
func (c *Catalog) CreateFunctionResources(ctx RequestContext, parts []string, params []types.Field, returns types.Kind, body string, orReplace bool, comment, resources string) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return err
	}
	if existing, ok := so.functions[name]; ok {
		if !orReplace {
			return fmt.Errorf("%w: %s", ErrAlreadyExists, full)
		}
		if existing.owner != ctx.User && !c.admins[ctx.User] {
			c.record(ctx, "CREATE OR REPLACE FUNCTION", full, audit.DecisionDeny, "not owner")
			return fmt.Errorf("%w: only the owner may replace %s", ErrPermission, full)
		}
	}
	so.functions[name] = &function{
		fullName: full, owner: ctx.User, params: params, returns: returns,
		body: body, comment: comment, resources: resources,
	}
	c.record(ctx, "CREATE FUNCTION", full, audit.DecisionAllow, "")
	return nil
}

// Drop removes a table or view. Only the owner or an admin may drop.
func (c *Catalog) Drop(ctx RequestContext, parts []string, ifExists bool) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		if ifExists {
			return nil
		}
		return err
	}
	t, ok := so.tables[name]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNotFound, full)
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, "DROP", full, audit.DecisionDeny, "not owner")
		return fmt.Errorf("%w: only the owner may drop %s", ErrPermission, full)
	}
	delete(so.tables, name)
	delete(c.grants, full)
	if t.prefix != "" {
		cred := c.signer.Issue(t.prefix, storage.ModeReadWrite, time.Minute)
		if paths, err := c.store.List(&cred, t.prefix); err == nil {
			for _, p := range paths {
				_ = c.store.Delete(&cred, p)
			}
		}
		// A re-created table reuses this deterministic prefix: drop the
		// shared log handle and any cached batches so stale state can
		// never serve the next incarnation.
		c.invalidateTable(t.prefix)
	}
	c.record(ctx, "DROP", full, audit.DecisionAllow, "")
	return nil
}

// SetRowFilter attaches (or drops) a row-filter policy. Owner or admin only.
func (c *Catalog) SetRowFilter(ctx RequestContext, parts []string, filterSQL string, drop bool) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return err
	}
	t, ok := so.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, full)
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, "SET ROW FILTER", full, audit.DecisionDeny, "not owner")
		return fmt.Errorf("%w: only the owner may set policies on %s", ErrPermission, full)
	}
	if drop {
		t.rowFilter = ""
	} else {
		t.rowFilter = filterSQL
	}
	c.record(ctx, "SET ROW FILTER", full, audit.DecisionAllow, "")
	return nil
}

// SetColumnMask attaches (or drops) a column mask. Owner or admin only.
func (c *Catalog) SetColumnMask(ctx RequestContext, parts []string, column, maskSQL string, drop bool) error {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return err
	}
	full := cat + "." + sch + "." + name
	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return err
	}
	t, ok := so.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, full)
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, "SET COLUMN MASK", full, audit.DecisionDeny, "not owner")
		return fmt.Errorf("%w: only the owner may set policies on %s", ErrPermission, full)
	}
	col := strings.ToLower(column)
	if t.schema.IndexOf(col) < 0 {
		return fmt.Errorf("%w: column %q of %s", ErrNotFound, column, full)
	}
	if drop {
		delete(t.colMasks, col)
	} else {
		t.colMasks[col] = maskSQL
	}
	c.record(ctx, "SET COLUMN MASK", full+"."+col, audit.DecisionAllow, "")
	return nil
}

// Grant grants a privilege to a principal (user or group). Owner/admin only.
func (c *Catalog) Grant(ctx RequestContext, priv Privilege, parts []string, principal string) error {
	full, err := c.checkGrantAuthority(ctx, parts, "GRANT")
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	byPriv := c.grants[full]
	if byPriv == nil {
		byPriv = map[Privilege]map[string]bool{}
		c.grants[full] = byPriv
	}
	if byPriv[priv] == nil {
		byPriv[priv] = map[string]bool{}
	}
	byPriv[priv][principal] = true
	c.record(ctx, "GRANT "+string(priv), full, audit.DecisionAllow, "to "+principal)
	return nil
}

// Revoke removes a privilege grant.
func (c *Catalog) Revoke(ctx RequestContext, priv Privilege, parts []string, principal string) error {
	full, err := c.checkGrantAuthority(ctx, parts, "REVOKE")
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if byPriv := c.grants[full]; byPriv != nil && byPriv[priv] != nil {
		delete(byPriv[priv], principal)
	}
	c.record(ctx, "REVOKE "+string(priv), full, audit.DecisionAllow, "from "+principal)
	return nil
}

// checkGrantAuthority verifies the caller owns the securable (or is admin)
// and returns its full name. Works for tables, views, and functions.
func (c *Catalog) checkGrantAuthority(ctx RequestContext, parts []string, action string) (string, error) {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return "", err
	}
	if err := checkReserved(ctx, cat); err != nil {
		return "", err
	}
	full := cat + "." + sch + "." + name
	c.mu.RLock()
	defer c.mu.RUnlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return "", err
	}
	var owner string
	if t, ok := so.tables[name]; ok {
		owner = t.owner
	} else if f, ok := so.functions[name]; ok {
		owner = f.owner
	} else {
		return "", fmt.Errorf("%w: %s", ErrNotFound, full)
	}
	if owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, action, full, audit.DecisionDeny, "not owner")
		return "", fmt.Errorf("%w: only the owner may %s on %s", ErrPermission, strings.ToLower(action), full)
	}
	return full, nil
}
