package catalog

import (
	"container/list"
	"strings"
	"sync"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// defaultBatchCacheBytes bounds the decoded-batch cache (encoded sizes).
const defaultBatchCacheBytes = 256 << 20

// batchCache is a size-bounded LRU of decoded data-file batches keyed by
// storage path. The cache is shared across users — that is what makes it
// worth having under multi-user load — so it is credential-scoped at lookup
// time, never at fill time: every get first runs the caller's credential
// through the store (a HEAD-style Exists), and only then may cached bytes
// flow. A cache warmed by one user therefore can never satisfy a read the
// store would deny another user; the hot path saves the GET byte copy and
// the decode, not the access check.
type batchCache struct {
	store    *storage.Store
	maxBytes int64

	mu       sync.Mutex
	curBytes int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used

	mHits, mMisses, mEvictions *telemetry.Counter
}

type batchEntry struct {
	path  string
	batch *types.Batch
	bytes int64
}

func newBatchCache(store *storage.Store, maxBytes int64) *batchCache {
	return &batchCache{
		store:    store,
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// setMetrics publishes batch.cache.{hits,misses,evictions} on a registry.
func (bc *batchCache) setMetrics(m *telemetry.Registry) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.mHits = m.Counter("batch.cache.hits")
	bc.mMisses = m.Counter("batch.cache.misses")
	bc.mEvictions = m.Counter("batch.cache.evictions")
}

// get returns the decoded batch at path, serving from cache when possible.
// The credential check is never skipped: a cache hit revalidates cred with
// storage.Exists (which also detects objects deleted since the fill — e.g.
// DROP TABLE — and invalidates them), and a miss goes through storage.Get,
// which checks the credential before reading.
func (bc *batchCache) get(cred *storage.Credential, path string) (*types.Batch, error) {
	bc.mu.Lock()
	_, cached := bc.entries[path]
	bc.mu.Unlock()
	if cached {
		ok, err := bc.store.Exists(cred, path)
		if err != nil {
			return nil, err
		}
		if !ok {
			bc.invalidate(path)
		} else {
			bc.mu.Lock()
			if el, still := bc.entries[path]; still {
				bc.lru.MoveToFront(el)
				e := el.Value.(*batchEntry)
				bc.mHits.Inc()
				bc.mu.Unlock()
				return e.batch, nil
			}
			bc.mu.Unlock()
		}
	}
	data, err := bc.store.Get(cred, path)
	if err != nil {
		return nil, err
	}
	b, err := arrowipc.DecodeBatch(data)
	if err != nil {
		return nil, err
	}
	bc.put(path, b, int64(len(data)))
	return b, nil
}

func (bc *batchCache) put(path string, b *types.Batch, size int64) {
	if size > bc.maxBytes {
		return
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.mMisses.Inc()
	if _, ok := bc.entries[path]; ok {
		return // raced with another filler; keep the existing entry
	}
	bc.entries[path] = bc.lru.PushFront(&batchEntry{path: path, batch: b, bytes: size})
	bc.curBytes += size
	for bc.curBytes > bc.maxBytes && bc.lru.Len() > 1 {
		oldest := bc.lru.Back()
		e := oldest.Value.(*batchEntry)
		bc.lru.Remove(oldest)
		delete(bc.entries, e.path)
		bc.curBytes -= e.bytes
		bc.mEvictions.Inc()
	}
}

// invalidate removes one path from the cache.
func (bc *batchCache) invalidate(path string) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if el, ok := bc.entries[path]; ok {
		e := el.Value.(*batchEntry)
		bc.lru.Remove(el)
		delete(bc.entries, path)
		bc.curBytes -= e.bytes
	}
}

// invalidatePrefix removes every cached path under prefix (DROP TABLE).
func (bc *batchCache) invalidatePrefix(prefix string) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for path, el := range bc.entries {
		if strings.HasPrefix(path, prefix) {
			e := el.Value.(*batchEntry)
			bc.lru.Remove(el)
			delete(bc.entries, path)
			bc.curBytes -= e.bytes
		}
	}
}
