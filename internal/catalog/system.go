package catalog

// This file implements the reserved "system" catalog holding the platform's
// own observability exhaust (audit events, query history, per-tenant usage)
// as governed Delta tables. The spooler in internal/systemtables is the only
// writer; every read goes through the same ResolveTable/OpenSnapshot path as
// customer data, so the built-in row filters and column masks — and the
// sentinel passes that verify them — apply to telemetry exactly as they do
// to any other table.

import (
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/delta"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// Reserved identities for the system-table machinery.
const (
	// SystemCatalog is the reserved top-level catalog name.
	SystemCatalog = "system"
	// SystemUser owns every system table; only the engine acts as it.
	SystemUser = "system"
	// PublicPrincipal is the pseudo-principal matching every identity in
	// grants. Granting SELECT on a system table to public is safe because
	// the row filter still scopes what each caller can see.
	PublicPrincipal = "public"
	// AdminsGroup is the built-in group AddAdmin maintains; system-table row
	// filters reference it so admins see all tenants' rows.
	AdminsGroup = "metastore_admins"
)

// SystemTableSpec declares one engine-managed system table.
type SystemTableSpec struct {
	Parts     []string // e.g. {"system", "audit", "events"}
	Schema    *types.Schema
	RowFilter string            // built-in row filter SQL ("" = none)
	ColMasks  map[string]string // column -> mask SQL
	Comment   string
}

// EnsureSystemTable idempotently registers a system table: it creates the
// reserved catalog/schema entries, creates the backing Delta table (or
// attaches to one that survived a restart in persistent storage — this is
// what makes spooled history durable), applies the built-in policies, and
// grants SELECT to public. Policies are always (re)applied from the spec, so
// a stale or tampered in-memory policy cannot outlive a restart.
func (c *Catalog) EnsureSystemTable(spec SystemTableSpec) error {
	cat, sch, name, err := normalize(spec.Parts)
	if err != nil {
		return err
	}
	if cat != SystemCatalog {
		return fmt.Errorf("%w: system table %v must live in catalog %q", ErrInvalidName, spec.Parts, SystemCatalog)
	}
	full := cat + "." + sch + "." + name
	prefix := fmt.Sprintf("tables/%s/%s/%s/", cat, sch, name)

	// Backing storage first (no catalog lock held across storage I/O):
	// attach if the delta log already exists, create commit 0 otherwise.
	cred := c.signer.Issue(prefix, storage.ModeReadWrite, time.Minute)
	if _, err := delta.Open(c.store, &cred, prefix); err != nil {
		if _, err := delta.Create(c.store, &cred, prefix, spec.Schema); err != nil {
			return fmt.Errorf("catalog: create system table %s: %w", full, err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	so, err := c.schemaFor(cat, sch, true)
	if err != nil {
		return err
	}
	t := so.tables[name]
	if t == nil {
		t = &table{
			fullName: full, objType: TypeTable, owner: SystemUser,
			prefix: prefix, colMasks: map[string]string{},
		}
		so.tables[name] = t
	}
	t.schema = spec.Schema.Clone()
	t.comment = spec.Comment
	t.rowFilter = spec.RowFilter
	t.colMasks = copyMasksInit(spec.ColMasks)
	byPriv := c.grants[full]
	if byPriv == nil {
		byPriv = map[Privilege]map[string]bool{}
		c.grants[full] = byPriv
	}
	if byPriv[PrivSelect] == nil {
		byPriv[PrivSelect] = map[string]bool{}
	}
	byPriv[PrivSelect][PublicPrincipal] = true
	c.record(RequestContext{User: SystemUser, Compute: ComputeServerless},
		"ENSURE SYSTEM TABLE", full, audit.DecisionAllow, "")
	return nil
}

func copyMasksInit(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// AppendSystemTable commits batches into a system table as the engine. It
// bypasses credential vending (the signer is used directly, scoped to the
// table's prefix) and deliberately records no audit event: every flush of
// system.audit.events would otherwise mint a new audit event, an unbounded
// self-amplifying trickle. The write is refused for anything outside the
// reserved catalog or not owned by the system user.
func (c *Catalog) AppendSystemTable(parts []string, batches []*types.Batch) (int64, error) {
	t, full, err := c.systemTable(parts)
	if err != nil {
		return 0, err
	}
	cred := c.signer.Issue(t.prefix, storage.ModeReadWrite, time.Minute)
	v, err := c.logFor(t.prefix).Append(&cred, batches)
	if err != nil {
		return 0, fmt.Errorf("catalog: append %s: %w", full, err)
	}
	return v, nil
}

// SystemTableCount returns the live row count of a system table from its
// snapshot metadata (no data GETs) — the spooler's lag gauge and tests use
// it without paying a scan.
func (c *Catalog) SystemTableCount(parts []string) (int64, error) {
	t, _, err := c.systemTable(parts)
	if err != nil {
		return 0, err
	}
	cred := c.signer.Issue(t.prefix, storage.ModeRead, time.Minute)
	snap, err := c.logFor(t.prefix).Snapshot(&cred, -1)
	if err != nil {
		return 0, err
	}
	return snap.NumRecords(), nil
}

// TruncateSystemTableBefore removes whole data files of a system table whose
// newest value in timeColumn is older than cutoff — file-granular retention
// driven by the same per-file statistics zone-map pruning uses. Files
// without recorded bounds for the column are kept (retention never guesses).
// Returns the number of files removed.
func (c *Catalog) TruncateSystemTableBefore(parts []string, timeColumn string, cutoff time.Time) (int, error) {
	t, full, err := c.systemTable(parts)
	if err != nil {
		return 0, err
	}
	cred := c.signer.Issue(t.prefix, storage.ModeReadWrite, time.Minute)
	log := c.logFor(t.prefix)
	snap, err := log.Snapshot(&cred, -1)
	if err != nil {
		return 0, err
	}
	cutoffMicros := cutoff.UnixMicro()
	var expired []string
	for _, f := range snap.Files {
		cs, ok := f.Stats.Col(timeColumn)
		if !ok {
			continue
		}
		_, max, ok := cs.Bounds()
		if !ok || max.Kind != types.KindTimestamp {
			continue
		}
		if max.I < cutoffMicros {
			expired = append(expired, f.Path)
		}
	}
	if len(expired) == 0 {
		return 0, nil
	}
	if _, err := log.RemoveFiles(&cred, expired, "RETENTION"); err != nil {
		return 0, fmt.Errorf("catalog: retention on %s: %w", full, err)
	}
	c.batches.invalidatePrefix(t.prefix)
	return len(expired), nil
}

// systemTable looks up a table and verifies it is an engine-owned system
// table.
func (c *Catalog) systemTable(parts []string) (*table, string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		return nil, full, err
	}
	if !strings.HasPrefix(full, SystemCatalog+".") || t.owner != SystemUser {
		return nil, full, fmt.Errorf("%w: %s is not a system table", ErrPermission, full)
	}
	return t, full, nil
}
