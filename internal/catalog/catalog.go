// Package catalog implements the Unity Catalog analog: a three-level
// namespace of governed securables (catalog.schema.{table,view,function})
// with ownership, privilege grants, account groups, fine-grained policies
// (row filters and column masks), temporary credential vending, and privilege
// scopes that make the catalog reason about the *compute type* a request
// comes from — the mechanism behind external FGAC in the paper (§3.4, §4).
package catalog

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/delta"
	"lakeguard/internal/security"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Privilege is a grantable permission.
type Privilege string

// Privileges.
const (
	PrivSelect  Privilege = "SELECT"
	PrivModify  Privilege = "MODIFY"
	PrivExecute Privilege = "EXECUTE"
	PrivUse     Privilege = "USE"
	PrivAll     Privilege = "ALL"
)

// ParsePrivilege validates a privilege name.
func ParsePrivilege(s string) (Privilege, error) {
	p := Privilege(strings.ToUpper(s))
	switch p {
	case PrivSelect, PrivModify, PrivExecute, PrivUse, PrivAll:
		return p, nil
	}
	return "", fmt.Errorf("catalog: unknown privilege %q", s)
}

// ComputeType aliases the shared security model's compute classification
// (paper §4) so existing catalog callers keep compiling.
type ComputeType = security.ComputeType

// Compute types, re-exported from the security package.
const (
	ComputeStandard   = security.ComputeStandard
	ComputeDedicated  = security.ComputeDedicated
	ComputeServerless = security.ComputeServerless
	ComputeExternal   = security.ComputeExternal
)

// RequestContext identifies a catalog caller: the user identity plus the
// credential scope of the compute the request originates from. It aliases
// the shared security model so enforcement layers (exec, sentinel) can name
// the same type without importing the catalog.
type RequestContext = security.RequestContext

// ObjectType classifies securables.
type ObjectType string

// Object types.
const (
	TypeTable            ObjectType = "TABLE"
	TypeView             ObjectType = "VIEW"
	TypeMaterializedView ObjectType = "MATERIALIZED_VIEW"
	TypeFunction         ObjectType = "FUNCTION"
)

// Errors.
var (
	ErrNotFound       = errors.New("catalog: object not found")
	ErrAlreadyExists  = errors.New("catalog: object already exists")
	ErrPermission     = errors.New("catalog: permission denied")
	ErrRequiresEFGAC  = errors.New("catalog: relation has fine-grained policies; this compute must use external fine-grained access control")
	ErrInvalidName    = errors.New("catalog: invalid object name")
	ErrNotMateralized = errors.New("catalog: not a materialized view")
)

// Table is the stored definition of a table, view, or materialized view.
type table struct {
	fullName  string
	objType   ObjectType
	schema    *types.Schema
	owner     string
	comment   string
	prefix    string // storage prefix for TABLE and MATERIALIZED_VIEW
	viewText  string // SQL body for VIEW and MATERIALIZED_VIEW
	rowFilter string // SQL predicate, "" if none
	colMasks  map[string]string
	colTags   map[string][]string // column -> attribute tags (ABAC)
	mvFresh   bool                // materialized view has been refreshed at least once
}

// function is a cataloged UDF.
type function struct {
	fullName  string
	owner     string
	params    []types.Field
	returns   types.Kind
	body      string
	comment   string
	resources string // specialized execution environment requirement
}

type schemaObj struct {
	tables    map[string]*table
	functions map[string]*function
}

type catalogObj struct {
	schemas map[string]*schemaObj
}

// Catalog is the metastore. All methods are safe for concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	catalogs map[string]*catalogObj
	grants   map[string]map[Privilege]map[string]bool // securable -> priv -> principals
	groups   map[string]map[string]bool               // group -> members
	tagMasks map[string]string                        // ABAC: tag -> mask template
	admins   map[string]bool
	store    *storage.Store
	signer   *storage.Signer
	audit    *audit.Log
	credTTL  time.Duration
	// vend/deny counters: atomic pointers because record() runs on paths
	// that may already hold c.mu.
	mVends   atomic.Pointer[telemetry.Counter]
	mDenials atomic.Pointer[telemetry.Counter]

	// Shared per-table Delta log handles. Sharing one handle per prefix is
	// what makes delta's incremental snapshot cache effective (a fresh
	// handle per query would replay from scratch every time) and gives
	// concurrent writers one data-file sequence. Guarded by logMu, not
	// c.mu: log access happens on read paths that already hold c.mu.
	logMu   sync.Mutex
	logs    map[string]*delta.Log
	metrics *telemetry.Registry // guarded by logMu; wired onto new handles
	// Checkpoint cadence applied to every log handle (SetCheckpointInterval);
	// ckptSet distinguishes "never configured" from an explicit 0 (disabled).
	ckptInterval int
	ckptSet      bool

	// batches caches decoded data-file batches across queries and users;
	// lookups are credential-checked (see batchcache.go).
	batches *batchCache
}

// New creates a catalog bound to an object store. The catalog holds the
// store's signing secret; it is the only credential issuer in the system.
func New(store *storage.Store, auditLog *audit.Log) *Catalog {
	if auditLog == nil {
		auditLog = audit.NewLog()
	}
	c := &Catalog{
		catalogs: map[string]*catalogObj{},
		grants:   map[string]map[Privilege]map[string]bool{},
		groups:   map[string]map[string]bool{},
		admins:   map[string]bool{},
		store:    store,
		signer:   store.Signer(),
		audit:    auditLog,
		credTTL:  15 * time.Minute,
		logs:     map[string]*delta.Log{},
		batches:  newBatchCache(store, defaultBatchCacheBytes),
	}
	c.catalogs["main"] = &catalogObj{schemas: map[string]*schemaObj{
		"default": {tables: map[string]*table{}, functions: map[string]*function{}},
	}}
	return c
}

// Audit returns the audit log.
func (c *Catalog) Audit() *audit.Log { return c.audit }

// SetMetrics publishes governance counters (catalog.vends — cache-free
// credential vends — and catalog.denials) on a registry and wires the
// paired store's data-plane counters and the audit log's dropped-event
// counter onto the same registry.
func (c *Catalog) SetMetrics(m *telemetry.Registry) {
	if m == nil {
		return
	}
	c.mVends.Store(m.Counter("catalog.vends"))
	c.mDenials.Store(m.Counter("catalog.denials"))
	c.store.SetMetrics(m)
	c.audit.SetMetrics(m)
	c.batches.setMetrics(m)
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.metrics = m
	for _, l := range c.logs {
		l.SetMetrics(m)
	}
}

// logFor returns the shared Delta log handle for a table prefix, creating it
// on first use. Handles carry no authority: every Snapshot/commit on them is
// credential-checked by storage.
func (c *Catalog) logFor(prefix string) *delta.Log {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	l := c.logs[prefix]
	if l == nil {
		l = delta.Attach(c.store, prefix)
		if c.metrics != nil {
			l.SetMetrics(c.metrics)
		}
		if c.ckptSet {
			l.SetCheckpointInterval(c.ckptInterval)
		}
		c.logs[prefix] = l
	}
	return l
}

// invalidateTable drops cached state for a table prefix (DROP TABLE): the
// shared log handle (a re-created table at the same prefix starts a new log)
// and every cached batch under the prefix.
func (c *Catalog) invalidateTable(prefix string) {
	c.logMu.Lock()
	delete(c.logs, prefix)
	c.logMu.Unlock()
	c.batches.invalidatePrefix(prefix)
}

// Store returns the object store (engine side only).
func (c *Catalog) Store() *storage.Store { return c.store }

// AddAdmin marks a user as a metastore admin and enrolls them in the
// built-in AdminsGroup, so policies written in SQL (the system tables' "admins
// see all rows" row filter) track admin membership automatically.
func (c *Catalog) AddAdmin(user string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admins[user] = true
	g := c.groups[AdminsGroup]
	if g == nil {
		g = map[string]bool{}
		c.groups[AdminsGroup] = g
	}
	g[user] = true
}

// CreateGroup creates an account group.
func (c *Catalog) CreateGroup(name string, members ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[strings.ToLower(name)]
	if g == nil {
		g = map[string]bool{}
		c.groups[strings.ToLower(name)] = g
	}
	for _, m := range members {
		g[m] = true
	}
}

// RemoveFromGroup removes a member from a group.
func (c *Catalog) RemoveFromGroup(name, member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g := c.groups[strings.ToLower(name)]; g != nil {
		delete(g, member)
	}
}

// IsGroupMember reports whether user belongs to group.
func (c *Catalog) IsGroupMember(user, group string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.groups[strings.ToLower(group)][user]
}

// GroupsOf returns the groups a user belongs to.
func (c *Catalog) GroupsOf(user string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for g, members := range c.groups {
		if members[user] {
			out = append(out, g)
		}
	}
	return out
}

// normalize resolves name parts to (catalog, schema, object) applying the
// default catalog/schema for short names.
func normalize(parts []string) (string, string, string, error) {
	switch len(parts) {
	case 1:
		return "main", "default", strings.ToLower(parts[0]), nil
	case 2:
		return "main", strings.ToLower(parts[0]), strings.ToLower(parts[1]), nil
	case 3:
		return strings.ToLower(parts[0]), strings.ToLower(parts[1]), strings.ToLower(parts[2]), nil
	}
	return "", "", "", fmt.Errorf("%w: %v", ErrInvalidName, parts)
}

// FullName renders normalized parts as catalog.schema.name.
func FullName(parts []string) string {
	cat, sch, obj, err := normalize(parts)
	if err != nil {
		return strings.Join(parts, ".")
	}
	return cat + "." + sch + "." + obj
}

func (c *Catalog) schemaFor(cat, sch string, create bool) (*schemaObj, error) {
	co := c.catalogs[cat]
	if co == nil {
		if !create {
			return nil, fmt.Errorf("%w: catalog %q", ErrNotFound, cat)
		}
		co = &catalogObj{schemas: map[string]*schemaObj{}}
		c.catalogs[cat] = co
	}
	so := co.schemas[sch]
	if so == nil {
		if !create {
			return nil, fmt.Errorf("%w: schema %q.%q", ErrNotFound, cat, sch)
		}
		so = &schemaObj{tables: map[string]*table{}, functions: map[string]*function{}}
		co.schemas[sch] = so
	}
	return so, nil
}

func (c *Catalog) record(ctx RequestContext, action, securable string, decision audit.Decision, reason string) {
	c.audit.Record(audit.Event{
		User: ctx.User, Compute: string(ctx.Compute), SessionID: ctx.SessionID,
		Action: action, Securable: securable, Decision: decision, Reason: reason,
		TraceID: ctx.TraceID,
	})
	if decision == audit.DecisionDeny {
		c.mDenials.Load().Inc()
	} else if action == "VEND_CREDENTIAL" || action == "VEND_RESULT_CREDENTIAL" {
		c.mVends.Load().Inc()
	}
}
