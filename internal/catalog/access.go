package catalog

import (
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/delta"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// TableMeta is the metadata the catalog returns for a resolved relation. For
// compute types that cannot enforce FGAC locally (privilege scopes, paper
// §3.4), policy internals and view bodies are withheld and
// LocalProcessingAllowed is false — the engine must rewrite the relation
// into a RemoteScan.
type TableMeta struct {
	FullName string
	Type     ObjectType
	Schema   *types.Schema
	Owner    string
	Comment  string

	// ViewText is the SQL body for views; withheld when processing is not
	// allowed locally.
	ViewText string
	// RowFilterSQL is the row-filter predicate; withheld for untrusted
	// compute.
	RowFilterSQL string
	// ColumnMasks maps column name to mask SQL; withheld for untrusted
	// compute.
	ColumnMasks map[string]string

	// HasPolicies reports that FGAC policies exist, even when their
	// content is withheld.
	HasPolicies bool
	// LocalProcessingAllowed is false when this relation must be executed
	// via external fine-grained access control.
	LocalProcessingAllowed bool
	// StoragePrefix locates table data (tables and materialized views,
	// trusted compute only).
	StoragePrefix string
	// MVFresh reports whether a materialized view has data.
	MVFresh bool
}

// FunctionMeta describes a cataloged UDF. The body ships to the engine for
// sandboxed execution; Owner defines the trust domain it runs in.
type FunctionMeta struct {
	FullName string
	Owner    string
	Params   []types.Field
	Returns  types.Kind
	Body     string
	// Resources names the specialized execution environment the function
	// requires ("gpu", ...); empty runs on standard executors.
	Resources string
}

// hasPrivilege checks the effective privilege of a caller on a securable:
// admin, owner, direct user grant, group grant, or a grant to the "public"
// pseudo-principal (every authenticated identity); ALL implies everything.
// With a GroupScope, the caller's permissions are down-scoped to exactly the
// named group's grants — admin and ownership shortcuts do not apply, but
// public grants do: they name everyone, which includes any group.
// Caller must hold at least a read lock.
func (c *Catalog) hasPrivilege(ctx RequestContext, priv Privilege, full string, owner string) bool {
	byPriv := c.grants[full]
	if ctx.GroupScope != "" {
		if byPriv == nil {
			return false
		}
		scope := strings.ToLower(ctx.GroupScope)
		for _, p := range []Privilege{priv, PrivAll} {
			if byPriv[p] != nil && (byPriv[p][scope] || byPriv[p][ctx.GroupScope] || byPriv[p][PublicPrincipal]) {
				return true
			}
		}
		return false
	}
	user := ctx.User
	if c.admins[user] || owner == user {
		return true
	}
	if byPriv == nil {
		return false
	}
	for _, p := range []Privilege{priv, PrivAll} {
		principals := byPriv[p]
		if principals == nil {
			continue
		}
		if principals[user] || principals[PublicPrincipal] {
			return true
		}
		for g, members := range c.groups {
			if principals[g] && members[user] {
				return true
			}
		}
	}
	return false
}

// lookupTable fetches the stored table object. Caller must hold a lock.
func (c *Catalog) lookupTable(parts []string) (*table, string, error) {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return nil, "", err
	}
	full := cat + "." + sch + "." + name
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return nil, full, err
	}
	t, ok := so.tables[name]
	if !ok {
		return nil, full, fmt.Errorf("%w: %s", ErrNotFound, full)
	}
	return t, full, nil
}

// ResolveTable authorizes and returns relation metadata for a query. It is
// the analyzer's entry point for every table/view reference.
func (c *Catalog) ResolveTable(ctx RequestContext, parts []string) (*TableMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		c.record(ctx, "RESOLVE", full, audit.DecisionDeny, err.Error())
		return nil, err
	}
	if !c.hasPrivilege(ctx, PrivSelect, full, t.owner) {
		c.record(ctx, "SELECT", full, audit.DecisionDeny, "missing SELECT")
		return nil, fmt.Errorf("%w: user %q lacks SELECT on %s", ErrPermission, ctx.User, full)
	}
	meta := &TableMeta{
		FullName: full,
		Type:     t.objType,
		Schema:   t.schema.Clone(),
		Owner:    t.owner,
		Comment:  t.comment,
		MVFresh:  t.mvFresh,
	}
	masks := c.effectiveMasks(t)
	hasPolicies := t.rowFilter != "" || len(masks) > 0 || t.objType == TypeView || t.objType == TypeMaterializedView
	meta.HasPolicies = t.rowFilter != "" || len(masks) > 0
	trusted := ctx.Compute.TrustedForFGAC()
	meta.LocalProcessingAllowed = trusted || !hasPolicies
	if meta.LocalProcessingAllowed {
		meta.ViewText = t.viewText
		meta.RowFilterSQL = t.rowFilter
		meta.ColumnMasks = masks
		meta.StoragePrefix = t.prefix
	}
	// Owners on privileged compute still cannot bypass: the catalog only
	// annotates; enforcement is the engine's job on trusted compute.
	c.record(ctx, "RESOLVE", full, audit.DecisionAllow, fmt.Sprintf("local=%v policies=%v", meta.LocalProcessingAllowed, hasPolicies))
	return meta, nil
}

func copyMasks(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ResolveFunction authorizes EXECUTE and returns UDF metadata.
func (c *Catalog) ResolveFunction(ctx RequestContext, parts []string) (*FunctionMeta, error) {
	cat, sch, name, err := normalize(parts)
	if err != nil {
		return nil, err
	}
	full := cat + "." + sch + "." + name
	c.mu.RLock()
	defer c.mu.RUnlock()
	so, err := c.schemaFor(cat, sch, false)
	if err != nil {
		return nil, err
	}
	f, ok := so.functions[name]
	if !ok {
		return nil, fmt.Errorf("%w: function %s", ErrNotFound, full)
	}
	if !c.hasPrivilege(ctx, PrivExecute, full, f.owner) {
		c.record(ctx, "EXECUTE", full, audit.DecisionDeny, "missing EXECUTE")
		return nil, fmt.Errorf("%w: user %q lacks EXECUTE on %s", ErrPermission, ctx.User, full)
	}
	c.record(ctx, "EXECUTE", full, audit.DecisionAllow, "")
	return &FunctionMeta{
		FullName: full, Owner: f.owner, Params: append([]types.Field(nil), f.params...),
		Returns: f.returns, Body: f.body, Resources: f.resources,
	}, nil
}

// VendCredential issues a temporary storage credential for a table's data.
// This is where cluster-bound access became user-bound (paper §2.2): every
// vend is authorized against the requesting user and compute scope, and
// FGAC-protected tables never yield credentials to untrusted compute.
func (c *Catalog) VendCredential(ctx RequestContext, parts []string, mode storage.AccessMode) (*storage.Credential, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionDeny, err.Error())
		return nil, err
	}
	priv := PrivSelect
	if mode == storage.ModeReadWrite {
		priv = PrivModify
		// System tables are engine-written only: even admins (who pass every
		// privilege check) must not forge audit or billing rows through DML.
		if strings.HasPrefix(full, SystemCatalog+".") && ctx.User != SystemUser {
			c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionDeny, "system tables are engine-written")
			return nil, fmt.Errorf("%w: %s is an engine-written system table", ErrPermission, full)
		}
	}
	if !c.hasPrivilege(ctx, priv, full, t.owner) {
		c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionDeny, "missing "+string(priv))
		return nil, fmt.Errorf("%w: user %q lacks %s on %s", ErrPermission, ctx.User, priv, full)
	}
	if t.objType == TypeView {
		c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionDeny, "views have no storage")
		return nil, fmt.Errorf("%w: %s is a view; no direct storage access", ErrPermission, full)
	}
	hasFGAC := t.rowFilter != "" || len(c.effectiveMasks(t)) > 0
	if hasFGAC && !ctx.Compute.TrustedForFGAC() {
		c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionDeny, "requires eFGAC")
		return nil, fmt.Errorf("%w (%s)", ErrRequiresEFGAC, full)
	}
	cred := c.signer.Issue(t.prefix, mode, c.credTTL)
	c.record(ctx, "VEND_CREDENTIAL", full, audit.DecisionAllow, mode.String())
	return &cred, nil
}

// ResultPrefix is where eFGAC spill results live for one (user, session).
func ResultPrefix(user, sessionID string) string {
	return "results/" + user + "/" + sessionID + "/"
}

// VendResultCredential issues a credential over a result spill prefix. The
// prefix must lie inside the caller's own spill area ("results/<user>/..."),
// so one user can never read another's spilled results.
func (c *Catalog) VendResultCredential(ctx RequestContext, prefix string, mode storage.AccessMode) (*storage.Credential, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !strings.HasPrefix(prefix, "results/"+ctx.User+"/") {
		c.record(ctx, "VEND_RESULT_CREDENTIAL", prefix, audit.DecisionDeny, "outside caller's result area")
		return nil, fmt.Errorf("%w: result prefix %q does not belong to %q", ErrPermission, prefix, ctx.User)
	}
	cred := c.signer.Issue(prefix, mode, c.credTTL)
	c.record(ctx, "VEND_RESULT_CREDENTIAL", prefix, audit.DecisionAllow, mode.String())
	return &cred, nil
}

// OpenTableLog returns the Delta log plus a read credential for scanning.
// The log handle is shared per table prefix (it carries the incremental
// snapshot cache); the credential is vended per call, and every operation on
// the handle revalidates it.
func (c *Catalog) OpenTableLog(ctx RequestContext, parts []string) (*delta.Log, *storage.Credential, error) {
	cred, err := c.VendCredential(ctx, parts, storage.ModeRead)
	if err != nil {
		return nil, nil, err
	}
	c.mu.RLock()
	t, _, err := c.lookupTable(parts)
	c.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	return c.logFor(t.prefix), cred, nil
}

// OpenSnapshot resolves a table by its fully qualified name, vends a read
// credential, and returns the requested snapshot together with a batch reader
// bound to that credential. It is the execution engine's only route to table
// data (it satisfies exec.TableProvider structurally): the engine never
// handles raw storage paths or credentials itself, so every batch it reads is
// covered by a vended, audited credential. Reads go through the shared
// decoded-batch cache; a denied lookup (forged, expired, or out-of-prefix
// credential) is audited even when the batch was already cached.
func (c *Catalog) OpenSnapshot(ctx RequestContext, table string, version int64) (*delta.Snapshot, func(path string) (*types.Batch, error), error) {
	parts := strings.Split(table, ".")
	log, cred, err := c.OpenTableLog(ctx, parts)
	if err != nil {
		return nil, nil, err
	}
	snap, err := log.Snapshot(cred, version)
	if err != nil {
		return nil, nil, err
	}
	full := FullName(parts)
	read := func(path string) (*types.Batch, error) {
		b, err := c.batches.get(cred, path)
		if err != nil && storage.IsAccessDenied(err) {
			c.record(ctx, "READ_DATA", full, audit.DecisionDeny, err.Error())
		}
		return b, err
	}
	return snap, read, nil
}

// AppendToTable writes batches into a managed table (engine-side DML).
func (c *Catalog) AppendToTable(ctx RequestContext, parts []string, batches []*types.Batch) (int64, error) {
	cred, err := c.VendCredential(ctx, parts, storage.ModeReadWrite)
	if err != nil {
		return 0, err
	}
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	c.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	if t.objType != TypeTable {
		return 0, fmt.Errorf("%w: cannot insert into %s of type %s", ErrPermission, full, t.objType)
	}
	v, err := c.logFor(t.prefix).Append(cred, batches)
	if err != nil {
		return 0, err
	}
	c.record(ctx, "INSERT", full, audit.DecisionAllow, fmt.Sprintf("version %d", v))
	return v, nil
}

// OverwriteTable replaces a managed table's contents (DML DELETE path). The
// caller needs MODIFY; tables carrying FGAC policies refuse DML from
// non-owners because a row filter would make the rewrite partial-blind.
func (c *Catalog) OverwriteTable(ctx RequestContext, parts []string, batches []*types.Batch) (int64, error) {
	c.mu.RLock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		c.mu.RUnlock()
		return 0, err
	}
	if t.objType != TypeTable {
		c.mu.RUnlock()
		return 0, fmt.Errorf("%w: cannot modify %s of type %s", ErrPermission, full, t.objType)
	}
	hasFGAC := t.rowFilter != "" || len(c.effectiveMasks(t)) > 0
	owner := t.owner
	c.mu.RUnlock()
	if hasFGAC && ctx.User != owner && !c.isAdmin(ctx.User) {
		c.record(ctx, "DELETE", full, audit.DecisionDeny, "DML on policy-protected table requires ownership")
		return 0, fmt.Errorf("%w: only the owner may run DML on the policy-protected table %s", ErrPermission, full)
	}
	cred, err := c.VendCredential(ctx, parts, storage.ModeReadWrite)
	if err != nil {
		return 0, err
	}
	v, err := c.logFor(t.prefix).Overwrite(cred, batches)
	if err != nil {
		return 0, err
	}
	c.record(ctx, "DELETE", full, audit.DecisionAllow, fmt.Sprintf("version %d", v))
	return v, nil
}

func (c *Catalog) isAdmin(user string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.admins[user]
}

// TableHistory returns a table's commit history (SELECT required).
func (c *Catalog) TableHistory(ctx RequestContext, parts []string) ([]delta.HistoryEntry, error) {
	log, cred, err := c.OpenTableLog(ctx, parts)
	if err != nil {
		return nil, err
	}
	return log.History(cred)
}

// Describe returns per-column metadata plus governance annotations for a
// relation the caller can read.
func (c *Catalog) Describe(ctx RequestContext, parts []string) (*TableMeta, error) {
	return c.ResolveTable(ctx, parts)
}

// RefreshMaterializedView overwrites the MV's backing storage with fresh
// data computed by the engine. Only the owner or an admin may refresh.
func (c *Catalog) RefreshMaterializedView(ctx RequestContext, parts []string, data []*types.Batch) error {
	c.mu.Lock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if t.objType != TypeMaterializedView {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotMateralized, full)
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		c.record(ctx, "REFRESH", full, audit.DecisionDeny, "not owner")
		c.mu.Unlock()
		return fmt.Errorf("%w: only the owner may refresh %s", ErrPermission, full)
	}
	prefix := t.prefix
	t.mvFresh = true
	c.mu.Unlock()

	cred := c.signer.Issue(prefix, storage.ModeReadWrite, time.Minute)
	if _, err := c.logFor(prefix).Overwrite(&cred, data); err != nil {
		return err
	}
	c.record(ctx, "REFRESH", full, audit.DecisionAllow, "")
	return nil
}

// ViewTextForRefresh returns a materialized view's definition for the
// refresh path (owner/admin only).
func (c *Catalog) ViewTextForRefresh(ctx RequestContext, parts []string) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, full, err := c.lookupTable(parts)
	if err != nil {
		return "", err
	}
	if t.objType != TypeMaterializedView {
		return "", fmt.Errorf("%w: %s", ErrNotMateralized, full)
	}
	if t.owner != ctx.User && !c.admins[ctx.User] {
		return "", fmt.Errorf("%w: only the owner may refresh %s", ErrPermission, full)
	}
	return t.viewText, nil
}

// ListTables returns the full names of tables/views the user can SELECT.
func (c *Catalog) ListTables(ctx RequestContext) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, co := range c.catalogs {
		for _, so := range co.schemas {
			for _, t := range so.tables {
				if c.hasPrivilege(ctx, PrivSelect, t.fullName, t.owner) {
					out = append(out, t.fullName)
				}
			}
		}
	}
	return out
}
