package delta

import (
	"math"

	"lakeguard/internal/types"
)

// maxStatStringLen caps the string/binary payloads recorded in file
// statistics. Longer values are dropped (min/max omitted) rather than
// truncated: truncating a max bound requires an "increment the last byte"
// adjustment to stay an upper bound, and an unprunable column is always safe.
const maxStatStringLen = 64

// StatValue is the JSON form of one min/max bound. It mirrors the payload
// layout of types.Value so every scalar kind round-trips through the
// transaction log without a custom encoder per kind.
type StatValue struct {
	Kind uint8   `json:"kind"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
}

func statValueOf(v types.Value) *StatValue {
	return &StatValue{Kind: uint8(v.Kind), I: v.I, F: v.F, S: v.S}
}

// Value converts the bound back to an engine scalar.
func (sv *StatValue) Value() types.Value {
	return types.Value{Kind: types.Kind(sv.Kind), I: sv.I, F: sv.F, S: sv.S}
}

// ColStats are the zone-map statistics for one column of one data file.
// Min/Max cover non-NULL, non-NaN values only; both may be nil (all-NULL
// column, or string bounds over maxStatStringLen). HasNaN marks float
// columns containing NaN — the engine's comparison semantics order NaN as
// equal to everything, so range pruning must be disabled for such files.
type ColStats struct {
	Min       *StatValue `json:"min,omitempty"`
	Max       *StatValue `json:"max,omitempty"`
	NullCount int64      `json:"nullCount"`
	HasNaN    bool       `json:"hasNaN,omitempty"`
}

// Bounds returns the min/max bounds as engine scalars. ok is false when the
// column has no recorded range.
func (cs ColStats) Bounds() (min, max types.Value, ok bool) {
	if cs.Min == nil || cs.Max == nil {
		return types.Value{}, types.Value{}, false
	}
	return cs.Min.Value(), cs.Max.Value(), true
}

// FileStats are the per-file statistics written into each AddFile log entry
// at commit time. Legacy log entries decode with a nil *FileStats and are
// never pruned — always read, exactly as before statistics existed.
type FileStats struct {
	NumRecords int64               `json:"numRecords"`
	Columns    map[string]ColStats `json:"columns,omitempty"`
}

// Col returns the statistics for a named column.
func (fs *FileStats) Col(name string) (ColStats, bool) {
	if fs == nil || fs.Columns == nil {
		return ColStats{}, false
	}
	cs, ok := fs.Columns[name]
	return cs, ok
}

// ComputeStats derives per-column min/max/null-count statistics for one data
// file's batch. Comparison uses the same types.Value.Compare ordering the
// engine evaluates predicates with, so pruning decisions made against these
// bounds are consistent with scan-time filtering.
func ComputeStats(b *types.Batch) *FileStats {
	n := b.NumRows()
	fs := &FileStats{NumRecords: int64(n), Columns: make(map[string]ColStats, len(b.Schema.Fields))}
	for ci, f := range b.Schema.Fields {
		col := b.Cols[ci]
		cs := ColStats{}
		var min, max types.Value
		seen := false
		for i := 0; i < n; i++ {
			v := col.Value(i)
			if v.Null {
				cs.NullCount++
				continue
			}
			if v.Kind == types.KindFloat64 && math.IsNaN(v.F) {
				cs.HasNaN = true
				continue
			}
			if !seen {
				min, max = v, v
				seen = true
				continue
			}
			if c, ok := v.Compare(min); ok && c < 0 {
				min = v
			}
			if c, ok := v.Compare(max); ok && c > 0 {
				max = v
			}
		}
		if seen && statStorable(min) && statStorable(max) {
			cs.Min, cs.Max = statValueOf(min), statValueOf(max)
		}
		fs.Columns[f.Name] = cs
	}
	return fs
}

func statStorable(v types.Value) bool {
	switch v.Kind {
	case types.KindString, types.KindBinary:
		return len(v.S) <= maxStatStringLen
	}
	return true
}
