package delta

import (
	"strings"
	"testing"

	"lakeguard/internal/types"
)

func TestRemoveFiles(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/rm/", schema)
	if err != nil {
		t.Fatal(err)
	}
	// Three appends → three data files.
	for i := int64(0); i < 3; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, i*10, i*10+1)}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 3 {
		t.Fatalf("files = %d, want 3", len(snap.Files))
	}
	victim := snap.Files[0].Path

	v, err := log.RemoveFiles(cred, []string{victim}, "RETENTION")
	if err != nil {
		t.Fatal(err)
	}
	if v != snap.Version+1 {
		t.Fatalf("remove committed v=%d, want %d", v, snap.Version+1)
	}
	after, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Files) != 2 || after.NumRecords() != 4 {
		t.Fatalf("after remove: files=%d rows=%d, want 2 files / 4 rows", len(after.Files), after.NumRecords())
	}
	for _, f := range after.Files {
		if f.Path == victim {
			t.Fatal("removed file still referenced by snapshot")
		}
	}
	// The data object itself is garbage-collected from storage.
	if _, err := store.Get(cred, victim); err == nil {
		t.Fatal("removed data object still readable")
	}
	// Rows in surviving files are still readable.
	all, err := after.ReadAll(store, cred)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 4 {
		t.Fatalf("readable rows = %d, want 4", all.NumRows())
	}

	// Removing paths that are not live is a no-op: no new commit.
	v2, err := log.RemoveFiles(cred, []string{victim, "tables/rm/data/nonexistent.arrow"}, "RETENTION")
	if err != nil {
		t.Fatal(err)
	}
	if v2 != after.Version {
		t.Fatalf("no-op remove committed v=%d, want current %d", v2, after.Version)
	}

	// History records the retention operation.
	hist, err := log.History(cred)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hist {
		if strings.Contains(h.Operation, "RETENTION") {
			found = true
		}
	}
	if !found {
		t.Fatalf("RETENTION commit missing from history: %+v", hist)
	}
}
