package delta

import (
	"math/rand"
	"testing"
	"time"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// TestLogModelProperty drives the transaction log with random sequences of
// Append/Overwrite operations and checks every version's snapshot against a
// simple in-memory model — including historical versions (time travel must
// reconstruct exactly the model state at that version).
func TestLogModelProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := storage.NewStore()
			cred := store.Signer().Issue("tables/", storage.ModeReadWrite, time.Hour)
			schema := types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64})
			log, err := Create(store, &cred, "tables/m/", schema)
			if err != nil {
				t.Fatal(err)
			}

			// model[v] = table contents (multiset of ints) at version v.
			model := [][]int64{{}}
			next := int64(0)
			ops := 12 + rng.Intn(10)
			for i := 0; i < ops; i++ {
				var vals []int64
				for j := rng.Intn(4); j >= 0; j-- {
					vals = append(vals, next)
					next++
				}
				batch := intBatch(schema, vals...)
				if rng.Intn(4) == 0 {
					if _, err := log.Overwrite(&cred, []*types.Batch{batch}); err != nil {
						t.Fatal(err)
					}
					model = append(model, append([]int64{}, vals...))
				} else {
					if _, err := log.Append(&cred, []*types.Batch{batch}); err != nil {
						t.Fatal(err)
					}
					prev := model[len(model)-1]
					cur := append(append([]int64{}, prev...), vals...)
					model = append(model, cur)
				}
			}

			// Every historical version matches the model.
			for v, want := range model {
				snap, err := log.Snapshot(&cred, int64(v))
				if err != nil {
					t.Fatalf("seed %d version %d: %v", seed, v, err)
				}
				got, err := snap.ReadAll(store, &cred)
				if err != nil {
					t.Fatal(err)
				}
				if got.NumRows() != len(want) {
					t.Fatalf("seed %d version %d: %d rows, want %d", seed, v, got.NumRows(), len(want))
				}
				seen := map[int64]int{}
				for i := 0; i < got.NumRows(); i++ {
					seen[got.Cols[0].Int64(i)]++
				}
				for _, w := range want {
					if seen[w] == 0 {
						t.Fatalf("seed %d version %d: missing value %d", seed, v, w)
					}
					seen[w]--
				}
			}
			// Latest == last model state.
			latest, err := log.Snapshot(&cred, -1)
			if err != nil {
				t.Fatal(err)
			}
			if latest.Version != int64(len(model)-1) {
				t.Fatalf("latest version %d, want %d", latest.Version, len(model)-1)
			}
		})
	}
}
