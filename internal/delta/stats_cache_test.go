package delta

import (
	"math"
	"testing"
	"time"

	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

func TestCommitWritesFileStats(t *testing.T) {
	store, cred := testEnv(t)
	schema := types.NewSchema(
		types.Field{Name: "n", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "f", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "s", Kind: types.KindString},
	)
	log, err := Create(store, cred, "tables/stats/", schema)
	if err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(schema, 4)
	bb.AppendRow([]types.Value{types.Int64(7), types.Float64(1.5), types.String("bb")})
	bb.AppendRow([]types.Value{types.Null(types.KindInt64), types.Float64(-2), types.String("aa")})
	bb.AppendRow([]types.Value{types.Int64(-3), types.Null(types.KindFloat64), types.String("zz")})
	bb.AppendRow([]types.Value{types.Int64(5), types.Float64(math.NaN()), types.String("mm")})
	if _, err := log.Append(cred, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	// A fresh handle decodes stats straight from the log bytes.
	snap, err := Attach(store, "tables/stats/").Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	fs := snap.Files[0].Stats
	if fs == nil || fs.NumRecords != 4 {
		t.Fatalf("stats missing or wrong rows: %+v", fs)
	}
	n := fs.Columns["n"]
	min, max, ok := n.Bounds()
	if !ok || min.I != -3 || max.I != 7 || n.NullCount != 1 || n.HasNaN {
		t.Fatalf("int stats wrong: %+v", n)
	}
	f := fs.Columns["f"]
	if !f.HasNaN || f.NullCount != 1 {
		t.Fatalf("float stats must record NaN and NULL: %+v", f)
	}
	fmin, fmax, ok := f.Bounds()
	if !ok || fmin.F != -2 || fmax.F != 1.5 {
		t.Fatalf("float bounds must exclude NaN: min=%v max=%v ok=%v", fmin, fmax, ok)
	}
	s := fs.Columns["s"]
	smin, smax, ok := s.Bounds()
	if !ok || smin.S != "aa" || smax.S != "zz" {
		t.Fatalf("string bounds wrong: %+v", s)
	}
}

func TestLegacyAddFileWithoutStats(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/legacy/", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	// Hand-write a pre-statistics commit: an add entry with no stats field,
	// exactly what logs committed before this feature look like.
	legacy := `{"add":{"path":"tables/legacy/data/000001-000001.arrow","numRecords":2,"sizeBytes":0}}` + "\n"
	if err := store.PutIfAbsent(cred, logPath("tables/legacy/", 2), []byte(legacy)); err != nil {
		t.Fatal(err)
	}
	snap, err := Attach(store, "tables/legacy/").Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 1 || snap.Files[0].Stats != nil {
		t.Fatalf("legacy add must decode with nil stats: %+v", snap.Files)
	}
}

func TestSnapshotCacheWarmRepeatReplaysNothing(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/warm/", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	m := telemetry.NewRegistry()
	store.SetMetrics(m)
	shared := Attach(store, "tables/warm/")
	shared.SetMetrics(m)
	replayed := m.Counter("snapshot.entries.replayed")
	if _, err := shared.Snapshot(cred, -1); err != nil {
		t.Fatal(err)
	}
	if got := replayed.Value(); got != 4 {
		t.Fatalf("cold replay should read 4 log entries, got %d", got)
	}
	getsBefore, _ := store.Stats()
	if _, err := shared.Snapshot(cred, -1); err != nil {
		t.Fatal(err)
	}
	getsAfter, _ := store.Stats()
	if got := replayed.Value(); got != 4 {
		t.Fatalf("warm repeat replayed %d entries, want 0 new", got-4)
	}
	if getsAfter != getsBefore {
		t.Fatalf("warm repeat issued %d GETs, want 0 (tail via LIST)", getsAfter-getsBefore)
	}
	if m.Counter("snapshot.cache.hit").Value() == 0 {
		t.Fatal("warm repeat must count a cache hit")
	}
	if m.Counter("storage.get_saved").Value() == 0 {
		t.Fatal("warm repeat must credit saved GETs")
	}
}

func TestSnapshotCacheIncrementalAcrossOverwrite(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/ow/", schema)
	if err != nil {
		t.Fatal(err)
	}
	shared := Attach(store, "tables/ow/")
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Snapshot(cred, -1); err != nil { // warm at v1
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Overwrite(cred, []*types.Batch{intBatch(schema, 9, 10)}); err != nil {
		t.Fatal(err)
	}
	warm, err := shared.Snapshot(cred, -1) // advances v2..v3 incrementally
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Attach(store, "tables/ow/").Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Version != cold.Version || len(warm.Files) != len(cold.Files) {
		t.Fatalf("cache diverged from full replay: warm=%+v cold=%+v", warm, cold)
	}
	for i := range warm.Files {
		if warm.Files[i].Path != cold.Files[i].Path {
			t.Fatalf("file order diverged at %d: %s vs %s", i, warm.Files[i].Path, cold.Files[i].Path)
		}
	}
	if warm.NumRecords() != 2 {
		t.Fatalf("overwrite must replace contents, got %d rows", warm.NumRecords())
	}
}

func TestTimeTravelLRU(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/tt/", schema)
	if err != nil {
		t.Fatal(err)
	}
	versions := timeTravelCacheSize + 3
	for i := 0; i < versions; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	m := telemetry.NewRegistry()
	shared := Attach(store, "tables/tt/")
	shared.SetMetrics(m)
	hit := m.Counter("snapshot.cache.hit")
	// Fill past capacity; every version must still be served correctly.
	for v := 1; v <= versions; v++ {
		snap, err := shared.Snapshot(cred, int64(v))
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != int64(v) || len(snap.Files) != v {
			t.Fatalf("version %d: got v=%d files=%d", v, snap.Version, len(snap.Files))
		}
	}
	before := hit.Value()
	if _, err := shared.Snapshot(cred, int64(versions)); err != nil { // recently used: cached
		t.Fatal(err)
	}
	if hit.Value() != before+1 {
		t.Fatal("recent time-travel version should be a cache hit")
	}
	// The oldest version was evicted; it must still replay correctly.
	snap, err := shared.Snapshot(cred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || len(snap.Files) != 1 {
		t.Fatalf("evicted version replays wrong: %+v", snap)
	}
}

func TestWarmSnapshotCacheStillChecksCredentials(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/sec/", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1)}); err != nil {
		t.Fatal(err)
	}
	shared := Attach(store, "tables/sec/")
	if _, err := shared.Snapshot(cred, -1); err != nil { // warm the cache
		t.Fatal(err)
	}
	// A credential scoped to a different prefix must be rejected even though
	// the snapshot is cached.
	other := store.Signer().Issue("tables/other/", storage.ModeRead, time.Hour)
	if _, err := shared.Snapshot(&other, -1); !storage.IsAccessDenied(err) {
		t.Fatalf("wrong-prefix credential must be denied on warm cache, got %v", err)
	}
	// An expired credential must be rejected too.
	expired := store.Signer().Issue("tables/sec/", storage.ModeRead, -time.Minute)
	if _, err := shared.Snapshot(&expired, -1); !storage.IsAccessDenied(err) {
		t.Fatalf("expired credential must be denied on warm cache, got %v", err)
	}
	// And no credential at all.
	if _, err := shared.Snapshot(nil, -1); !storage.IsAccessDenied(err) {
		t.Fatalf("nil credential must be denied on warm cache, got %v", err)
	}
}

func TestSnapshotCacheResetsOnLogRewind(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/rw/", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	shared := Attach(store, "tables/rw/")
	if _, err := shared.Snapshot(cred, -1); err != nil { // cache at v3
		t.Fatal(err)
	}
	// Simulate DROP + re-CREATE at the same prefix: wipe and start a new log.
	paths, err := store.List(cred, "tables/rw/")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if err := store.Delete(cred, p); err != nil {
			t.Fatal(err)
		}
	}
	log2, err := Create(store, cred, "tables/rw/", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log2.Append(cred, []*types.Batch{intBatch(schema, 42)}); err != nil {
		t.Fatal(err)
	}
	snap, err := shared.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.NumRecords() != 1 {
		t.Fatalf("stale cache served after log rewind: v=%d rows=%d", snap.Version, snap.NumRecords())
	}
}
