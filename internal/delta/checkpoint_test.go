package delta

import (
	"errors"
	"strings"
	"testing"

	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// TestCheckpointWrittenAtInterval asserts the committer materializes a
// checkpoint object plus the _last_checkpoint pointer exactly on interval
// boundaries, and never between them.
func TestCheckpointWrittenAtInterval(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/ckpt/", schema)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewRegistry()
	log.SetMetrics(m)
	log.SetCheckpointInterval(4)
	for i := int64(1); i <= 9; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []int64{4, 8} {
		if _, err := store.Get(cred, checkpointPath("tables/ckpt/", v)); err != nil {
			t.Errorf("checkpoint at version %d missing: %v", v, err)
		}
	}
	for _, v := range []int64{1, 2, 3, 5, 6, 7, 9} {
		if _, err := store.Get(cred, checkpointPath("tables/ckpt/", v)); err == nil {
			t.Errorf("unexpected checkpoint at non-boundary version %d", v)
		}
	}
	if _, err := store.Get(cred, lastCheckpointPath("tables/ckpt/")); err != nil {
		t.Errorf("_last_checkpoint pointer missing: %v", err)
	}
	if got := m.Counter("delta.checkpoint.writes").Value(); got != 2 {
		t.Errorf("delta.checkpoint.writes = %d, want 2", got)
	}
}

// TestColdReplayFromCheckpoint opens a fresh handle on a checkpointed log
// and asserts replay cost is O(interval): one checkpoint GET plus the tail
// entries behind it, with the saved work visible on the metrics registry.
func TestColdReplayFromCheckpoint(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/cold/", schema)
	if err != nil {
		t.Fatal(err)
	}
	log.SetCheckpointInterval(4)
	const commits = 10
	for i := int64(1); i <= commits; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Cold attach: a brand-new handle with no cached state.
	fresh := Attach(store, "tables/cold/")
	m := telemetry.NewRegistry()
	fresh.SetMetrics(m)
	snap, err := fresh.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != commits || snap.NumRecords() != commits {
		t.Fatalf("cold snapshot v=%d rows=%d, want v=%d rows=%d", snap.Version, snap.NumRecords(), commits, commits)
	}
	// Checkpoint at 8; entries 9 and 10 replay behind it.
	if got := m.Counter("snapshot.entries.replayed").Value(); got != 2 {
		t.Errorf("cold replay touched %d entries, want 2 (seeded from checkpoint 8)", got)
	}
	if got := m.Counter("snapshot.replay.from_checkpoint").Value(); got != 1 {
		t.Errorf("snapshot.replay.from_checkpoint = %d, want 1", got)
	}
	if got := m.Counter("delta.checkpoint.hits").Value(); got != 1 {
		t.Errorf("delta.checkpoint.hits = %d, want 1", got)
	}
	// Checkpoint-seeded replay must be content-identical to the writer's
	// incrementally-accumulated state.
	fullSnap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.ReadAll(store, cred)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fullSnap.ReadAll(store, cred)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("checkpoint-seeded read %d rows, incremental read %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Cols[0].Int64(i) != b.Cols[0].Int64(i) {
			t.Fatalf("row %d differs: %d vs %d", i, a.Cols[0].Int64(i), b.Cols[0].Int64(i))
		}
	}
}

// TestTimeTravelAcrossCheckpointBoundary travels to versions on both sides
// of a checkpoint: above it the replay seeds from the checkpoint, below it
// the replay falls back to genesis — both reconstruct exact row sets.
func TestTimeTravelAcrossCheckpointBoundary(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/ttc/", schema)
	if err != nil {
		t.Fatal(err)
	}
	log.SetCheckpointInterval(4)
	for i := int64(1); i <= 10; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, i)}); err != nil {
			t.Fatal(err)
		}
	}
	fresh := Attach(store, "tables/ttc/")
	m := telemetry.NewRegistry()
	fresh.SetMetrics(m)

	// Version 6 sits between checkpoints 4 and 8: seed at 4, replay 5..6.
	snap6, err := fresh.Snapshot(cred, 6)
	if err != nil {
		t.Fatal(err)
	}
	if snap6.Version != 6 || snap6.NumRecords() != 6 {
		t.Fatalf("v6 snapshot v=%d rows=%d", snap6.Version, snap6.NumRecords())
	}
	if got := m.Counter("snapshot.entries.replayed").Value(); got != 2 {
		t.Errorf("time travel to 6 replayed %d entries, want 2", got)
	}
	if got := m.Counter("snapshot.replay.from_checkpoint").Value(); got != 1 {
		t.Errorf("snapshot.replay.from_checkpoint = %d, want 1", got)
	}

	// Version 3 predates the first checkpoint: genesis replay of 0..3.
	snap3, err := fresh.Snapshot(cred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap3.NumRecords() != 3 {
		t.Fatalf("v3 rows = %d, want 3", snap3.NumRecords())
	}
	b, err := snap3.ReadAll(store, cred)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if b.Cols[0].Int64(i) != int64(i+1) {
			t.Fatalf("v3 row %d = %d, want %d", i, b.Cols[0].Int64(i), i+1)
		}
	}
}

// TestLegacyLogWithoutCheckpoints pins the fallback: a log written with
// checkpointing disabled has no checkpoint objects and a cold snapshot
// replays from genesis, correctly.
func TestLegacyLogWithoutCheckpoints(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/legacy/", schema)
	if err != nil {
		t.Fatal(err)
	}
	log.SetCheckpointInterval(0)
	for i := int64(1); i <= 6; i++ {
		if _, err := log.Append(cred, []*types.Batch{intBatch(schema, i)}); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := store.List(cred, "tables/legacy/_delta_log/")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "checkpoint") {
			t.Fatalf("checkpoint object %s written with interval 0", p)
		}
	}
	fresh := Attach(store, "tables/legacy/")
	m := telemetry.NewRegistry()
	fresh.SetMetrics(m)
	snap, err := fresh.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumRecords() != 6 {
		t.Fatalf("legacy cold snapshot rows = %d, want 6", snap.NumRecords())
	}
	if got := m.Counter("snapshot.entries.replayed").Value(); got != 7 {
		t.Errorf("legacy cold replay touched %d entries, want 7 (genesis replay)", got)
	}
	if got := m.Counter("snapshot.replay.from_checkpoint").Value(); got != 0 {
		t.Errorf("snapshot.replay.from_checkpoint = %d, want 0", got)
	}
}

// TestCheckpointPreservesDeletionVectors round-trips a deletion vector
// through a checkpoint: the cold reader must see the mask, not the
// pre-delete file.
func TestCheckpointPreservesDeletionVectors(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/ckptdv/", schema)
	if err != nil {
		t.Fatal(err)
	}
	log.SetCheckpointInterval(2)
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	path := snap.Files[0].Path
	// Version 2 sets the DV and lands exactly on the checkpoint boundary.
	if _, err := log.Mutate(cred, Mutation{
		Operation: "DELETE",
		SetDVs:    map[string]*DeletionVector{path: {Rows: []int64{1, 3}}},
		Expect:    []FileExpectation{{Path: path, DVCardinality: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(cred, checkpointPath("tables/ckptdv/", 2)); err != nil {
		t.Fatalf("checkpoint at DV commit missing: %v", err)
	}
	fresh := Attach(store, "tables/ckptdv/")
	m := telemetry.NewRegistry()
	fresh.SetMetrics(m)
	cold, err := fresh.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("snapshot.replay.from_checkpoint").Value(); got != 1 {
		t.Fatalf("cold snapshot not seeded from checkpoint (from_checkpoint=%d)", got)
	}
	if got := cold.Files[0].DV.Cardinality(); got != 2 {
		t.Fatalf("DV lost through checkpoint: cardinality %d, want 2", got)
	}
	if cold.NumRecords() != 2 {
		t.Fatalf("live records after checkpointed DV = %d, want 2", cold.NumRecords())
	}
}

// TestMutateExpectConflict pins the optimistic-concurrency contract: a
// mutation whose observed DV cardinality is stale fails with
// ErrConcurrentCommit instead of silently resurrecting or double-deleting.
func TestMutateExpectConflict(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/conflict/", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	path := snap.Files[0].Path

	// Writer A commits a DV computed against cardinality 0.
	if _, err := log.Mutate(cred, Mutation{
		Operation: "DELETE",
		SetDVs:    map[string]*DeletionVector{path: {Rows: []int64{0}}},
		Expect:    []FileExpectation{{Path: path, DVCardinality: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	// Writer B computed against the same pre-A snapshot; its expectation is
	// now stale and the commit must be refused.
	_, err = log.Mutate(cred, Mutation{
		Operation: "DELETE",
		SetDVs:    map[string]*DeletionVector{path: {Rows: []int64{2}}},
		Expect:    []FileExpectation{{Path: path, DVCardinality: 0}},
	})
	if !errors.Is(err, ErrConcurrentCommit) {
		t.Fatalf("stale expectation err = %v, want ErrConcurrentCommit", err)
	}
	// Removal of the file under an expectation conflicts the same way.
	_, err = log.Mutate(cred, Mutation{
		Operation:   "OPTIMIZE",
		RemovePaths: []string{path},
		Expect:      []FileExpectation{{Path: path, DVCardinality: 0}},
	})
	if !errors.Is(err, ErrConcurrentCommit) {
		t.Fatalf("remove with stale expectation err = %v, want ErrConcurrentCommit", err)
	}
	// Recomputing against the current snapshot succeeds.
	cur, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Mutate(cred, Mutation{
		Operation: "DELETE",
		SetDVs:    map[string]*DeletionVector{path: cur.Files[0].DV.Union([]int64{2})},
		Expect:    []FileExpectation{{Path: path, DVCardinality: cur.Files[0].DV.Cardinality()}},
	}); err != nil {
		t.Fatal(err)
	}
	final, _ := log.Snapshot(cred, -1)
	if final.NumRecords() != 2 {
		t.Fatalf("after converged deletes rows = %d, want 2", final.NumRecords())
	}
}

// TestVacuumSweepsTombstonesAndOrphans pins VACUUM's safety contract: it
// deletes tombstoned objects and version-gated orphans, leaves live files
// and future-versioned objects alone, and clears the tombstones in a
// VACUUM commit.
func TestVacuumSweepsTombstonesAndOrphans(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/vac/", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 3)}); err != nil {
		t.Fatal(err)
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	removed := snap.Files[0].Path
	kept := snap.Files[1].Path
	if _, err := log.Mutate(cred, Mutation{
		Operation:   "OPTIMIZE",
		RemovePaths: []string{removed},
		Expect:      []FileExpectation{{Path: removed, DVCardinality: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	// An orphan from a failed commit attempt (version below the snapshot)
	// and a possible in-flight writer's object (version above it).
	orphan := dataPath("tables/vac/", 2, 99)
	inflight := dataPath("tables/vac/", 999, 0)
	if err := store.Put(cred, orphan, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cred, inflight, []byte("junk")); err != nil {
		t.Fatal(err)
	}

	res, err := log.Vacuum(cred)
	if err != nil {
		t.Fatal(err)
	}
	if res.TombstonesDeleted != 1 || res.OrphansDeleted != 1 {
		t.Fatalf("vacuum deleted tombstones=%d orphans=%d, want 1/1", res.TombstonesDeleted, res.OrphansDeleted)
	}
	if _, err := store.Get(cred, removed); err == nil {
		t.Error("tombstoned object survived VACUUM")
	}
	if _, err := store.Get(cred, orphan); err == nil {
		t.Error("orphaned object survived VACUUM")
	}
	if _, err := store.Get(cred, inflight); err != nil {
		t.Error("VACUUM deleted an object that may belong to an in-flight commit")
	}
	if _, err := store.Get(cred, kept); err != nil {
		t.Errorf("live object deleted by VACUUM: %v", err)
	}
	after, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tombstones) != 0 {
		t.Errorf("tombstones not cleared by VACUUM commit: %v", after.Tombstones)
	}
	if after.NumRecords() != 1 {
		t.Errorf("rows after vacuum = %d, want 1", after.NumRecords())
	}
	// Idempotent: a second sweep finds nothing and commits nothing.
	res2, err := log.Vacuum(cred)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TombstonesDeleted != 0 || res2.OrphansDeleted != 0 || res2.Version != after.Version {
		t.Errorf("second vacuum = %+v, want no-op at version %d", res2, after.Version)
	}
}
