// Package delta implements a Delta-Lake-style table format over the object
// store: an ordered JSON transaction log plus immutable columnar data files.
// Commits use PutIfAbsent on the next log entry for optimistic concurrency,
// and snapshots support time travel (VERSION AS OF n).
package delta

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// Action is one entry in a commit file. Exactly one field is set.
type Action struct {
	MetaData   *MetaData   `json:"metaData,omitempty"`
	Add        *AddFile    `json:"add,omitempty"`
	Remove     *Remove     `json:"remove,omitempty"`
	CommitInfo *CommitInfo `json:"commitInfo,omitempty"`
}

// CommitInfo records provenance for one commit (DESCRIBE HISTORY).
type CommitInfo struct {
	TimestampMicros int64  `json:"timestamp"`
	Operation       string `json:"operation"`
}

// MetaData records the table schema.
type MetaData struct {
	SchemaFields []SchemaField `json:"schemaFields"`
}

// SchemaField is the JSON form of a types.Field.
type SchemaField struct {
	Name     string `json:"name"`
	Kind     uint8  `json:"kind"`
	Nullable bool   `json:"nullable"`
	Comment  string `json:"comment,omitempty"`
}

// AddFile registers a data file in the table.
type AddFile struct {
	Path       string `json:"path"`
	NumRecords int64  `json:"numRecords"`
	SizeBytes  int64  `json:"sizeBytes"`
}

// Remove unregisters a data file.
type Remove struct {
	Path string `json:"path"`
}

// Log is a handle to one table's transaction log.
type Log struct {
	store   *storage.Store
	prefix  string
	fileSeq atomic.Int64
	clock   func() time.Time
}

// ErrConcurrentCommit is returned when another writer won the commit race;
// callers should re-read the snapshot and retry.
var ErrConcurrentCommit = errors.New("delta: concurrent commit, retry")

// ErrVersionNotFound is returned for time travel to a missing version.
var ErrVersionNotFound = errors.New("delta: version not found")

func logPath(prefix string, version int64) string {
	return fmt.Sprintf("%s_delta_log/%020d.json", prefix, version)
}

// Create initializes a new table at prefix with the given schema, writing
// commit 0. The credential must grant read-write under prefix.
func Create(store *storage.Store, cred *storage.Credential, prefix string, schema *types.Schema) (*Log, error) {
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("delta: invalid schema: %w", err)
	}
	l := &Log{store: store, prefix: prefix, clock: time.Now}
	actions := []Action{
		{MetaData: schemaToMeta(schema)},
		{CommitInfo: &CommitInfo{TimestampMicros: time.Now().UnixMicro(), Operation: "CREATE TABLE"}},
	}
	data, err := encodeActions(actions)
	if err != nil {
		return nil, err
	}
	if err := store.PutIfAbsent(cred, logPath(prefix, 0), data); err != nil {
		if errors.Is(err, storage.ErrAlreadyExists) {
			return nil, fmt.Errorf("delta: table already exists at %s", prefix)
		}
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing table, verifying commit 0 exists.
func Open(store *storage.Store, cred *storage.Credential, prefix string) (*Log, error) {
	if _, err := store.Get(cred, logPath(prefix, 0)); err != nil {
		return nil, fmt.Errorf("delta: no table at %s: %w", prefix, err)
	}
	return &Log{store: store, prefix: prefix, clock: time.Now}, nil
}

// SetClock overrides the commit timestamp source (tests).
func (l *Log) SetClock(clock func() time.Time) { l.clock = clock }

// Prefix returns the table's storage prefix.
func (l *Log) Prefix() string { return l.prefix }

// Snapshot reconstructs table state at a version (-1 = latest).
func (l *Log) Snapshot(cred *storage.Credential, version int64) (*Snapshot, error) {
	snap := &Snapshot{Version: -1, prefix: l.prefix}
	live := map[string]AddFile{}
	var order []string
	for v := int64(0); ; v++ {
		if version >= 0 && v > version {
			break
		}
		data, err := l.store.Get(cred, logPath(l.prefix, v))
		if err != nil {
			if errors.Is(err, storage.ErrNotFound) {
				break
			}
			return nil, err
		}
		actions, err := decodeActions(data)
		if err != nil {
			return nil, fmt.Errorf("delta: corrupt commit %d: %w", v, err)
		}
		for _, a := range actions {
			switch {
			case a.CommitInfo != nil:
				// provenance only; History reads these
			case a.MetaData != nil:
				snap.Schema = metaToSchema(a.MetaData)
			case a.Add != nil:
				if _, seen := live[a.Add.Path]; !seen {
					order = append(order, a.Add.Path)
				}
				live[a.Add.Path] = *a.Add
			case a.Remove != nil:
				delete(live, a.Remove.Path)
			}
		}
		snap.Version = v
	}
	if snap.Version < 0 || (version >= 0 && snap.Version != version) {
		return nil, fmt.Errorf("%w: %d (latest %d)", ErrVersionNotFound, version, snap.Version)
	}
	for _, p := range order {
		if f, ok := live[p]; ok {
			snap.Files = append(snap.Files, f)
		}
	}
	return snap, nil
}

// Append commits new data files containing the given batches.
func (l *Log) Append(cred *storage.Credential, batches []*types.Batch) (int64, error) {
	return l.commit(cred, batches, false, "WRITE")
}

// Overwrite replaces the table's entire contents with the given batches
// (used by materialized-view refresh and INSERT OVERWRITE semantics).
func (l *Log) Overwrite(cred *storage.Credential, batches []*types.Batch) (int64, error) {
	return l.commit(cred, batches, true, "OVERWRITE")
}

func (l *Log) commit(cred *storage.Credential, batches []*types.Batch, overwrite bool, operation string) (int64, error) {
	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		snap, err := l.Snapshot(cred, -1)
		if err != nil {
			return 0, err
		}
		actions := []Action{{CommitInfo: &CommitInfo{TimestampMicros: l.clock().UnixMicro(), Operation: operation}}}
		if overwrite {
			for _, f := range snap.Files {
				f := f
				actions = append(actions, Action{Remove: &Remove{Path: f.Path}})
			}
		}
		for _, b := range batches {
			if b.NumRows() == 0 {
				continue
			}
			if !b.Schema.Equal(snap.Schema) {
				return 0, fmt.Errorf("delta: batch schema %s does not match table schema %s", b.Schema, snap.Schema)
			}
			data, err := arrowipc.EncodeBatch(b)
			if err != nil {
				return 0, err
			}
			path := fmt.Sprintf("%sdata/%06d-%06d.arrow", l.prefix, snap.Version+1, l.fileSeq.Add(1))
			if err := l.store.Put(cred, path, data); err != nil {
				return 0, err
			}
			actions = append(actions, Action{Add: &AddFile{
				Path: path, NumRecords: int64(b.NumRows()), SizeBytes: int64(len(data)),
			}})
		}
		payload, err := encodeActions(actions)
		if err != nil {
			return 0, err
		}
		next := snap.Version + 1
		err = l.store.PutIfAbsent(cred, logPath(l.prefix, next), payload)
		if err == nil {
			return next, nil
		}
		if !errors.Is(err, storage.ErrAlreadyExists) {
			return 0, err
		}
		// Lost the race: re-read and retry.
	}
	return 0, ErrConcurrentCommit
}

// HistoryEntry describes one commit for DESCRIBE HISTORY.
type HistoryEntry struct {
	Version   int64
	Timestamp time.Time
	Operation string
	NumFiles  int // files added in this commit
}

// History returns the commit log, newest first.
func (l *Log) History(cred *storage.Credential) ([]HistoryEntry, error) {
	var out []HistoryEntry
	for v := int64(0); ; v++ {
		data, err := l.store.Get(cred, logPath(l.prefix, v))
		if err != nil {
			if errors.Is(err, storage.ErrNotFound) {
				break
			}
			return nil, err
		}
		actions, err := decodeActions(data)
		if err != nil {
			return nil, err
		}
		entry := HistoryEntry{Version: v, Operation: "UNKNOWN"}
		for _, a := range actions {
			switch {
			case a.CommitInfo != nil:
				entry.Timestamp = time.UnixMicro(a.CommitInfo.TimestampMicros).UTC()
				entry.Operation = a.CommitInfo.Operation
			case a.Add != nil:
				entry.NumFiles++
			}
		}
		out = append(out, entry)
	}
	// Newest first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// Snapshot is an immutable view of the table at one version.
type Snapshot struct {
	Version int64
	Schema  *types.Schema
	Files   []AddFile
	prefix  string
}

// NumRecords returns the total row count across live files.
func (s *Snapshot) NumRecords() int64 {
	var n int64
	for _, f := range s.Files {
		n += f.NumRecords
	}
	return n
}

// Read streams the snapshot's data files as batches through fn. Returning a
// non-nil error from fn stops the scan.
func (s *Snapshot) Read(store *storage.Store, cred *storage.Credential, fn func(*types.Batch) error) error {
	for _, f := range s.Files {
		data, err := store.Get(cred, f.Path)
		if err != nil {
			return fmt.Errorf("delta: reading %s: %w", f.Path, err)
		}
		b, err := arrowipc.DecodeBatch(data)
		if err != nil {
			return fmt.Errorf("delta: decoding %s: %w", f.Path, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll materializes the snapshot into one batch.
func (s *Snapshot) ReadAll(store *storage.Store, cred *storage.Credential) (*types.Batch, error) {
	var batches []*types.Batch
	if err := s.Read(store, cred, func(b *types.Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		return nil, err
	}
	return arrowipc.ConcatBatches(s.Schema, batches)
}

func schemaToMeta(s *types.Schema) *MetaData {
	m := &MetaData{SchemaFields: make([]SchemaField, len(s.Fields))}
	for i, f := range s.Fields {
		m.SchemaFields[i] = SchemaField{Name: f.Name, Kind: uint8(f.Kind), Nullable: f.Nullable, Comment: f.Comment}
	}
	return m
}

func metaToSchema(m *MetaData) *types.Schema {
	s := &types.Schema{Fields: make([]types.Field, len(m.SchemaFields))}
	for i, f := range m.SchemaFields {
		s.Fields[i] = types.Field{Name: f.Name, Kind: types.Kind(f.Kind), Nullable: f.Nullable, Comment: f.Comment}
	}
	return s
}

func encodeActions(actions []Action) ([]byte, error) {
	var out []byte
	for _, a := range actions {
		line, err := json.Marshal(a)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

func decodeActions(data []byte) ([]Action, error) {
	var actions []Action
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var a Action
		if err := dec.Decode(&a); err != nil {
			return nil, err
		}
		actions = append(actions, a)
	}
	return actions, nil
}
