// Package delta implements a Delta-Lake-style table format over the object
// store: an ordered JSON transaction log plus immutable columnar data files.
// Commits use PutIfAbsent on the next log entry for optimistic concurrency,
// and snapshots support time travel (VERSION AS OF n).
//
// Snapshots are served through an incremental cache: the log tail is
// discovered with one credential-checked LIST (seeded from the cached
// version, so its cost is O(new entries) — see tailVersionLocked), the
// latest replay state advances by applying only new log entries, and a small
// LRU holds time-travel versions. Cold replay is bounded by checkpoints
// (checkpoint.go): every checkpointInterval commits the full replay state is
// materialized, so a fresh handle reads one checkpoint plus the log tail
// instead of replaying from genesis. The cache never weakens access control —
// every Snapshot call re-runs the caller's credential through the store
// before any cached state is returned.
package delta

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Action is one entry in a commit file. Exactly one field is set.
type Action struct {
	MetaData   *MetaData   `json:"metaData,omitempty"`
	Add        *AddFile    `json:"add,omitempty"`
	Remove     *Remove     `json:"remove,omitempty"`
	SetDV      *SetDV      `json:"setDV,omitempty"`
	Vacuum     *VacuumInfo `json:"vacuum,omitempty"`
	CommitInfo *CommitInfo `json:"commitInfo,omitempty"`
}

// CommitInfo records provenance for one commit (DESCRIBE HISTORY).
type CommitInfo struct {
	TimestampMicros int64  `json:"timestamp"`
	Operation       string `json:"operation"`
}

// MetaData records the table schema.
type MetaData struct {
	SchemaFields []SchemaField `json:"schemaFields"`
}

// SchemaField is the JSON form of a types.Field.
type SchemaField struct {
	Name     string `json:"name"`
	Kind     uint8  `json:"kind"`
	Nullable bool   `json:"nullable"`
	Comment  string `json:"comment,omitempty"`
}

// AddFile registers a data file in the table. Stats carries the file's
// zone-map column statistics; entries committed before statistics existed
// decode with Stats == nil and are never pruned. DV is the file's current
// deletion vector (nil = no rows deleted); after a deletion the recorded
// Stats are a conservative superset of the surviving rows' bounds, which
// keeps zone-map pruning sound (it may under-prune, never wrong).
type AddFile struct {
	Path       string          `json:"path"`
	NumRecords int64           `json:"numRecords"`
	SizeBytes  int64           `json:"sizeBytes"`
	Stats      *FileStats      `json:"stats,omitempty"`
	DV         *DeletionVector `json:"dv,omitempty"`
}

// LiveRecords returns the file's row count minus deleted rows.
func (f *AddFile) LiveRecords() int64 { return f.NumRecords - f.DV.Cardinality() }

// Remove unregisters a data file.
type Remove struct {
	Path string `json:"path"`
}

// SetDV replaces the deletion vector of a live data file. The DV is a full
// replacement (not a delta), so applying the action is idempotent and the
// file's logical content at any version is determined by that version alone.
type SetDV struct {
	Path string          `json:"path"`
	DV   *DeletionVector `json:"dv"`
}

// VacuumInfo clears removed-file tombstones after their data objects were
// physically deleted, so the tombstone list carried by checkpoints stays
// bounded.
type VacuumInfo struct {
	Paths []string `json:"paths"`
}

// timeTravelCacheSize bounds the per-log LRU of time-travel snapshots.
const timeTravelCacheSize = 8

// DefaultCheckpointInterval is how many commits elapse between checkpoint
// materializations. Small enough that high-churn tables (the system-table
// spooler appends a tiny file per flush) keep cold replay short; large
// enough that checkpoint writes stay a rounding error next to commits.
const DefaultCheckpointInterval = 32

// Log is a handle to one table's transaction log. A Log may be shared by
// many concurrent readers (the catalog caches one handle per table prefix):
// the snapshot cache inside it is guarded by mu, and every Snapshot call
// revalidates the caller's credential against the store before serving
// cached state.
type Log struct {
	store    *storage.Store
	prefix   string
	fileSeq  atomic.Int64
	interval atomic.Int64 // checkpoint interval; <= 0 disables checkpoints
	clock    func() time.Time

	mu     sync.Mutex
	latest *logState           // incremental replay state at the newest known version
	travel map[int64]*Snapshot // time-travel LRU, bounded by timeTravelCacheSize
	tOrder []int64             // travel eviction order, oldest first
	ckpts  []int64             // known checkpoint versions, sorted ascending

	// snapshot-cache counters (nil until SetMetrics; nil-safe no-ops).
	mHits       *telemetry.Counter
	mMisses     *telemetry.Counter
	mReplayed   *telemetry.Counter
	mCkptWrites *telemetry.Counter
	mCkptHits   *telemetry.Counter
	mFromCkpt   *telemetry.Counter
	mRetries    *telemetry.Counter
}

func newLog(store *storage.Store, prefix string) *Log {
	l := &Log{store: store, prefix: prefix, clock: time.Now}
	l.interval.Store(DefaultCheckpointInterval)
	return l
}

// SetMetrics publishes snapshot-cache and commit counters
// (snapshot.cache.hit, snapshot.cache.miss, snapshot.entries.replayed,
// snapshot.replay.from_checkpoint, delta.checkpoint.writes,
// delta.checkpoint.hits, delta.commit.retries) on a registry.
func (l *Log) SetMetrics(m *telemetry.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mHits = m.Counter("snapshot.cache.hit")
	l.mMisses = m.Counter("snapshot.cache.miss")
	l.mReplayed = m.Counter("snapshot.entries.replayed")
	l.mCkptWrites = m.Counter("delta.checkpoint.writes")
	l.mCkptHits = m.Counter("delta.checkpoint.hits")
	l.mFromCkpt = m.Counter("snapshot.replay.from_checkpoint")
	l.mRetries = m.Counter("delta.commit.retries")
}

// SetCheckpointInterval overrides how many commits elapse between checkpoint
// writes; n <= 0 disables checkpointing (legacy log behavior).
func (l *Log) SetCheckpointInterval(n int) { l.interval.Store(int64(n)) }

// logState is the mutable replay state behind the snapshot cache. It
// accumulates exactly what a full replay from version 0 would: the schema,
// the live file set, first-seen file order (so cached and uncached snapshots
// are byte-identical, including across Overwrite commits), and the removed
// but not yet vacuumed file tombstones.
type logState struct {
	version    int64
	schema     *types.Schema
	live       map[string]AddFile
	order      []string
	tombstones map[string]bool
}

func newLogState() *logState {
	return &logState{version: -1, live: map[string]AddFile{}, tombstones: map[string]bool{}}
}

func (st *logState) clone() *logState {
	cp := &logState{
		version:    st.version,
		schema:     st.schema,
		live:       make(map[string]AddFile, len(st.live)),
		order:      append([]string(nil), st.order...),
		tombstones: make(map[string]bool, len(st.tombstones)),
	}
	for k, v := range st.live {
		cp.live[k] = v
	}
	for k := range st.tombstones {
		cp.tombstones[k] = true
	}
	return cp
}

func (st *logState) apply(actions []Action) {
	for _, a := range actions {
		switch {
		case a.CommitInfo != nil:
			// provenance only; History reads these
		case a.MetaData != nil:
			st.schema = metaToSchema(a.MetaData)
		case a.Add != nil:
			if _, seen := st.live[a.Add.Path]; !seen {
				st.order = append(st.order, a.Add.Path)
			}
			st.live[a.Add.Path] = *a.Add
		case a.Remove != nil:
			delete(st.live, a.Remove.Path)
			st.tombstones[a.Remove.Path] = true
		case a.SetDV != nil:
			if f, ok := st.live[a.SetDV.Path]; ok {
				f.DV = a.SetDV.DV
				st.live[a.SetDV.Path] = f
			}
		case a.Vacuum != nil:
			for _, p := range a.Vacuum.Paths {
				delete(st.tombstones, p)
			}
		}
	}
}

func (st *logState) snapshot(prefix string) *Snapshot {
	snap := &Snapshot{Version: st.version, Schema: st.schema, prefix: prefix}
	for _, p := range st.order {
		if f, ok := st.live[p]; ok {
			snap.Files = append(snap.Files, f)
		}
	}
	for p := range st.tombstones {
		snap.Tombstones = append(snap.Tombstones, p)
	}
	sort.Strings(snap.Tombstones)
	return snap
}

// ErrConcurrentCommit is returned when another writer won the commit race;
// callers should re-read the snapshot and retry.
var ErrConcurrentCommit = errors.New("delta: concurrent commit, retry")

// ErrVersionNotFound is returned for time travel to a missing version.
var ErrVersionNotFound = errors.New("delta: version not found")

func logPath(prefix string, version int64) string {
	return fmt.Sprintf("%s_delta_log/%020d.json", prefix, version)
}

func dataPath(prefix string, version, seq int64) string {
	return fmt.Sprintf("%sdata/%06d-%06d.arrow", prefix, version, seq)
}

// dataFileVersion extracts the commit version embedded in a data file name
// ("<prefix>data/%06d-%06d.arrow"). VACUUM uses it to decide whether an
// unreferenced object can belong to an in-flight commit.
func dataFileVersion(prefix, path string) (int64, bool) {
	name, ok := strings.CutPrefix(path, prefix+"data/")
	if !ok {
		return 0, false
	}
	name, ok = strings.CutSuffix(name, ".arrow")
	if !ok || strings.Contains(name, "/") {
		return 0, false
	}
	verStr, _, ok := strings.Cut(name, "-")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(verStr, 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// Create initializes a new table at prefix with the given schema, writing
// commit 0. The credential must grant read-write under prefix.
func Create(store *storage.Store, cred *storage.Credential, prefix string, schema *types.Schema) (*Log, error) {
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("delta: invalid schema: %w", err)
	}
	l := newLog(store, prefix)
	actions := []Action{
		{MetaData: schemaToMeta(schema)},
		{CommitInfo: &CommitInfo{TimestampMicros: time.Now().UnixMicro(), Operation: "CREATE TABLE"}},
	}
	data, err := encodeActions(actions)
	if err != nil {
		return nil, err
	}
	if err := store.PutIfAbsent(cred, logPath(prefix, 0), data); err != nil {
		if errors.Is(err, storage.ErrAlreadyExists) {
			return nil, fmt.Errorf("delta: table already exists at %s", prefix)
		}
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing table, verifying commit 0 exists. The probe
// is a HEAD-style existence check — it no longer downloads and discards the
// full version-0 log entry.
func Open(store *storage.Store, cred *storage.Credential, prefix string) (*Log, error) {
	ok, err := store.Exists(cred, logPath(prefix, 0))
	if err != nil {
		return nil, fmt.Errorf("delta: no table at %s: %w", prefix, err)
	}
	if !ok {
		return nil, fmt.Errorf("delta: no table at %s: %w: %s", prefix, storage.ErrNotFound, logPath(prefix, 0))
	}
	return newLog(store, prefix), nil
}

// Attach returns a handle to the table at prefix without probing storage.
// Callers that already know the table exists (the catalog's cached per-table
// handles) use it to skip Open's existence check; Snapshot still verifies
// the caller's credential on every call.
func Attach(store *storage.Store, prefix string) *Log {
	return newLog(store, prefix)
}

// SetClock overrides the commit timestamp source (tests).
func (l *Log) SetClock(clock func() time.Time) { l.clock = clock }

// Prefix returns the table's storage prefix.
func (l *Log) Prefix() string { return l.prefix }

func (l *Log) logDir() string { return l.prefix + "_delta_log/" }

// parseLogVersion extracts the commit version from a log object path.
// Checkpoint files ("....checkpoint.json") and the _last_checkpoint pointer
// fail the numeric parse and are ignored here.
func parseLogVersion(dir, path string) (int64, bool) {
	name, ok := strings.CutPrefix(path, dir)
	if !ok {
		return 0, false
	}
	name, ok = strings.CutSuffix(name, ".json")
	if !ok || strings.Contains(name, "/") {
		return 0, false
	}
	v, err := strconv.ParseInt(name, 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// tailVersionLocked discovers the newest committed version (-1 for an empty
// log) with a single credential-checked LIST of the log directory. When the
// handle already holds replay state, the LIST is seeded to start after the
// cached version, so its cost is O(entries newer than the cache) instead of
// O(table age); the store credits the skipped objects to storage.list_saved.
// Checkpoint files discovered by either listing are remembered for
// time-travel seeding. Caller must hold l.mu.
func (l *Log) tailVersionLocked(cred *storage.Credential) (int64, error) {
	dir := l.logDir()
	seed := int64(-1)
	if l.latest != nil {
		seed = l.latest.version
	}
	var paths []string
	var err error
	if seed >= 0 {
		paths, err = l.store.ListAfter(cred, dir, logPath(l.prefix, seed))
	} else {
		paths, err = l.store.List(cred, dir)
	}
	if err != nil {
		return -1, err
	}
	tail := seed
	for _, p := range paths {
		if v, ok := parseLogVersion(dir, p); ok && v > tail {
			tail = v
		}
		if v, ok := parseCheckpointVersion(dir, p); ok {
			l.noteCheckpoint(v)
		}
	}
	if seed >= 0 && len(paths) == 0 {
		// Nothing after the seed. Either the table is unchanged or the log
		// was rewound under us (DROP + re-CREATE at the same prefix) and the
		// seeded listing skipped the new, lower-numbered entries. One HEAD
		// on the seed entry distinguishes the two.
		ok, err := l.store.Exists(cred, logPath(l.prefix, seed))
		if err != nil {
			return -1, err
		}
		if !ok {
			l.latest, l.travel, l.tOrder, l.ckpts = nil, nil, nil, nil
			return l.tailVersionLocked(cred)
		}
	}
	return tail, nil
}

// replayInto applies log entries [from, to] onto st. Every entry read is one
// storage GET; the count feeds the snapshot.entries.replayed metric.
func (l *Log) replayInto(cred *storage.Credential, st *logState, from, to int64) error {
	for v := from; v <= to; v++ {
		data, err := l.store.Get(cred, logPath(l.prefix, v))
		if err != nil {
			return err
		}
		actions, err := decodeActions(data)
		if err != nil {
			return fmt.Errorf("delta: corrupt commit %d: %w", v, err)
		}
		st.apply(actions)
		st.version = v
		l.mReplayed.Inc()
	}
	return nil
}

func (l *Log) travelGet(version int64) (*Snapshot, bool) {
	s, ok := l.travel[version]
	return s, ok
}

func (l *Log) travelPut(version int64, s *Snapshot) {
	if l.travel == nil {
		l.travel = map[int64]*Snapshot{}
	}
	if _, ok := l.travel[version]; ok {
		return
	}
	for len(l.travel) >= timeTravelCacheSize && len(l.tOrder) > 0 {
		delete(l.travel, l.tOrder[0])
		l.tOrder = l.tOrder[1:]
	}
	l.travel[version] = s
	l.tOrder = append(l.tOrder, version)
}

// Snapshot reconstructs table state at a version (-1 = latest).
//
// The common path is cache-driven: one seeded LIST finds the log tail, the
// cached latest state advances by replaying only entries newer than it (zero
// when the table hasn't changed), and time-travel versions are served from a
// bounded LRU. A cold handle (no cached state) seeds its replay from the
// newest checkpoint at or below the target version, so cold cost is one
// checkpoint GET plus the log tail rather than a genesis replay. The LIST
// runs the caller's full credential check on every call, so a snapshot
// cached under one principal never bypasses the access decision for another.
// GETs avoided by the cache or a checkpoint are credited to the
// storage.get_saved metric.
func (l *Log) Snapshot(cred *storage.Credential, version int64) (*Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(cred, version)
}

func (l *Log) snapshotLocked(cred *storage.Credential, version int64) (*Snapshot, error) {
	tail, err := l.tailVersionLocked(cred)
	if err != nil {
		return nil, err
	}
	if tail < 0 || (version >= 0 && version > tail) {
		return nil, fmt.Errorf("%w: %d (latest %d)", ErrVersionNotFound, version, tail)
	}
	// DROP + re-CREATE at the same prefix rewinds the log: discard state
	// replayed from the previous incarnation.
	if l.latest != nil && l.latest.version > tail {
		l.latest = nil
		l.travel = nil
		l.tOrder = nil
		l.ckpts = nil
	}
	target := tail
	if version >= 0 {
		target = version
	}
	if version < 0 || version == tail {
		st := l.latest
		from := int64(0)
		if st != nil {
			from = st.version + 1
			l.mHits.Inc()
			l.store.CreditSavedGets(from)
		} else {
			st = l.seedState(cred, target)
			from = st.version + 1
			l.mMisses.Inc()
		}
		if from <= target {
			st = st.clone()
			if err := l.replayInto(cred, st, from, target); err != nil {
				return nil, err
			}
			l.latest = st
		}
		return st.snapshot(l.prefix), nil
	}
	if s, ok := l.travelGet(version); ok {
		l.mHits.Inc()
		l.store.CreditSavedGets(version + 1)
		return s, nil
	}
	l.mMisses.Inc()
	st := l.seedState(cred, version)
	if err := l.replayInto(cred, st, st.version+1, version); err != nil {
		return nil, err
	}
	snap := st.snapshot(l.prefix)
	l.travelPut(version, snap)
	return snap, nil
}

// seedState returns the replay starting point for a cold reconstruction of
// maxVersion: the state loaded from the newest known checkpoint at or below
// it, or an empty genesis state when no usable checkpoint exists. A corrupt
// or missing checkpoint silently degrades to genesis replay — checkpoints
// are an optimization, never required for correctness.
func (l *Log) seedState(cred *storage.Credential, maxVersion int64) *logState {
	cv, ok := l.nearestCheckpoint(maxVersion)
	if !ok {
		return newLogState()
	}
	st, err := l.readCheckpoint(cred, cv)
	if err != nil {
		return newLogState()
	}
	l.mCkptHits.Inc()
	l.mFromCkpt.Inc()
	// One checkpoint GET replaced replaying entries 0..cv.
	l.store.CreditSavedGets(cv)
	return st
}

// Append commits new data files containing the given batches.
func (l *Log) Append(cred *storage.Credential, batches []*types.Batch) (int64, error) {
	return l.commit(cred, batches, false, "WRITE")
}

// Overwrite replaces the table's entire contents with the given batches
// (used by materialized-view refresh and INSERT OVERWRITE semantics). The
// replaced data files are tombstoned, not deleted — time travel still reads
// them until VACUUM sweeps.
func (l *Log) Overwrite(cred *storage.Credential, batches []*types.Batch) (int64, error) {
	return l.commit(cred, batches, true, "OVERWRITE")
}

// writeDataFiles encodes batches into data objects for a commit targeting
// version and returns their Add actions. Files written by a commit attempt
// that later loses its race are re-written by the retry and become orphans;
// VACUUM collects them (their embedded version is at or below the winning
// tail, so the sweep can prove they are not in-flight).
func (l *Log) writeDataFiles(cred *storage.Credential, version int64, schema *types.Schema, batches []*types.Batch) ([]Action, error) {
	var actions []Action
	for _, b := range batches {
		if b.NumRows() == 0 {
			continue
		}
		if !b.Schema.Equal(schema) {
			return nil, fmt.Errorf("delta: batch schema %s does not match table schema %s", b.Schema, schema)
		}
		data, err := arrowipc.EncodeBatch(b)
		if err != nil {
			return nil, err
		}
		path := dataPath(l.prefix, version, l.fileSeq.Add(1))
		if err := l.store.Put(cred, path, data); err != nil {
			return nil, err
		}
		actions = append(actions, Action{Add: &AddFile{
			Path: path, NumRecords: int64(b.NumRows()), SizeBytes: int64(len(data)),
			Stats: ComputeStats(b),
		}})
	}
	return actions, nil
}

func (l *Log) commit(cred *storage.Credential, batches []*types.Batch, overwrite bool, operation string) (int64, error) {
	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		snap, err := l.Snapshot(cred, -1)
		if err != nil {
			return 0, err
		}
		actions := []Action{{CommitInfo: &CommitInfo{TimestampMicros: l.clock().UnixMicro(), Operation: operation}}}
		if overwrite {
			for _, f := range snap.Files {
				f := f
				actions = append(actions, Action{Remove: &Remove{Path: f.Path}})
			}
		}
		adds, err := l.writeDataFiles(cred, snap.Version+1, snap.Schema, batches)
		if err != nil {
			return 0, err
		}
		actions = append(actions, adds...)
		payload, err := encodeActions(actions)
		if err != nil {
			return 0, err
		}
		next := snap.Version + 1
		err = l.store.PutIfAbsent(cred, logPath(l.prefix, next), payload)
		if err == nil {
			l.maybeCheckpoint(cred, next)
			return next, nil
		}
		if !errors.Is(err, storage.ErrAlreadyExists) {
			return 0, err
		}
		// Lost the race: re-read and retry.
		l.mRetries.Inc()
	}
	return 0, ErrConcurrentCommit
}

// RemoveFiles commits Remove actions unregistering the given data files
// (retention truncation). Paths not live in the snapshot at commit time are
// skipped; if nothing remains to remove, no commit is written and the
// current version is returned. After the commit lands the data objects are
// deleted from storage — a crash in between leaves unreferenced garbage,
// never a dangling log reference.
func (l *Log) RemoveFiles(cred *storage.Credential, paths []string, operation string) (int64, error) {
	want := make(map[string]bool, len(paths))
	for _, p := range paths {
		want[p] = true
	}
	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		snap, err := l.Snapshot(cred, -1)
		if err != nil {
			return 0, err
		}
		actions := []Action{{CommitInfo: &CommitInfo{TimestampMicros: l.clock().UnixMicro(), Operation: operation}}}
		var removed []string
		for _, f := range snap.Files {
			if want[f.Path] {
				actions = append(actions, Action{Remove: &Remove{Path: f.Path}})
				removed = append(removed, f.Path)
			}
		}
		if len(removed) == 0 {
			return snap.Version, nil
		}
		payload, err := encodeActions(actions)
		if err != nil {
			return 0, err
		}
		next := snap.Version + 1
		err = l.store.PutIfAbsent(cred, logPath(l.prefix, next), payload)
		if err == nil {
			for _, p := range removed {
				_ = l.store.Delete(cred, p) // best-effort garbage collection
			}
			l.maybeCheckpoint(cred, next)
			return next, nil
		}
		if !errors.Is(err, storage.ErrAlreadyExists) {
			return 0, err
		}
		// Lost the race: re-read and retry.
		l.mRetries.Inc()
	}
	return 0, ErrConcurrentCommit
}

// HistoryEntry describes one commit for DESCRIBE HISTORY.
type HistoryEntry struct {
	Version   int64
	Timestamp time.Time
	Operation string
	NumFiles  int // files added in this commit
}

// History returns the commit log, newest first. The tail is discovered via
// the same seeded LIST Snapshot uses, so repeated history calls on a warm
// handle cost O(new entries) listing work.
func (l *Log) History(cred *storage.Credential) ([]HistoryEntry, error) {
	l.mu.Lock()
	tail, err := l.tailVersionLocked(cred)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var out []HistoryEntry
	for v := int64(0); v <= tail; v++ {
		data, err := l.store.Get(cred, logPath(l.prefix, v))
		if err != nil {
			return nil, err
		}
		actions, err := decodeActions(data)
		if err != nil {
			return nil, err
		}
		entry := HistoryEntry{Version: v, Operation: "UNKNOWN"}
		for _, a := range actions {
			switch {
			case a.CommitInfo != nil:
				entry.Timestamp = time.UnixMicro(a.CommitInfo.TimestampMicros).UTC()
				entry.Operation = a.CommitInfo.Operation
			case a.Add != nil:
				entry.NumFiles++
			}
		}
		out = append(out, entry)
	}
	// Newest first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// Snapshot is an immutable view of the table at one version.
type Snapshot struct {
	Version int64
	Schema  *types.Schema
	Files   []AddFile
	// Tombstones lists data files removed at or before this version whose
	// objects have not been vacuumed yet (sorted). VACUUM deletes them.
	Tombstones []string
	prefix     string
}

// NumRecords returns the total live row count across files: physical rows
// minus rows masked by deletion vectors.
func (s *Snapshot) NumRecords() int64 {
	var n int64
	for _, f := range s.Files {
		n += f.LiveRecords()
	}
	return n
}

// Read streams the snapshot's data files as batches through fn, with rows
// masked by each file's deletion vector already removed. Returning a non-nil
// error from fn stops the scan.
func (s *Snapshot) Read(store *storage.Store, cred *storage.Credential, fn func(*types.Batch) error) error {
	for _, f := range s.Files {
		data, err := store.Get(cred, f.Path)
		if err != nil {
			return fmt.Errorf("delta: reading %s: %w", f.Path, err)
		}
		b, err := arrowipc.DecodeBatch(data)
		if err != nil {
			return fmt.Errorf("delta: decoding %s: %w", f.Path, err)
		}
		if f.DV.Cardinality() > 0 {
			b = b.Gather(f.DV.KeepIndexes(b.NumRows()))
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll materializes the snapshot into one batch.
func (s *Snapshot) ReadAll(store *storage.Store, cred *storage.Credential) (*types.Batch, error) {
	var batches []*types.Batch
	if err := s.Read(store, cred, func(b *types.Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		return nil, err
	}
	return arrowipc.ConcatBatches(s.Schema, batches)
}

func schemaToMeta(s *types.Schema) *MetaData {
	m := &MetaData{SchemaFields: make([]SchemaField, len(s.Fields))}
	for i, f := range s.Fields {
		m.SchemaFields[i] = SchemaField{Name: f.Name, Kind: uint8(f.Kind), Nullable: f.Nullable, Comment: f.Comment}
	}
	return m
}

func metaToSchema(m *MetaData) *types.Schema {
	s := &types.Schema{Fields: make([]types.Field, len(m.SchemaFields))}
	for i, f := range m.SchemaFields {
		s.Fields[i] = types.Field{Name: f.Name, Kind: types.Kind(f.Kind), Nullable: f.Nullable, Comment: f.Comment}
	}
	return s
}

func encodeActions(actions []Action) ([]byte, error) {
	var out []byte
	for _, a := range actions {
		line, err := json.Marshal(a)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

func decodeActions(data []byte) ([]Action, error) {
	var actions []Action
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var a Action
		if err := dec.Decode(&a); err != nil {
			return nil, err
		}
		actions = append(actions, a)
	}
	return actions, nil
}
