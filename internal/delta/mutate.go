package delta

import (
	"errors"
	"fmt"
	"sort"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// This file implements the generalized mutation commit used by DV-based DML
// (DELETE/UPDATE/MERGE) and OPTIMIZE compaction, plus the VACUUM sweep for
// unreferenced data objects.
//
// Isolation argument: a Mutation is computed from one snapshot and carries
// an expectation (per-file deletion-vector cardinality) for every file the
// computation depended on. The commit validates the expectations against a
// fresh snapshot inside the CAS loop: a lost PutIfAbsent race is retried
// internally only while the expectations still hold; any divergence (file
// removed, DV changed) surfaces as ErrConcurrentCommit so the caller
// recomputes from current state. Two concurrent DELETEs therefore converge
// to the union of their matches, and a compaction that raced a DELETE can
// never resurrect the deleted rows by swapping in a pre-delete copy.

// FileExpectation pins the deletion-vector cardinality a mutation observed
// for one file when it computed its changes.
type FileExpectation struct {
	Path          string
	DVCardinality int64
}

// Mutation is one atomic change set against a table: deletion-vector
// replacements, file removals, and new files, committed together in a
// single log entry.
type Mutation struct {
	// Operation names the commit for DESCRIBE HISTORY ("DELETE", "UPDATE",
	// "MERGE", "OPTIMIZE", ...).
	Operation string
	// SetDVs replaces the deletion vector of each named live file.
	SetDVs map[string]*DeletionVector
	// RemovePaths unregisters live files (atomic swap half of compaction).
	// Their data objects are tombstoned for VACUUM, not deleted — time
	// travel and in-flight readers still reference them.
	RemovePaths []string
	// AddBatches become new data files in the same commit.
	AddBatches []*types.Batch
	// Expect lists every file the mutation's computation read, with the DV
	// cardinality observed; the commit fails with ErrConcurrentCommit if any
	// has changed.
	Expect []FileExpectation
}

// Mutate commits a mutation. It returns the committed version, or the
// current version unchanged when the mutation is empty. ErrConcurrentCommit
// means an expectation no longer holds and the caller must recompute.
func (l *Log) Mutate(cred *storage.Credential, m Mutation) (int64, error) {
	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		snap, err := l.Snapshot(cred, -1)
		if err != nil {
			return 0, err
		}
		live := make(map[string]AddFile, len(snap.Files))
		for _, f := range snap.Files {
			live[f.Path] = f
		}
		for _, e := range m.Expect {
			f, ok := live[e.Path]
			if !ok {
				return 0, fmt.Errorf("%w: %s no longer live", ErrConcurrentCommit, e.Path)
			}
			if f.DV.Cardinality() != e.DVCardinality {
				return 0, fmt.Errorf("%w: deletion vector of %s changed", ErrConcurrentCommit, e.Path)
			}
		}
		actions := []Action{{CommitInfo: &CommitInfo{TimestampMicros: l.clock().UnixMicro(), Operation: m.Operation}}}
		dvPaths := make([]string, 0, len(m.SetDVs))
		for p := range m.SetDVs {
			dvPaths = append(dvPaths, p)
		}
		sort.Strings(dvPaths)
		for _, p := range dvPaths {
			if _, ok := live[p]; !ok {
				return 0, fmt.Errorf("%w: %s no longer live", ErrConcurrentCommit, p)
			}
			actions = append(actions, Action{SetDV: &SetDV{Path: p, DV: m.SetDVs[p]}})
		}
		for _, p := range m.RemovePaths {
			if _, ok := live[p]; !ok {
				return 0, fmt.Errorf("%w: %s no longer live", ErrConcurrentCommit, p)
			}
			actions = append(actions, Action{Remove: &Remove{Path: p}})
		}
		adds, err := l.writeDataFiles(cred, snap.Version+1, snap.Schema, m.AddBatches)
		if err != nil {
			return 0, err
		}
		actions = append(actions, adds...)
		if len(actions) == 1 {
			return snap.Version, nil // nothing to do
		}
		payload, err := encodeActions(actions)
		if err != nil {
			return 0, err
		}
		next := snap.Version + 1
		err = l.store.PutIfAbsent(cred, logPath(l.prefix, next), payload)
		if err == nil {
			l.maybeCheckpoint(cred, next)
			return next, nil
		}
		if !errors.Is(err, storage.ErrAlreadyExists) {
			return 0, err
		}
		// Lost the CAS race; expectations are revalidated on the next pass.
		l.mRetries.Inc()
	}
	return 0, ErrConcurrentCommit
}

// VacuumResult reports what a sweep deleted.
type VacuumResult struct {
	// TombstonesDeleted counts removed-file tombstones whose objects were
	// deleted (or found already gone) and cleared from the log state.
	TombstonesDeleted int
	// OrphansDeleted counts data objects referenced by no log entry —
	// leftovers of failed commit attempts — that were deleted.
	OrphansDeleted int
	// Version is the log version after the sweep (a VACUUM commit is written
	// when anything was cleaned).
	Version int64
}

// Vacuum deletes unreferenced data objects under the table prefix: the
// tombstones of removed files (Overwrite, OPTIMIZE, retention) and orphans
// from failed commit attempts. An orphan is only deleted when the commit
// version embedded in its name is at or below the swept snapshot's version —
// a file named for a future version may belong to an in-flight commit (and a
// losing commit attempt rewrites its data files on retry, so deleting a
// stale attempt's files is safe). After the sweep a VACUUM commit clears the
// tombstones from the log state so checkpoints stay bounded.
//
// Time travel to versions that referenced the swept files stops working —
// that is the documented VACUUM trade-off, identical to Delta Lake's.
func (l *Log) Vacuum(cred *storage.Credential) (VacuumResult, error) {
	var res VacuumResult
	snap, err := l.Snapshot(cred, -1)
	if err != nil {
		return res, err
	}
	res.Version = snap.Version
	live := make(map[string]bool, len(snap.Files))
	for _, f := range snap.Files {
		live[f.Path] = true
	}
	tomb := make(map[string]bool, len(snap.Tombstones))
	for _, p := range snap.Tombstones {
		tomb[p] = true
	}
	paths, err := l.store.List(cred, l.prefix+"data/")
	if err != nil {
		return res, err
	}
	for _, p := range paths {
		switch {
		case live[p]:
		case tomb[p]:
			if err := l.store.Delete(cred, p); err != nil {
				return res, err
			}
		default:
			if v, ok := dataFileVersion(l.prefix, p); ok && v <= snap.Version {
				if err := l.store.Delete(cred, p); err != nil {
					return res, err
				}
				res.OrphansDeleted++
			}
		}
	}
	res.TombstonesDeleted = len(snap.Tombstones)
	if res.TombstonesDeleted == 0 && res.OrphansDeleted == 0 {
		return res, nil
	}
	// Record the sweep and clear the swept tombstones. CAS-retried like any
	// commit; the Vacuum action names explicit paths, so tombstones added
	// concurrently survive untouched.
	const maxRetries = 16
	actions := []Action{
		{CommitInfo: &CommitInfo{TimestampMicros: l.clock().UnixMicro(), Operation: "VACUUM"}},
	}
	if res.TombstonesDeleted > 0 {
		actions = append(actions, Action{Vacuum: &VacuumInfo{Paths: snap.Tombstones}})
	}
	payload, err := encodeActions(actions)
	if err != nil {
		return res, err
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		cur, err := l.Snapshot(cred, -1)
		if err != nil {
			return res, err
		}
		next := cur.Version + 1
		err = l.store.PutIfAbsent(cred, logPath(l.prefix, next), payload)
		if err == nil {
			res.Version = next
			l.maybeCheckpoint(cred, next)
			return res, nil
		}
		if !errors.Is(err, storage.ErrAlreadyExists) {
			return res, err
		}
		l.mRetries.Inc()
	}
	return res, ErrConcurrentCommit
}
