package delta

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

func testEnv(t *testing.T) (*storage.Store, *storage.Credential) {
	t.Helper()
	store := storage.NewStore()
	cred := store.Signer().Issue("tables/", storage.ModeReadWrite, time.Hour)
	return store, &cred
}

func intBatch(schema *types.Schema, vals ...int64) *types.Batch {
	bb := types.NewBatchBuilder(schema, len(vals))
	for _, v := range vals {
		bb.AppendRow([]types.Value{types.Int64(v)})
	}
	return bb.Build()
}

func intSchema() *types.Schema {
	return types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64})
}

func TestCreateAppendRead(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, err := Create(store, cred, "tables/t1/", schema)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2, 3)})
	if err != nil || v1 != 1 {
		t.Fatalf("append v=%d err=%v", v1, err)
	}
	v2, err := log.Append(cred, []*types.Batch{intBatch(schema, 4)})
	if err != nil || v2 != 2 {
		t.Fatalf("append v=%d err=%v", v2, err)
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || snap.NumRecords() != 4 {
		t.Fatalf("snapshot v=%d rows=%d", snap.Version, snap.NumRecords())
	}
	all, err := snap.ReadAll(store, cred)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 4 || all.Cols[0].Int64(3) != 4 {
		t.Fatal("read content wrong")
	}
}

func TestTimeTravel(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, _ := Create(store, cred, "tables/tt/", schema)
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 2)}); err != nil {
		t.Fatal(err)
	}
	snap1, err := log.Snapshot(cred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap1.NumRecords() != 1 {
		t.Fatalf("v1 rows = %d", snap1.NumRecords())
	}
	b, _ := snap1.ReadAll(store, cred)
	if b.Cols[0].Int64(0) != 1 {
		t.Fatal("v1 content wrong")
	}
	if _, err := log.Snapshot(cred, 99); !errors.Is(err, ErrVersionNotFound) {
		t.Errorf("missing version err = %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, _ := Create(store, cred, "tables/ow/", schema)
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Overwrite(cred, []*types.Batch{intBatch(schema, 9)}); err != nil {
		t.Fatal(err)
	}
	snap, _ := log.Snapshot(cred, -1)
	if snap.NumRecords() != 1 {
		t.Fatalf("after overwrite rows = %d", snap.NumRecords())
	}
	b, _ := snap.ReadAll(store, cred)
	if b.Cols[0].Int64(0) != 9 {
		t.Fatal("overwrite content wrong")
	}
	// Old version still readable (time travel across overwrite).
	old, err := log.Snapshot(cred, 1)
	if err != nil || old.NumRecords() != 2 {
		t.Fatalf("old snapshot rows=%d err=%v", old.NumRecords(), err)
	}
}

func TestCreateTwiceFails(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	if _, err := Create(store, cred, "tables/dup/", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(store, cred, "tables/dup/", schema); err == nil {
		t.Error("expected duplicate-create error")
	}
}

func TestOpenMissingFails(t *testing.T) {
	store, cred := testEnv(t)
	if _, err := Open(store, cred, "tables/missing/"); err == nil {
		t.Error("expected open error")
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	store, cred := testEnv(t)
	log, _ := Create(store, cred, "tables/sm/", intSchema())
	other := types.NewSchema(types.Field{Name: "s", Kind: types.KindString})
	bb := types.NewBatchBuilder(other, 1)
	bb.AppendRow([]types.Value{types.String("x")})
	if _, err := log.Append(cred, []*types.Batch{bb.Build()}); err == nil {
		t.Error("expected schema mismatch error")
	}
}

func TestConcurrentAppends(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, _ := Create(store, cred, "tables/cc/", schema)
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each writer needs its own Log handle (like separate engines),
			// sharing only the store.
			l, err := Open(store, cred, "tables/cc/")
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = l.Append(cred, []*types.Batch{intBatch(schema, int64(i))})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	snap, err := log.Snapshot(cred, -1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != writers || snap.NumRecords() != writers {
		t.Fatalf("after race: v=%d rows=%d", snap.Version, snap.NumRecords())
	}
	// All writer values present exactly once.
	all, _ := snap.ReadAll(store, cred)
	seen := map[int64]int{}
	for i := 0; i < all.NumRows(); i++ {
		seen[all.Cols[0].Int64(i)]++
	}
	for i := int64(0); i < writers; i++ {
		if seen[i] != 1 {
			t.Errorf("value %d seen %d times", i, seen[i])
		}
	}
}

func TestEmptyBatchesSkipped(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, _ := Create(store, cred, "tables/e/", schema)
	v, err := log.Append(cred, []*types.Batch{intBatch(schema)})
	if err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	snap, _ := log.Snapshot(cred, -1)
	if len(snap.Files) != 0 {
		t.Error("empty batch should produce no files")
	}
}

func TestReadRequiresCredentialPrefix(t *testing.T) {
	store, cred := testEnv(t)
	schema := intSchema()
	log, _ := Create(store, cred, "tables/sec/", schema)
	if _, err := log.Append(cred, []*types.Batch{intBatch(schema, 1)}); err != nil {
		t.Fatal(err)
	}
	otherCred := store.Signer().Issue("tables/other/", storage.ModeRead, time.Hour)
	if _, err := log.Snapshot(&otherCred, -1); err == nil {
		t.Error("snapshot with wrong-prefix credential should fail")
	}
}
