package delta

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lakeguard/internal/storage"
)

// This file implements log checkpoints: every checkpointInterval commits the
// committer materializes the full replay state (schema, live files with
// statistics and deletion vectors, removed-file tombstones) as one JSON
// object next to the log, plus a small _last_checkpoint pointer. A cold
// snapshot then costs one checkpoint GET plus a replay of the entries behind
// it, instead of a replay from genesis; time travel seeds from the nearest
// checkpoint at or below the requested version. Checkpoints are pure
// acceleration: a log without them (or with a corrupt one) still replays
// from version 0, and replaying through a checkpointed range produces a
// byte-identical snapshot because the checkpoint records the same first-seen
// file order replay would accumulate.

// checkpointData is the JSON checkpoint object.
type checkpointData struct {
	Version int64     `json:"version"`
	Meta    *MetaData `json:"metaData"`
	// Adds lists the live files in first-seen order (replay order), each
	// carrying its statistics and deletion vector.
	Adds []AddFile `json:"adds"`
	// Tombstones lists removed-but-not-vacuumed data files, sorted.
	Tombstones []string `json:"tombstones,omitempty"`
}

// lastCheckpoint is the _last_checkpoint pointer object.
type lastCheckpoint struct {
	Version int64 `json:"version"`
}

func checkpointPath(prefix string, version int64) string {
	return fmt.Sprintf("%s_delta_log/%020d.checkpoint.json", prefix, version)
}

func lastCheckpointPath(prefix string) string {
	return prefix + "_delta_log/_last_checkpoint"
}

// parseCheckpointVersion extracts the version from a checkpoint object path.
func parseCheckpointVersion(dir, path string) (int64, bool) {
	name, ok := strings.CutPrefix(path, dir)
	if !ok {
		return 0, false
	}
	name, ok = strings.CutSuffix(name, ".checkpoint.json")
	if !ok || strings.Contains(name, "/") {
		return 0, false
	}
	v, err := strconv.ParseInt(name, 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// noteCheckpoint records a discovered checkpoint version. Caller holds l.mu.
func (l *Log) noteCheckpoint(v int64) {
	i := sort.Search(len(l.ckpts), func(i int) bool { return l.ckpts[i] >= v })
	if i < len(l.ckpts) && l.ckpts[i] == v {
		return
	}
	l.ckpts = append(l.ckpts, 0)
	copy(l.ckpts[i+1:], l.ckpts[i:])
	l.ckpts[i] = v
}

// nearestCheckpoint returns the newest known checkpoint version at or below
// maxVersion. Caller holds l.mu.
func (l *Log) nearestCheckpoint(maxVersion int64) (int64, bool) {
	i := sort.Search(len(l.ckpts), func(i int) bool { return l.ckpts[i] > maxVersion })
	if i == 0 {
		return 0, false
	}
	return l.ckpts[i-1], true
}

// readCheckpoint loads the checkpoint at version cv into a fresh logState.
func (l *Log) readCheckpoint(cred *storage.Credential, cv int64) (*logState, error) {
	data, err := l.store.Get(cred, checkpointPath(l.prefix, cv))
	if err != nil {
		return nil, err
	}
	var cp checkpointData
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("delta: corrupt checkpoint %d: %w", cv, err)
	}
	st := newLogState()
	st.version = cp.Version
	if cp.Meta != nil {
		st.schema = metaToSchema(cp.Meta)
	}
	for _, f := range cp.Adds {
		st.order = append(st.order, f.Path)
		st.live[f.Path] = f
	}
	for _, p := range cp.Tombstones {
		st.tombstones[p] = true
	}
	return st, nil
}

// checkpointFromState materializes st as a checkpoint object. The published
// logState is immutable (the cache replaces it wholesale), so reading it
// outside l.mu is safe once the pointer is captured.
func checkpointFromState(st *logState) *checkpointData {
	cp := &checkpointData{Version: st.version}
	if st.schema != nil {
		cp.Meta = schemaToMeta(st.schema)
	}
	for _, p := range st.order {
		if f, ok := st.live[p]; ok {
			cp.Adds = append(cp.Adds, f)
		}
	}
	for p := range st.tombstones {
		cp.Tombstones = append(cp.Tombstones, p)
	}
	sort.Strings(cp.Tombstones)
	return cp
}

// maybeCheckpoint writes a checkpoint after a successful commit at version
// committed when the version crosses the checkpoint interval. The write is
// best-effort and idempotent (plain Put — concurrent committers racing to
// the same boundary write identical state), and failure never fails the
// commit: the log alone is authoritative.
func (l *Log) maybeCheckpoint(cred *storage.Credential, committed int64) {
	iv := l.interval.Load()
	if iv <= 0 || committed <= 0 || committed%iv != 0 {
		return
	}
	// Advance the cached state through the just-committed entry, then
	// capture it. Concurrent commits may have advanced further; the
	// checkpoint is simply written at whatever boundary-or-later version
	// the state reached.
	if _, err := l.Snapshot(cred, -1); err != nil {
		return
	}
	l.mu.Lock()
	st := l.latest
	l.mu.Unlock()
	if st == nil || st.version < committed {
		return
	}
	cp := checkpointFromState(st)
	data, err := json.Marshal(cp)
	if err != nil {
		return
	}
	if err := l.store.Put(cred, checkpointPath(l.prefix, cp.Version), data); err != nil {
		return
	}
	ptr, err := json.Marshal(lastCheckpoint{Version: cp.Version})
	if err == nil {
		_ = l.store.Put(cred, lastCheckpointPath(l.prefix), ptr)
	}
	l.mCkptWrites.Inc()
	l.mu.Lock()
	l.noteCheckpoint(cp.Version)
	l.mu.Unlock()
}
