package delta

import "sort"

// DeletionVector marks rows of one data file as deleted without rewriting
// the file. Rows holds the deleted row ordinals (position within the file's
// batch), sorted ascending and deduplicated. The zero/nil vector deletes
// nothing; every method is nil-safe so call sites never branch on presence.
//
// The vector is stored inline in the log (JSON array of ordinals). That is
// the right trade-off at this engine's file sizes: a DV is never larger than
// the row count of one file, and keeping it in the log means a snapshot
// already carries everything a scan needs to mask rows — no extra GET.
type DeletionVector struct {
	Rows []int64 `json:"rows"`
}

// Cardinality returns the number of deleted rows.
func (dv *DeletionVector) Cardinality() int64 {
	if dv == nil {
		return 0
	}
	return int64(len(dv.Rows))
}

// Covers reports whether the vector deletes every row of a file with
// numRecords rows (the whole file is logically empty).
func (dv *DeletionVector) Covers(numRecords int64) bool {
	return numRecords > 0 && dv.Cardinality() >= numRecords
}

// Has reports whether row ordinal r is deleted (binary search).
func (dv *DeletionVector) Has(r int64) bool {
	if dv == nil || len(dv.Rows) == 0 {
		return false
	}
	i := sort.Search(len(dv.Rows), func(i int) bool { return dv.Rows[i] >= r })
	return i < len(dv.Rows) && dv.Rows[i] == r
}

// KeepIndexes returns the ordinals of the surviving rows of an n-row file,
// in order — the gather list a scan applies to mask deleted rows. Ordinals
// outside [0, n) are ignored (a corrupt vector can hide rows, never invent
// them).
func (dv *DeletionVector) KeepIndexes(n int) []int {
	keep := make([]int, 0, n-int(dv.Cardinality()))
	for i := 0; i < n; i++ {
		if !dv.Has(int64(i)) {
			keep = append(keep, i)
		}
	}
	return keep
}

// Union returns a new vector deleting everything dv deletes plus rows.
// The input slice may be unsorted and contain duplicates.
func (dv *DeletionVector) Union(rows []int64) *DeletionVector {
	seen := make(map[int64]bool, int(dv.Cardinality())+len(rows))
	var merged []int64
	add := func(r int64) {
		if !seen[r] {
			seen[r] = true
			merged = append(merged, r)
		}
	}
	if dv != nil {
		for _, r := range dv.Rows {
			add(r)
		}
	}
	for _, r := range rows {
		add(r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return &DeletionVector{Rows: merged}
}

// clone returns a deep copy (nil stays nil).
func (dv *DeletionVector) clone() *DeletionVector {
	if dv == nil {
		return nil
	}
	return &DeletionVector{Rows: append([]int64(nil), dv.Rows...)}
}
