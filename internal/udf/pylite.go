// Package udf implements PyLite, a small Python-flavored interpreted
// language for user-defined functions. User code in this system is *data*
// (source text), never linked Go code: the interpreter evaluates it with an
// explicit capability table and a fuel limit, so a sandbox can grant exactly
// the authority it wants (e.g. HTTP egress to allow-listed hosts) and nothing
// else. This reproduces the paper's setting where Python/Scala UDFs are
// untrusted and must be contained.
//
// Language summary:
//
//	x = expr                 assignment
//	return expr              return
//	if cond:                 indentation-based blocks, elif/else supported
//	for i in range(n):       counted loop
//	while cond:              loop
//	# comment
//
// Expressions: int/float/string/bool literals, arithmetic (+ - * / %),
// comparisons, and/or/not, conditional `a if c else b`, builtin calls
// (sha256, upper, lower, len, substr, concat, str, int, float, abs, min,
// max, http_get, ...).
package udf

import (
	"fmt"
	"strconv"
	"strings"
)

// node is a parsed expression.
type node interface{ exprNode() }

type litNode struct{ val value }
type nameNode struct{ name string }
type binNode struct {
	op   string
	l, r node
}
type unNode struct {
	op    string
	child node
}
type condNode struct{ cond, then, els node } // then if cond else els
type callNode struct {
	fn   string
	args []node
}

func (litNode) exprNode()  {}
func (nameNode) exprNode() {}
func (binNode) exprNode()  {}
func (unNode) exprNode()   {}
func (condNode) exprNode() {}
func (callNode) exprNode() {}

// stmt is a parsed statement.
type stmt interface{ stmtNode() }

type assignStmt struct {
	name string
	expr node
}
type returnStmt struct{ expr node }
type exprStmt struct{ expr node }
type ifStmt struct {
	cond node
	then []stmt
	els  []stmt // may be nil; elif chains nest here
}
type forStmt struct {
	varName string
	count   node
	body    []stmt
}
type whileStmt struct {
	cond node
	body []stmt
}

func (assignStmt) stmtNode() {}
func (returnStmt) stmtNode() {}
func (exprStmt) stmtNode()   {}
func (ifStmt) stmtNode()     {}
func (forStmt) stmtNode()    {}
func (whileStmt) stmtNode()  {}

// Program is compiled PyLite source.
type Program struct {
	body []stmt
	src  string
}

// Source returns the original source text.
func (p *Program) Source() string { return p.src }

// Compile parses PyLite source into a Program.
func Compile(src string) (*Program, error) {
	lines, err := logicalLines(src)
	if err != nil {
		return nil, err
	}
	body, rest, err := parseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("pylite: unexpected indentation at line %d", rest[0].num)
	}
	return &Program{body: body, src: src}, nil
}

type line struct {
	indent int
	text   string
	num    int
}

// logicalLines strips comments and blank lines, recording indentation.
func logicalLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		// Strip comments outside strings.
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t")
		content := strings.TrimLeft(trimmed, " \t")
		if content == "" {
			continue
		}
		indent := 0
		for _, c := range trimmed {
			if c == ' ' {
				indent++
			} else if c == '\t' {
				indent += 4
			} else {
				break
			}
		}
		out = append(out, line{indent: indent, text: content, num: i + 1})
	}
	return out, nil
}

func stripComment(s string) string {
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '#':
			return s[:i]
		}
	}
	return s
}

// parseBlock parses statements at exactly the given indent, returning the
// remaining lines (at lower indents).
func parseBlock(lines []line, indent int) ([]stmt, []line, error) {
	var out []stmt
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			return out, lines, nil
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("pylite: unexpected indent at line %d", l.num)
		}
		s, rest, err := parseStmt(lines, indent)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, s)
		lines = rest
	}
	return out, nil, nil
}

func parseStmt(lines []line, indent int) (stmt, []line, error) {
	l := lines[0]
	text := l.text
	switch {
	case strings.HasPrefix(text, "return ") || text == "return":
		exprText := strings.TrimSpace(strings.TrimPrefix(text, "return"))
		if exprText == "" {
			return returnStmt{expr: litNode{val: value{Null: true}}}, lines[1:], nil
		}
		e, err := parseExprText(exprText, l.num)
		if err != nil {
			return nil, nil, err
		}
		return returnStmt{expr: e}, lines[1:], nil
	case strings.HasPrefix(text, "if ") && strings.HasSuffix(text, ":"):
		return parseIf(lines, indent)
	case strings.HasPrefix(text, "for ") && strings.HasSuffix(text, ":"):
		header := strings.TrimSuffix(strings.TrimPrefix(text, "for "), ":")
		parts := strings.SplitN(header, " in ", 2)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("pylite: line %d: for requires 'for x in range(n):'", l.num)
		}
		varName := strings.TrimSpace(parts[0])
		rangeText := strings.TrimSpace(parts[1])
		if !strings.HasPrefix(rangeText, "range(") || !strings.HasSuffix(rangeText, ")") {
			return nil, nil, fmt.Errorf("pylite: line %d: only range(...) iteration is supported", l.num)
		}
		count, err := parseExprText(rangeText[len("range("):len(rangeText)-1], l.num)
		if err != nil {
			return nil, nil, err
		}
		body, rest, err := parseIndentedBlock(lines[1:], indent, l.num)
		if err != nil {
			return nil, nil, err
		}
		return forStmt{varName: varName, count: count, body: body}, rest, nil
	case strings.HasPrefix(text, "while ") && strings.HasSuffix(text, ":"):
		cond, err := parseExprText(strings.TrimSuffix(strings.TrimPrefix(text, "while "), ":"), l.num)
		if err != nil {
			return nil, nil, err
		}
		body, rest, err := parseIndentedBlock(lines[1:], indent, l.num)
		if err != nil {
			return nil, nil, err
		}
		return whileStmt{cond: cond, body: body}, rest, nil
	}
	// Assignment: name = expr (but not ==).
	if eq := findAssign(text); eq >= 0 {
		name := strings.TrimSpace(text[:eq])
		if isPyIdent(name) {
			e, err := parseExprText(text[eq+1:], l.num)
			if err != nil {
				return nil, nil, err
			}
			return assignStmt{name: name, expr: e}, lines[1:], nil
		}
	}
	// Bare expression statement.
	e, err := parseExprText(text, l.num)
	if err != nil {
		return nil, nil, err
	}
	return exprStmt{expr: e}, lines[1:], nil
}

func parseIf(lines []line, indent int) (stmt, []line, error) {
	l := lines[0]
	cond, err := parseExprText(strings.TrimSuffix(strings.TrimPrefix(l.text, "if "), ":"), l.num)
	if err != nil {
		return nil, nil, err
	}
	then, rest, err := parseIndentedBlock(lines[1:], indent, l.num)
	if err != nil {
		return nil, nil, err
	}
	out := ifStmt{cond: cond, then: then}
	if len(rest) > 0 && rest[0].indent == indent {
		switch {
		case strings.HasPrefix(rest[0].text, "elif ") && strings.HasSuffix(rest[0].text, ":"):
			// Treat elif as else { if ... }.
			sub := rest
			sub[0].text = "if " + strings.TrimPrefix(sub[0].text, "elif ")
			nested, rem, err := parseIf(sub, indent)
			if err != nil {
				return nil, nil, err
			}
			out.els = []stmt{nested}
			return out, rem, nil
		case rest[0].text == "else:":
			els, rem, err := parseIndentedBlock(rest[1:], indent, rest[0].num)
			if err != nil {
				return nil, nil, err
			}
			out.els = els
			return out, rem, nil
		}
	}
	return out, rest, nil
}

func parseIndentedBlock(lines []line, parentIndent, headerLine int) ([]stmt, []line, error) {
	if len(lines) == 0 || lines[0].indent <= parentIndent {
		return nil, nil, fmt.Errorf("pylite: line %d: expected an indented block", headerLine)
	}
	return parseBlock(lines, lines[0].indent)
}

// findAssign locates a top-level single '=' (not ==, <=, >=, !=) outside
// strings and parentheses.
func findAssign(s string) int {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case '=':
			if depth == 0 {
				prev := byte(0)
				if i > 0 {
					prev = s[i-1]
				}
				next := byte(0)
				if i+1 < len(s) {
					next = s[i+1]
				}
				if next != '=' && prev != '=' && prev != '<' && prev != '>' && prev != '!' {
					return i
				}
			}
		}
	}
	return -1
}

func isPyIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// --- expression tokenizer/parser ---

type ptoken struct {
	kind byte // 'n' number, 's' string, 'i' ident, 'o' operator
	text string
}

func tokenizeExpr(s string, lineNum int) ([]ptoken, error) {
	var toks []ptoken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i
			dot := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' && !dot) {
				if s[j] == '.' {
					dot = true
				}
				j++
			}
			toks = append(toks, ptoken{kind: 'n', text: s[i:j]})
			i = j
		case c == '\'' || c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(s) && s[j] != c {
				if s[j] == '\\' && j+1 < len(s) {
					j++
					switch s[j] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					default:
						b.WriteByte(s[j])
					}
				} else {
					b.WriteByte(s[j])
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("pylite: line %d: unterminated string", lineNum)
			}
			toks = append(toks, ptoken{kind: 's', text: b.String()})
			i = j + 1
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, ptoken{kind: 'i', text: s[i:j]})
			i = j
		default:
			matched := false
			for _, op := range []string{"==", "!=", "<=", ">=", "//", "**"} {
				if strings.HasPrefix(s[i:], op) {
					toks = append(toks, ptoken{kind: 'o', text: op})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%()<>,", rune(c)) {
				toks = append(toks, ptoken{kind: 'o', text: string(c)})
				i++
				continue
			}
			return nil, fmt.Errorf("pylite: line %d: unexpected character %q", lineNum, c)
		}
	}
	return toks, nil
}

type exprParser struct {
	toks []ptoken
	pos  int
	line int
}

func parseExprText(s string, lineNum int) (node, error) {
	toks, err := tokenizeExpr(s, lineNum)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, line: lineNum}
	e, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("pylite: line %d: unexpected token %q", lineNum, p.toks[p.pos].text)
	}
	return e, nil
}

func (p *exprParser) peek() (ptoken, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return ptoken{}, false
}

func (p *exprParser) acceptOp(op string) bool {
	if t, ok := p.peek(); ok && t.kind == 'o' && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) acceptIdent(name string) bool {
	if t, ok := p.peek(); ok && t.kind == 'i' && t.text == name {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) errf(format string, args ...any) error {
	return fmt.Errorf("pylite: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// parseTernary: or_expr ['if' or_expr 'else' ternary]   (Python order)
func (p *exprParser) parseTernary() (node, error) {
	then, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.acceptIdent("if") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("else") {
			return nil, p.errf("conditional expression requires else")
		}
		els, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return condNode{cond: cond, then: then, els: els}, nil
	}
	return then, nil
}

func (p *exprParser) parseOr() (node, error) {
	l, err := p.parseAndE()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		r, err := p.parseAndE()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseAndE() (node, error) {
	l, err := p.parseNotE()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		r, err := p.parseNotE()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseNotE() (node, error) {
	if p.acceptIdent("not") {
		c, err := p.parseNotE()
		if err != nil {
			return nil, err
		}
		return unNode{op: "not", child: c}, nil
	}
	return p.parseCmp()
}

func (p *exprParser) parseCmp() (node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binNode{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) parseAdd() (node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binNode{op: "+", l: l, r: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binNode{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseMul() (node, error) {
	l, err := p.parseUnaryE()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range []string{"*", "/", "//", "%"} {
			if p.acceptOp(op) {
				r, err := p.parseUnaryE()
				if err != nil {
					return nil, err
				}
				l = binNode{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *exprParser) parseUnaryE() (node, error) {
	if p.acceptOp("-") {
		c, err := p.parseUnaryE()
		if err != nil {
			return nil, err
		}
		return unNode{op: "-", child: c}, nil
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of expression")
	}
	switch t.kind {
	case 'n':
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return litNode{val: floatVal(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return litNode{val: intVal(i)}, nil
	case 's':
		p.pos++
		return litNode{val: strVal(t.text)}, nil
	case 'i':
		p.pos++
		switch t.text {
		case "True":
			return litNode{val: boolVal(true)}, nil
		case "False":
			return litNode{val: boolVal(false)}, nil
		case "None":
			return litNode{val: value{Null: true}}, nil
		}
		// Call?
		if p.acceptOp("(") {
			var args []node
			if !p.acceptOp(")") {
				for {
					a, err := p.parseTernary()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptOp(")") {
						break
					}
					if !p.acceptOp(",") {
						return nil, p.errf("expected , or ) in call")
					}
				}
			}
			return callNode{fn: t.text, args: args}, nil
		}
		return nameNode{name: t.text}, nil
	case 'o':
		if t.text == "(" {
			p.pos++
			e, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			if !p.acceptOp(")") {
				return nil, p.errf("missing )")
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
