package udf

import (
	"math"
	"testing"
)

func TestStringBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"return startswith('lakeguard', 'lake')", "true"},
		{"return startswith('lakeguard', 'guard')", "false"},
		{"return endswith('lakeguard', 'guard')", "true"},
		{"return contains('lakeguard', 'egu')", "true"},
		{"return contains('lakeguard', 'xyz')", "false"},
		{"return find('lakeguard', 'guard')", "4"},
		{"return find('lakeguard', 'zz')", "-1"},
		{"return replace('a-b-c', '-', '_')", "a_b_c"},
		{"return strip('  pad  ')", "pad"},
		{"return reversed('abc')", "cba"},
		{"return ord('A')", "65"},
		{"return chr(66)", "B"},
	}
	for _, c := range cases {
		v := run(t, c.src, nil)
		if got := v.String(); got != c.want {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	if v := run(t, "return pow(2, 10)", nil); v.F != 1024 {
		t.Errorf("pow = %v", v)
	}
	if v := run(t, "return exp(0)", nil); v.F != 1 {
		t.Errorf("exp = %v", v)
	}
	if v := run(t, "return log(exp(1.0))", nil); math.Abs(v.F-1) > 1e-12 {
		t.Errorf("log = %v", v)
	}
	for _, src := range []string{"return log(0)", "return log(-1)", "return ord('')"} {
		p, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Call(nil, nil); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestBuiltinsComposeInPrograms(t *testing.T) {
	src := `
s = strip('  lakeguard  ')
if startswith(s, 'lake') and endswith(s, 'guard'):
    return replace(s, 'lake', 'data')
return 'nope'
`
	if v := run(t, src, nil); v.S != "dataguard" {
		t.Errorf("got %q", v.S)
	}
}
