package udf

import (
	"testing"

	"lakeguard/internal/types"
)

func BenchmarkSimpleUDF(b *testing.B) {
	p, err := Compile("return a + b")
	if err != nil {
		b.Fatal(err)
	}
	args := map[string]value{"a": intVal(3), "b": intVal(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call(args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashUDF100Iterations(b *testing.B) {
	p, err := Compile("h = s\nfor i in range(100):\n    h = sha256(h)\nreturn h")
	if err != nil {
		b.Fatal(err)
	}
	args := map[string]value{"s": types.String("seed")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call(args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	src := `
total = 0.0
for i in range(10):
    if i % 2 == 0:
        total = total + i
    else:
        total = total - i
return total
`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
