package udf

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"lakeguard/internal/types"
)

// value is the interpreter's runtime value; PyLite reuses the engine's
// tagged-union scalar so results cross the sandbox boundary without
// conversion.
type value = types.Value

func intVal(i int64) value     { return types.Int64(i) }
func floatVal(f float64) value { return types.Float64(f) }
func strVal(s string) value    { return types.String(s) }
func boolVal(b bool) value     { return types.Bool(b) }

// Capabilities is the authority a sandbox grants to user code. A nil
// function means the capability is denied. This is the object-capability
// boundary: PyLite has no ambient access to anything not listed here.
type Capabilities struct {
	// HTTPGet performs an outbound request, if egress is permitted.
	HTTPGet func(url string) (string, error)
}

// Errors.
var (
	ErrFuelExhausted = errors.New("pylite: execution budget exhausted")
	ErrNoReturn      = errors.New("pylite: function did not return a value")
	ErrEgressDenied  = errors.New("pylite: network egress denied by sandbox policy")
)

// DefaultFuel bounds interpreter steps per invocation.
const DefaultFuel = 1_000_000

type interp struct {
	vars map[string]value
	caps *Capabilities
	fuel int
}

type returnSignal struct{ val value }

func (r returnSignal) Error() string { return "return" }

// Call executes the program with the given arguments and capabilities.
// The result is the value of the first `return`, or the value of the last
// bare expression statement if no return executes.
func (p *Program) Call(args map[string]value, caps *Capabilities) (value, error) {
	return p.CallFuel(args, caps, DefaultFuel)
}

// CallFuel is Call with an explicit step budget.
func (p *Program) CallFuel(args map[string]value, caps *Capabilities, fuel int) (value, error) {
	in := &interp{vars: make(map[string]value, len(args)+4), caps: caps, fuel: fuel}
	for k, v := range args {
		in.vars[k] = v
	}
	last := value{}
	hasLast := false
	for _, s := range p.body {
		v, isExpr, err := in.exec(s)
		var ret returnSignal
		if errors.As(err, &ret) {
			return ret.val, nil
		}
		if err != nil {
			return value{}, err
		}
		if isExpr {
			last, hasLast = v, true
		}
	}
	if hasLast {
		return last, nil
	}
	return value{}, ErrNoReturn
}

func (in *interp) step() error {
	in.fuel--
	if in.fuel < 0 {
		return ErrFuelExhausted
	}
	return nil
}

// exec runs one statement. The bool reports whether the statement was a bare
// expression (its value may become the implicit result).
func (in *interp) exec(s stmt) (value, bool, error) {
	if err := in.step(); err != nil {
		return value{}, false, err
	}
	switch t := s.(type) {
	case assignStmt:
		v, err := in.eval(t.expr)
		if err != nil {
			return value{}, false, err
		}
		in.vars[t.name] = v
		return value{}, false, nil
	case returnStmt:
		v, err := in.eval(t.expr)
		if err != nil {
			return value{}, false, err
		}
		return value{}, false, returnSignal{val: v}
	case exprStmt:
		v, err := in.eval(t.expr)
		return v, true, err
	case ifStmt:
		c, err := in.eval(t.cond)
		if err != nil {
			return value{}, false, err
		}
		body := t.then
		if !truthy(c) {
			body = t.els
		}
		return in.execBlock(body)
	case forStmt:
		n, err := in.eval(t.count)
		if err != nil {
			return value{}, false, err
		}
		count := n.I
		if n.Kind == types.KindFloat64 {
			count = int64(n.F)
		}
		var last value
		isLast := false
		for i := int64(0); i < count; i++ {
			in.vars[t.varName] = intVal(i)
			v, isExpr, err := in.execBlock(t.body)
			if err != nil {
				return value{}, false, err
			}
			if isExpr {
				last, isLast = v, true
			}
		}
		return last, isLast, nil
	case whileStmt:
		var last value
		isLast := false
		for {
			if err := in.step(); err != nil {
				return value{}, false, err
			}
			c, err := in.eval(t.cond)
			if err != nil {
				return value{}, false, err
			}
			if !truthy(c) {
				return last, isLast, nil
			}
			v, isExpr, err := in.execBlock(t.body)
			if err != nil {
				return value{}, false, err
			}
			if isExpr {
				last, isLast = v, true
			}
		}
	}
	return value{}, false, fmt.Errorf("pylite: unknown statement %T", s)
}

func (in *interp) execBlock(body []stmt) (value, bool, error) {
	var last value
	isLast := false
	for _, s := range body {
		v, isExpr, err := in.exec(s)
		if err != nil {
			return value{}, false, err
		}
		if isExpr {
			last, isLast = v, true
		}
	}
	return last, isLast, nil
}

func truthy(v value) bool {
	if v.Null {
		return false
	}
	switch v.Kind {
	case types.KindBool, types.KindInt64:
		return v.I != 0
	case types.KindFloat64:
		return v.F != 0
	case types.KindString, types.KindBinary:
		return v.S != ""
	}
	return false
}

func (in *interp) eval(n node) (value, error) {
	if err := in.step(); err != nil {
		return value{}, err
	}
	switch t := n.(type) {
	case litNode:
		return t.val, nil
	case nameNode:
		v, ok := in.vars[t.name]
		if !ok {
			return value{}, fmt.Errorf("pylite: name %q is not defined", t.name)
		}
		return v, nil
	case unNode:
		c, err := in.eval(t.child)
		if err != nil {
			return value{}, err
		}
		switch t.op {
		case "not":
			return boolVal(!truthy(c)), nil
		case "-":
			switch c.Kind {
			case types.KindInt64:
				return intVal(-c.I), nil
			case types.KindFloat64:
				return floatVal(-c.F), nil
			}
			return value{}, fmt.Errorf("pylite: cannot negate %s", c.Kind)
		}
	case condNode:
		c, err := in.eval(t.cond)
		if err != nil {
			return value{}, err
		}
		if truthy(c) {
			return in.eval(t.then)
		}
		return in.eval(t.els)
	case binNode:
		return in.evalBin(t)
	case callNode:
		return in.evalCall(t)
	}
	return value{}, fmt.Errorf("pylite: unknown expression %T", n)
}

func (in *interp) evalBin(t binNode) (value, error) {
	// Short-circuit logic.
	if t.op == "and" || t.op == "or" {
		l, err := in.eval(t.l)
		if err != nil {
			return value{}, err
		}
		if t.op == "and" && !truthy(l) {
			return l, nil
		}
		if t.op == "or" && truthy(l) {
			return l, nil
		}
		return in.eval(t.r)
	}
	l, err := in.eval(t.l)
	if err != nil {
		return value{}, err
	}
	r, err := in.eval(t.r)
	if err != nil {
		return value{}, err
	}
	switch t.op {
	case "+":
		if l.Kind == types.KindString || r.Kind == types.KindString {
			return strVal(toStr(l) + toStr(r)), nil
		}
		return arith(l, r, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
	case "-":
		return arith(l, r, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b })
	case "*":
		if l.Kind == types.KindString && r.Kind == types.KindInt64 {
			return strVal(strings.Repeat(l.S, int(max64(0, r.I)))), nil
		}
		return arith(l, r, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
	case "/":
		lf, rf := toFloat(l), toFloat(r)
		if rf == 0 {
			return value{}, errors.New("pylite: division by zero")
		}
		return floatVal(lf / rf), nil
	case "//":
		if l.Kind == types.KindInt64 && r.Kind == types.KindInt64 {
			if r.I == 0 {
				return value{}, errors.New("pylite: division by zero")
			}
			return intVal(floorDiv(l.I, r.I)), nil
		}
		rf := toFloat(r)
		if rf == 0 {
			return value{}, errors.New("pylite: division by zero")
		}
		return floatVal(math.Floor(toFloat(l) / rf)), nil
	case "%":
		if l.Kind == types.KindInt64 && r.Kind == types.KindInt64 {
			if r.I == 0 {
				return value{}, errors.New("pylite: modulo by zero")
			}
			return intVal(pyMod(l.I, r.I)), nil
		}
		rf := toFloat(r)
		if rf == 0 {
			return value{}, errors.New("pylite: modulo by zero")
		}
		return floatVal(math.Mod(toFloat(l), rf)), nil
	case "==", "!=", "<", "<=", ">", ">=":
		cmp, ok := compareVals(l, r)
		if !ok {
			if t.op == "==" {
				return boolVal(false), nil
			}
			if t.op == "!=" {
				return boolVal(true), nil
			}
			return value{}, fmt.Errorf("pylite: cannot compare %s and %s", l.Kind, r.Kind)
		}
		switch t.op {
		case "==":
			return boolVal(cmp == 0), nil
		case "!=":
			return boolVal(cmp != 0), nil
		case "<":
			return boolVal(cmp < 0), nil
		case "<=":
			return boolVal(cmp <= 0), nil
		case ">":
			return boolVal(cmp > 0), nil
		case ">=":
			return boolVal(cmp >= 0), nil
		}
	}
	return value{}, fmt.Errorf("pylite: unknown operator %q", t.op)
}

func compareVals(l, r value) (int, bool) {
	if l.Null || r.Null {
		if l.Null && r.Null {
			return 0, true
		}
		return 0, false
	}
	return l.Compare(r)
}

func arith(l, r value, fi func(a, b int64) int64, ff func(a, b float64) float64) (value, error) {
	if l.Kind == types.KindInt64 && r.Kind == types.KindInt64 {
		return intVal(fi(l.I, r.I)), nil
	}
	if l.Kind.Numeric() && r.Kind.Numeric() || l.Kind == types.KindBool || r.Kind == types.KindBool {
		return floatVal(ff(toFloat(l), toFloat(r))), nil
	}
	return value{}, fmt.Errorf("pylite: unsupported operands %s and %s", l.Kind, r.Kind)
}

func toFloat(v value) float64 {
	switch v.Kind {
	case types.KindInt64, types.KindBool:
		return float64(v.I)
	case types.KindFloat64:
		return v.F
	}
	return 0
}

func toStr(v value) string {
	if v.Null {
		return "None"
	}
	switch v.Kind {
	case types.KindString, types.KindBinary:
		return v.S
	case types.KindBool:
		if v.I != 0 {
			return "True"
		}
		return "False"
	}
	return v.String()
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pyMod(a, b int64) int64 {
	m := a % b
	if m != 0 && ((a < 0) != (b < 0)) {
		m += b
	}
	return m
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (in *interp) evalCall(t callNode) (value, error) {
	args := make([]value, len(t.args))
	for i, a := range t.args {
		v, err := in.eval(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("pylite: %s expects %d arguments, got %d", t.fn, n, len(args))
		}
		return nil
	}
	switch t.fn {
	case "sha256":
		if err := need(1); err != nil {
			return value{}, err
		}
		sum := sha256.Sum256([]byte(toStr(args[0])))
		return strVal(hex.EncodeToString(sum[:])), nil
	case "len":
		if err := need(1); err != nil {
			return value{}, err
		}
		return intVal(int64(len(toStr(args[0])))), nil
	case "upper":
		if err := need(1); err != nil {
			return value{}, err
		}
		return strVal(strings.ToUpper(toStr(args[0]))), nil
	case "lower":
		if err := need(1); err != nil {
			return value{}, err
		}
		return strVal(strings.ToLower(toStr(args[0]))), nil
	case "substr":
		if err := need(3); err != nil {
			return value{}, err
		}
		s := toStr(args[0])
		lo, hi := int(args[1].I), int(args[2].I)
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		if lo > hi {
			lo = hi
		}
		return strVal(s[lo:hi]), nil
	case "str":
		if err := need(1); err != nil {
			return value{}, err
		}
		return strVal(toStr(args[0])), nil
	case "int":
		if err := need(1); err != nil {
			return value{}, err
		}
		switch args[0].Kind {
		case types.KindFloat64:
			return intVal(int64(args[0].F)), nil
		case types.KindInt64, types.KindBool:
			return intVal(args[0].I), nil
		case types.KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(args[0].S), 10, 64)
			if err != nil {
				return value{}, fmt.Errorf("pylite: int(%q): invalid literal", args[0].S)
			}
			return intVal(i), nil
		}
		return value{}, fmt.Errorf("pylite: cannot int() a %s", args[0].Kind)
	case "float":
		if err := need(1); err != nil {
			return value{}, err
		}
		switch args[0].Kind {
		case types.KindFloat64:
			return args[0], nil
		case types.KindInt64, types.KindBool:
			return floatVal(float64(args[0].I)), nil
		case types.KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(args[0].S), 64)
			if err != nil {
				return value{}, fmt.Errorf("pylite: float(%q): invalid literal", args[0].S)
			}
			return floatVal(f), nil
		}
		return value{}, fmt.Errorf("pylite: cannot float() a %s", args[0].Kind)
	case "abs":
		if err := need(1); err != nil {
			return value{}, err
		}
		switch args[0].Kind {
		case types.KindInt64:
			if args[0].I < 0 {
				return intVal(-args[0].I), nil
			}
			return args[0], nil
		case types.KindFloat64:
			return floatVal(math.Abs(args[0].F)), nil
		}
		return value{}, fmt.Errorf("pylite: cannot abs() a %s", args[0].Kind)
	case "min", "max":
		if len(args) < 2 {
			return value{}, fmt.Errorf("pylite: %s requires at least 2 arguments", t.fn)
		}
		best := args[0]
		for _, a := range args[1:] {
			c, ok := compareVals(a, best)
			if !ok {
				return value{}, fmt.Errorf("pylite: cannot compare %s and %s", a.Kind, best.Kind)
			}
			if (t.fn == "min" && c < 0) || (t.fn == "max" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "round":
		if err := need(1); err != nil {
			return value{}, err
		}
		return floatVal(math.Round(toFloat(args[0]))), nil
	case "sqrt":
		if err := need(1); err != nil {
			return value{}, err
		}
		f := toFloat(args[0])
		if f < 0 {
			return value{}, errors.New("pylite: sqrt of negative")
		}
		return floatVal(math.Sqrt(f)), nil
	case "http_get":
		if err := need(1); err != nil {
			return value{}, err
		}
		if in.caps == nil || in.caps.HTTPGet == nil {
			return value{}, ErrEgressDenied
		}
		body, err := in.caps.HTTPGet(toStr(args[0]))
		if err != nil {
			return value{}, fmt.Errorf("pylite: http_get: %w", err)
		}
		return strVal(body), nil
	case "is_null":
		if err := need(1); err != nil {
			return value{}, err
		}
		return boolVal(args[0].Null), nil
	case "startswith":
		if err := need(2); err != nil {
			return value{}, err
		}
		return boolVal(strings.HasPrefix(toStr(args[0]), toStr(args[1]))), nil
	case "endswith":
		if err := need(2); err != nil {
			return value{}, err
		}
		return boolVal(strings.HasSuffix(toStr(args[0]), toStr(args[1]))), nil
	case "contains":
		if err := need(2); err != nil {
			return value{}, err
		}
		return boolVal(strings.Contains(toStr(args[0]), toStr(args[1]))), nil
	case "find":
		if err := need(2); err != nil {
			return value{}, err
		}
		return intVal(int64(strings.Index(toStr(args[0]), toStr(args[1])))), nil
	case "replace":
		if err := need(3); err != nil {
			return value{}, err
		}
		return strVal(strings.ReplaceAll(toStr(args[0]), toStr(args[1]), toStr(args[2]))), nil
	case "strip":
		if err := need(1); err != nil {
			return value{}, err
		}
		return strVal(strings.TrimSpace(toStr(args[0]))), nil
	case "reversed":
		if err := need(1); err != nil {
			return value{}, err
		}
		s := toStr(args[0])
		b := []byte(s)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return strVal(string(b)), nil
	case "ord":
		if err := need(1); err != nil {
			return value{}, err
		}
		s := toStr(args[0])
		if len(s) == 0 {
			return value{}, errors.New("pylite: ord of empty string")
		}
		return intVal(int64(s[0])), nil
	case "chr":
		if err := need(1); err != nil {
			return value{}, err
		}
		return strVal(string(rune(args[0].I))), nil
	case "pow":
		if err := need(2); err != nil {
			return value{}, err
		}
		return floatVal(math.Pow(toFloat(args[0]), toFloat(args[1]))), nil
	case "log":
		if err := need(1); err != nil {
			return value{}, err
		}
		f := toFloat(args[0])
		if f <= 0 {
			return value{}, errors.New("pylite: log of non-positive value")
		}
		return floatVal(math.Log(f)), nil
	case "exp":
		if err := need(1); err != nil {
			return value{}, err
		}
		return floatVal(math.Exp(toFloat(args[0]))), nil
	}
	return value{}, fmt.Errorf("pylite: unknown function %q", t.fn)
}
