package udf

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"testing"

	"lakeguard/internal/types"
)

func run(t *testing.T, src string, args map[string]value) value {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := p.Call(args, nil)
	if err != nil {
		t.Fatalf("Call(%q): %v", src, err)
	}
	return v
}

func TestReturnSum(t *testing.T) {
	v := run(t, "return a + b", map[string]value{"a": intVal(2), "b": intVal(3)})
	if v.I != 5 {
		t.Errorf("got %v", v)
	}
}

func TestImplicitLastExpression(t *testing.T) {
	v := run(t, "x = 10\nx * 2", nil)
	if v.I != 20 {
		t.Errorf("got %v", v)
	}
}

func TestNoReturn(t *testing.T) {
	p, _ := Compile("x = 1")
	if _, err := p.Call(nil, nil); !errors.Is(err, ErrNoReturn) {
		t.Errorf("err = %v", err)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"return 7 // 2", "3"},
		{"return -7 // 2", "-4"}, // Python floor division
		{"return -7 % 3", "2"},   // Python modulo
		{"return 7 / 2", "3.5"},  // true division
		{"return 2 + 3 * 4", "14"},
		{"return (2 + 3) * 4", "20"},
		{"return 1.5 + 1", "2.5"},
		{"return -abs(-3)", "-3"},
		{"return 'ab' + 'cd'", "abcd"},
		{"return 'ab' * 3", "ababab"},
		{"return 'n=' + str(42)", "n=42"},
		{"return min(3, 1, 2)", "1"},
		{"return max(3, 1, 2)", "3"},
		{"return int('17')", "17"},
		{"return float('2.5') * 2", "5"},
		{"return len('hello')", "5"},
		{"return upper('hi')", "HI"},
		{"return lower('HI')", "hi"},
		{"return substr('hello', 1, 3)", "el"},
		{"return round(2.6)", "3"},
		{"return sqrt(9.0)", "3"},
		{"return 1 if 2 > 1 else 0", "1"},
		{"return 'x' if False else 'y'", "y"},
		{"return True and False", "False"},
		{"return True or False", "True"},
		{"return not True", "false"}, // engine bool rendering
		{"return 1 == 1.0", "true"},
		{"return 'a' != 'b'", "true"},
	}
	for _, c := range cases {
		v := run(t, c.src, nil)
		got := v.String()
		// PyLite booleans are engine booleans; accept canonical forms.
		if got != c.want && !(c.want == "False" && got == "false") && !(c.want == "True" && got == "true") {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestSha256MatchesGo(t *testing.T) {
	v := run(t, "return sha256(s)", map[string]value{"s": strVal("lakeguard")})
	want := sha256.Sum256([]byte("lakeguard"))
	if v.S != hex.EncodeToString(want[:]) {
		t.Errorf("sha mismatch: %s", v.S)
	}
}

func TestHashLoop100Iterations(t *testing.T) {
	// The paper's "100x SHA256" benchmark kernel.
	src := `
h = s
for i in range(100):
    h = sha256(h)
return h
`
	v := run(t, src, map[string]value{"s": strVal("seed")})
	h := "seed"
	for i := 0; i < 100; i++ {
		sum := sha256.Sum256([]byte(h))
		h = hex.EncodeToString(sum[:])
	}
	if v.S != h {
		t.Errorf("loop hash mismatch")
	}
}

func TestIfElifElse(t *testing.T) {
	src := `
if x > 10:
    return 'big'
elif x > 5:
    return 'mid'
else:
    return 'small'
`
	cases := map[int64]string{20: "big", 7: "mid", 1: "small"}
	for x, want := range cases {
		v := run(t, src, map[string]value{"x": intVal(x)})
		if v.S != want {
			t.Errorf("x=%d: got %q want %q", x, v.S, want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
total = 0
n = 1
while n <= 10:
    total = total + n
    n = n + 1
return total
`
	v := run(t, src, nil)
	if v.I != 55 {
		t.Errorf("got %v", v)
	}
}

func TestNestedBlocks(t *testing.T) {
	src := `
count = 0
for i in range(3):
    for j in range(4):
        if (i + j) % 2 == 0:
            count = count + 1
return count
`
	v := run(t, src, nil)
	if v.I != 6 {
		t.Errorf("got %v", v)
	}
}

func TestFuelLimitStopsInfiniteLoop(t *testing.T) {
	p, err := Compile("while True:\n    x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CallFuel(nil, nil, 10_000); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v", err)
	}
}

func TestEgressCapability(t *testing.T) {
	p, _ := Compile("return http_get('http://example.aqi.com/zip/94105')")
	// Denied without capability.
	if _, err := p.Call(nil, nil); !errors.Is(err, ErrEgressDenied) {
		t.Errorf("err = %v", err)
	}
	if _, err := p.Call(nil, &Capabilities{}); !errors.Is(err, ErrEgressDenied) {
		t.Errorf("empty caps err = %v", err)
	}
	// Granted capability is invoked with the URL.
	var gotURL string
	caps := &Capabilities{HTTPGet: func(url string) (string, error) {
		gotURL = url
		return `{"yesterday": 41.5}`, nil
	}}
	v, err := p.Call(nil, caps)
	if err != nil {
		t.Fatal(err)
	}
	if gotURL != "http://example.aqi.com/zip/94105" || !strings.Contains(v.S, "41.5") {
		t.Errorf("got url=%q v=%q", gotURL, v.S)
	}
}

func TestNoAmbientAuthority(t *testing.T) {
	// There is simply no builtin to reach the filesystem, environment, or
	// engine state; unknown names and functions fail closed.
	for _, src := range []string{
		"return open('/etc/passwd')",
		"return os",
		"return __import__('os')",
		"return credentials",
	} {
		p, err := Compile(src)
		if err != nil {
			continue // rejected at parse is fine too
		}
		if _, err := p.Call(nil, nil); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		"return 1 / 0",
		"return 1 // 0",
		"return 1 % 0",
		"return undefined_name",
		"return int('abc')",
		"return sqrt(-1.0)",
		"return sha256('a', 'b')",
		"return nosuchfn(1)",
		"return 'a' < 1",
	}
	for _, src := range cases {
		p, err := Compile(src)
		if err != nil {
			t.Errorf("Compile(%q): %v", src, err)
			continue
		}
		if _, err := p.Call(nil, nil); err == nil {
			t.Errorf("%q: expected runtime error", src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"return 'unterminated",
		"if x:\nreturn 1",               // missing indent
		"for x in items:\n    return 1", // non-range iteration
		"return a +",
		"return 1 if 2", // missing else
		"return ((1)",
		"x = $",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# compute the answer
x = 6   # six

y = 7
return x * y  # forty-two
`
	v := run(t, src, nil)
	if v.I != 42 {
		t.Errorf("got %v", v)
	}
}

func TestHashStringWithComment(t *testing.T) {
	// '#' inside a string literal is not a comment.
	v := run(t, "return '#tag'", nil)
	if v.S != "#tag" {
		t.Errorf("got %q", v.S)
	}
}

func TestNullHandling(t *testing.T) {
	v := run(t, "return is_null(x)", map[string]value{"x": types.Null(types.KindString)})
	if !v.IsTrue() {
		t.Error("is_null(NULL) should be true")
	}
	v2 := run(t, "return 'fallback' if is_null(x) else x", map[string]value{"x": types.Null(types.KindString)})
	if v2.S != "fallback" {
		t.Errorf("got %v", v2)
	}
	v3 := run(t, "return None", nil)
	if !v3.Null {
		t.Error("None should be null")
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of `and` must not execute.
	v := run(t, "return False and (1 / 0)", nil)
	if truthy(v) {
		t.Error("short circuit and failed")
	}
	v2 := run(t, "return True or (1 / 0)", nil)
	if !truthy(v2) {
		t.Error("short circuit or failed")
	}
}

func TestTernaryChain(t *testing.T) {
	src := "return 'a' if x == 1 else 'b' if x == 2 else 'c'"
	for x, want := range map[int64]string{1: "a", 2: "b", 3: "c"} {
		if v := run(t, src, map[string]value{"x": intVal(x)}); v.S != want {
			t.Errorf("x=%d got %q", x, v.S)
		}
	}
}
