package session

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"lakeguard/internal/plan"
)

func TestAttachCreatesAndChecksOwnership(t *testing.T) {
	s := NewStore()
	st, err := s.Attach("alice/s1", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	st.TempViews["v"] = &plan.SQLRelation{Query: "SELECT 1"}

	// Re-attach by the owner returns the same state.
	again, err := s.Attach("alice/s1", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != st {
		t.Fatal("re-attach returned a different state")
	}
	// A different user cannot claim the session.
	if _, err := s.Attach("alice/s1", "bob", nil); err == nil || !strings.Contains(err.Error(), "belongs to") {
		t.Fatalf("ownership check err = %v", err)
	}
}

func TestAttachAdmitGate(t *testing.T) {
	s := NewStore()
	gate := errors.New("not allowed here")
	if _, err := s.Attach("bob/s1", "bob", func(string) error { return gate }); !errors.Is(err, gate) {
		t.Fatalf("admit gate err = %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("rejected attach left state behind: %d", s.Len())
	}
	// The admit callback only guards creation, not re-attachment.
	if _, err := s.Attach("bob/s1", "bob", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach("bob/s1", "bob", func(string) error { return gate }); err != nil {
		t.Fatalf("re-attach hit the admit gate: %v", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src, dst := NewStore(), NewStore()
	st, err := src.Attach("alice/s1", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	st.TempViews["v"] = &plan.SQLRelation{Query: "SELECT 42"}

	snap, ok := src.Export("alice/s1")
	if !ok || snap.User != "alice" || len(snap.TempViews) != 1 {
		t.Fatalf("export = %+v, %v", snap, ok)
	}
	if err := dst.Import("alice/s1", snap, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get("alice/s1")
	if !ok || got.User != "alice" {
		t.Fatalf("imported state = %+v, %v", got, ok)
	}
	if _, ok := got.TempViews["v"]; !ok {
		t.Fatal("temp view lost in migration")
	}
}

func TestConcurrentAttach(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Attach("alice/s1", "alice", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", s.Len())
	}
}
