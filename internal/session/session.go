// Package session is the shareable session store behind the Lakeguard
// servers: the replayable server-side state of every Connect session (temp
// views, ephemeral UDFs, owning user) keyed by session ID. A store may be
// private to one cluster (the default) or shared by a whole serverless fleet,
// in which case session migration between clusters degenerates to rebinding
// cluster-local resources — the state itself never moves.
//
// The store owns only the admission bookkeeping (which user a session belongs
// to); compute-type identity rules (dedicated-cluster pinning, group scoping)
// stay with the server, which supplies them as an admit callback.
package session

import (
	"fmt"
	"sync"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/plan"
)

// State is one Connect session's replayable server-side state. The maps are
// handed by reference to the analyzer; like the per-server maps this package
// replaced, they are mutated only by that session's own (serialized) commands.
type State struct {
	User      string
	TempViews map[string]plan.Node
	TempFuncs map[string]analyzer.TempFunc
}

// Snapshot is the portable form of one session's state, used to migrate a
// session between backends that do not share a store (paper §6.2: seamless
// session migration).
type Snapshot struct {
	User      string
	TempViews []TempViewSnapshot
	TempFuncs []TempFuncSnapshot
}

// TempViewSnapshot is one temp view's definition.
type TempViewSnapshot struct {
	Name string
	Plan plan.Node
}

// TempFuncSnapshot is one ephemeral UDF's definition.
type TempFuncSnapshot struct {
	Name string
	Func analyzer.TempFunc
}

// Store maps session IDs to their state. All methods are safe for concurrent
// use; the admit callback passed to Attach/Import runs under the store lock,
// so identity checks and session creation are atomic even when the store is
// shared across clusters.
type Store struct {
	mu       sync.Mutex
	sessions map[string]*State
}

// NewStore creates an empty session store.
func NewStore() *Store {
	return &Store{sessions: map[string]*State{}}
}

// Attach returns the session's state, creating it if needed. An existing
// session must belong to user; a new one is admitted by the callback first
// (nil admit accepts everyone), so a server can enforce dedicated-cluster
// pinning or group membership before any state exists.
func (s *Store) Attach(id, user string, admit func(user string) error) (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sessions[id]; ok {
		if st.User != user {
			return nil, fmt.Errorf("session: session %q belongs to %q", id, st.User)
		}
		return st, nil
	}
	if admit != nil {
		if err := admit(user); err != nil {
			return nil, err
		}
	}
	st := &State{
		User:      user,
		TempViews: map[string]plan.Node{},
		TempFuncs: map[string]analyzer.TempFunc{},
	}
	s.sessions[id] = st
	return st, nil
}

// Get returns the session's state without creating it.
func (s *Store) Get(id string) (*State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	return st, ok
}

// Remove deletes a session's state.
func (s *Store) Remove(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Len reports how many sessions hold state in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Export snapshots a session for migration to a backend with a different
// store. The snapshot copies the map entries, so the live session keeps
// running while the copy travels.
func (s *Store) Export(id string) (*Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	snap := &Snapshot{User: st.User}
	for name, node := range st.TempViews {
		snap.TempViews = append(snap.TempViews, TempViewSnapshot{Name: name, Plan: node})
	}
	for name, fn := range st.TempFuncs {
		snap.TempFuncs = append(snap.TempFuncs, TempFuncSnapshot{Name: name, Func: fn})
	}
	return snap, true
}

// Import installs a migrated session's snapshot, creating the session if
// needed (subject to admit) and merging the snapshot's entries. Importing
// into the store the snapshot came from is an idempotent merge.
func (s *Store) Import(id string, snap *Snapshot, admit func(user string) error) error {
	st, err := s.Attach(id, snap.User, admit)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tv := range snap.TempViews {
		st.TempViews[tv.Name] = tv.Plan
	}
	for _, tf := range snap.TempFuncs {
		st.TempFuncs[tf.Name] = tf.Func
	}
	return nil
}
