module lakeguard

go 1.22
